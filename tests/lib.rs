//! Shared helpers for the cross-crate integration test suite.

use vf_core::prelude::*;

/// A machine with `p` processors and a zero-cost model (tests that only
/// check counts and data correctness).
pub fn zero_machine(p: usize) -> Machine {
    Machine::new(p, CostModel::zero())
}

/// A machine with `p` processors and the iPSC/860-like cost model.
pub fn ipsc_machine(p: usize) -> Machine {
    Machine::new(p, CostModel::ipsc860(p))
}

/// Builds a 1-D distribution over `p` linear processors.
pub fn dist_1d(dist_type: DistType, n: usize, p: usize) -> Distribution {
    Distribution::new(dist_type, IndexDomain::d1(n), ProcessorView::linear(p))
        .expect("valid 1-D distribution")
}

/// Builds a 2-D distribution over `p` linear processors (factored into a
/// grid when the type distributes both dimensions).
pub fn dist_2d(dist_type: DistType, n: usize, m: usize, p: usize) -> Distribution {
    Distribution::new(dist_type, IndexDomain::d2(n, m), ProcessorView::linear(p))
        .expect("valid 2-D distribution")
}
