//! Property tests for the multi-backend plan executor and plan fusion:
//! the threaded executor must produce buffers **bitwise identical** to
//! serial execution (same locals, same reports, same tracker charges), and
//! a fused connect-class plan must move exactly the same (elements, bytes)
//! as the sum of its per-array plans while charging at most one message
//! per processor pair.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use std::sync::Arc;
use vf_core::prelude::*;
use vf_integration::dist_1d;
use vf_runtime::ghost::{exchange_ghosts_cached, exchange_ghosts_cached_with};
use vf_runtime::parti::{execute_gather, execute_gather_with, inspector};

/// Strategy for an arbitrary 1-D distribution type valid for `n` elements
/// on `p` processors (same shape as `plan_reuse`).
fn arb_dist_type(n: usize, p: usize) -> impl Strategy<Value = DistType> {
    prop_oneof![
        Just(DistType::block1d()),
        (1usize..6).prop_map(DistType::cyclic1d),
        proptest::collection::vec(0usize..(2 * n / p + 1), p).prop_map(move |mut sizes| {
            let mut total: usize = sizes.iter().sum();
            let mut i = 0;
            while total > n {
                let take = (total - n).min(sizes[i % p]);
                sizes[i % p] -= take;
                total -= take;
                i += 1;
            }
            if total < n {
                sizes[p - 1] += n - total;
            }
            DistType::gen_block1d(sizes)
        }),
    ]
}

/// A threaded executor forced onto the threaded path regardless of plan
/// size (cutoff 0), with more workers than this host may have cores —
/// correctness must not depend on either.
fn forced_threaded() -> ThreadedExecutor {
    ThreadedExecutor::with_workers(3).serial_cutoff_bytes(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Redistribution through the threaded executor is bitwise identical
    /// to serial execution: every processor's local buffer, the report,
    /// and the tracker charges all agree.
    #[test]
    fn prop_threaded_redistribute_is_bitwise_identical(
        n in 8usize..80,
        p in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let from_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let from = dist_1d(from_t, n, p);
        let to = dist_1d(to_t, n, p);
        let init = |pt: &Point| (pt.coord(0) as f64) * 1.25 + seed as f64;

        let t_serial = CommTracker::new(p, CostModel::ipsc860(p));
        let mut a_serial = DistArray::from_fn("A", from.clone(), init);
        let r_serial = redistribute_with(
            &mut a_serial, to.clone(), &t_serial, &RedistOptions::default(), &SerialExecutor,
        ).unwrap();

        let t_threaded = CommTracker::new(p, CostModel::ipsc860(p));
        let mut a_threaded = DistArray::from_fn("A", from.clone(), init);
        let r_threaded = redistribute_with(
            &mut a_threaded, to.clone(), &t_threaded, &RedistOptions::default(), &forced_threaded(),
        ).unwrap();

        prop_assert_eq!(&r_serial, &r_threaded);
        // Bitwise identity of every local buffer, not just the global view.
        for q in 0..p {
            prop_assert_eq!(
                a_serial.local(ProcId(q)),
                a_threaded.local(ProcId(q)),
                "locals of P{} differ", q
            );
        }
        prop_assert_eq!(a_serial.to_dense(), a_threaded.to_dense());
        // The modelled machine saw exactly the same traffic and time.
        prop_assert_eq!(t_serial.snapshot(), t_threaded.snapshot());
    }

    /// Ghost exchange through the threaded executor returns exactly the
    /// serial ghost values and charges.
    #[test]
    fn prop_threaded_ghost_exchange_is_bitwise_identical(
        n in 4usize..24,
        p in 1usize..5,
    ) {
        let dist = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(n, n),
            ProcessorView::linear(p),
        ).unwrap();
        let a = DistArray::from_fn("U", dist.clone(), |pt| (pt.coord(0) * 41 + pt.coord(1)) as f64);
        let widths = [(1, 1), (1, 1)];
        let t_serial = CommTracker::new(p, CostModel::ipsc860(p));
        let t_threaded = CommTracker::new(p, CostModel::ipsc860(p));
        let (g_serial, r_serial) =
            exchange_ghosts_cached(&a, &widths, &t_serial, &PlanCache::new()).unwrap();
        let (g_threaded, r_threaded) = exchange_ghosts_cached_with(
            &a, &widths, &t_threaded, &PlanCache::new(), &forced_threaded(),
        ).unwrap();
        prop_assert_eq!(r_serial, r_threaded);
        for &proc in dist.proc_ids() {
            prop_assert_eq!(g_serial.len(proc), g_threaded.len(proc));
            for point in dist.domain().iter() {
                prop_assert_eq!(g_serial.get(proc, &point), g_threaded.get(proc, &point));
            }
        }
        prop_assert_eq!(t_serial.snapshot(), t_threaded.snapshot());
    }

    /// PARTI gathers through the threaded executor fetch exactly the
    /// serial values.
    #[test]
    fn prop_threaded_gather_is_bitwise_identical(
        n in 8usize..64,
        p in 2usize..5,
        stride in 1usize..5,
    ) {
        let dist = dist_1d(DistType::cyclic1d(1), n, p);
        let a = DistArray::from_fn("X", dist.clone(), |pt| pt.coord(0) as f64 * 2.5);
        let accesses: Vec<(ProcId, Point)> = (1..=n as i64)
            .step_by(stride)
            .map(|i| (ProcId((i as usize) % p), Point::d1(i)))
            .collect();
        let schedule = inspector(&dist, &accesses).unwrap();
        let t_serial = CommTracker::new(p, CostModel::ipsc860(p));
        let t_threaded = CommTracker::new(p, CostModel::ipsc860(p));
        let g_serial = execute_gather(&a, &schedule, &t_serial).unwrap();
        let g_threaded =
            execute_gather_with(&a, &schedule, &t_threaded, &forced_threaded()).unwrap();
        for q in 0..p {
            prop_assert_eq!(g_serial.len(ProcId(q)), g_threaded.len(ProcId(q)));
        }
        for (proc, point) in &accesses {
            prop_assert_eq!(
                g_serial.get(*proc, &dist, point),
                g_threaded.get(*proc, &dist, point)
            );
        }
        prop_assert_eq!(t_serial.snapshot(), t_threaded.snapshot());
    }

    /// Fusing the per-array plans of a class moves exactly the same
    /// (elements, bytes) as the sum of the parts, charges at most one
    /// message per crossing processor pair, and preserves every array's
    /// data — under both backends.
    #[test]
    fn prop_fused_class_moves_the_sum_of_its_parts(
        n in 8usize..60,
        p in 2usize..6,
        arrays in 2usize..5,
        backend in 0usize..2,
    ) {
        let threaded = backend == 1;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let from_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let from = dist_1d(from_t, n, p);
        let to = dist_1d(to_t, n, p);

        let parts: Vec<Arc<CommPlan>> = (0..arrays)
            .map(|_| Arc::new(plan::plan_redistribute(&from, &to).unwrap()))
            .collect();
        let sum_moved: usize = parts.iter().map(|pl| pl.moved_elements()).sum();
        let sum_bytes: usize = parts.iter().map(|pl| pl.bytes_for(8)).sum();
        let sum_messages: usize = parts.iter().map(|pl| pl.num_messages()).sum();
        let fused = FusedPlan::fuse(parts).unwrap();

        // Conservation: same elements and bytes, never more messages than
        // unfused and never more than one per processor pair.
        prop_assert_eq!(fused.moved_elements(), sum_moved);
        prop_assert_eq!(fused.bytes_for(8), sum_bytes);
        prop_assert!(fused.num_messages() <= sum_messages);
        prop_assert!(fused.num_messages() <= p * (p - 1));

        let mut datas: Vec<DistArray<f64>> = (0..arrays)
            .map(|k| DistArray::from_fn(
                format!("A{k}"),
                from.clone(),
                |pt| pt.coord(0) as f64 + (k * 10_000) as f64,
            ))
            .collect();
        let dense_before: Vec<Vec<f64>> = datas.iter().map(|d| d.to_dense()).collect();
        let tracker = CommTracker::new(p, CostModel::ipsc860(p));
        let mut refs: Vec<&mut DistArray<f64>> = datas.iter_mut().collect();
        let (reports, exec) = if threaded {
            execute_redistribute_fused(&mut refs, &fused, &tracker, &forced_threaded()).unwrap()
        } else {
            execute_redistribute_fused(&mut refs, &fused, &tracker, &SerialExecutor).unwrap()
        };

        // Every array survived the fused motion with its own data.
        for (data, before) in datas.iter().zip(&dense_before) {
            prop_assert_eq!(&data.to_dense(), before);
            data.check_invariants().unwrap();
        }
        // The tracker charged exactly the fused schedule.
        let stats = tracker.snapshot();
        prop_assert_eq!(stats.total_messages(), fused.num_messages());
        prop_assert_eq!(stats.total_bytes(), exec.bytes);
        prop_assert_eq!(exec.bytes, sum_bytes);
        // The per-array reports still carry the unfused split.
        prop_assert_eq!(reports.iter().map(|r| r.bytes).sum::<usize>(), sum_bytes);
        prop_assert_eq!(reports.iter().map(|r| r.messages).sum::<usize>(), sum_messages);
    }

    /// The language layer fuses `DISTRIBUTE` over a connect class: the
    /// statement charges one message per processor pair for the whole
    /// class, the data of every member survives, and the report's totals
    /// match the tracker exactly.
    #[test]
    fn prop_scope_distribute_fuses_the_connect_class(
        n in 8usize..40,
        secondaries in 1usize..4,
    ) {
        let p = 4usize;
        let machine = Machine::new(p, CostModel::zero());
        let mut scope: VfScope<f64> = VfScope::new(machine);
        scope.declare_dynamic(
            DynamicDecl::new("B", IndexDomain::d1(n)).initial(DistType::block1d()),
        ).unwrap();
        for k in 0..secondaries {
            scope.declare_secondary(
                SecondaryDecl::extraction(format!("S{k}"), IndexDomain::d1(n), "B"),
            ).unwrap();
        }
        for i in 1..=n as i64 {
            scope.array_mut("B").unwrap().set(&Point::d1(i), i as f64).unwrap();
            for k in 0..secondaries {
                scope.array_mut(&format!("S{k}")).unwrap()
                    .set(&Point::d1(i), -(i as f64) - (k * 1000) as f64).unwrap();
            }
        }
        scope.take_stats();
        let report = scope.distribute(DistributeStmt::new("B", DistType::cyclic1d(1))).unwrap();

        // The whole class moved as one fused statement.
        prop_assert_eq!(report.per_array.len(), 1 + secondaries);
        prop_assert!(report.fused.is_some());
        prop_assert!(report.messages() <= p * (p - 1));
        if report.unfused_messages() > p * (p - 1) {
            prop_assert!(report.messages() < report.unfused_messages());
        }
        // The tracker saw exactly the fused totals.
        let stats = scope.take_stats();
        prop_assert_eq!(stats.total_messages(), report.messages());
        prop_assert_eq!(stats.total_bytes(), report.bytes());
        // Data of every member survived.
        for i in 1..=n as i64 {
            prop_assert_eq!(scope.array("B").unwrap().get(&Point::d1(i)).unwrap(), i as f64);
            for k in 0..secondaries {
                prop_assert_eq!(
                    scope.array(&format!("S{k}")).unwrap().get(&Point::d1(i)).unwrap(),
                    -(i as f64) - (k * 1000) as f64
                );
            }
        }
    }
}
