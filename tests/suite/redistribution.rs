//! Cross-crate tests of the redistribution engine: data preservation,
//! accounting consistency, and connect-class propagation.

use vf_core::prelude::*;
use vf_integration::{dist_1d, dist_2d, zero_machine};

fn all_1d_types(n: usize, p: usize) -> Vec<DistType> {
    vec![
        DistType::block1d(),
        DistType::cyclic1d(1),
        DistType::cyclic1d(3),
        DistType::gen_block1d({
            // A deterministic skewed partition.
            let mut sizes = vec![n / (2 * p); p];
            let assigned: usize = sizes.iter().sum();
            sizes[0] += n - assigned;
            sizes
        }),
    ]
}

/// Every ordered pair of 1-D distribution types preserves the data and the
/// tracker's byte count matches the report.
#[test]
fn all_pairs_of_1d_distribution_types_preserve_data() {
    let n = 60;
    let p = 4;
    let types = all_1d_types(n, p);
    for from in &types {
        for to in &types {
            let tracker = CommTracker::new(p, CostModel::zero());
            let mut a = DistArray::from_fn("A", dist_1d(from.clone(), n, p), |pt| {
                (pt.coord(0) * 7) as f64
            });
            let before = a.to_dense();
            let report = redistribute(
                &mut a,
                dist_1d(to.clone(), n, p),
                &tracker,
                &RedistOptions::default(),
            )
            .unwrap();
            assert_eq!(a.to_dense(), before, "{from} -> {to} corrupted data");
            a.check_invariants().unwrap();
            assert_eq!(
                tracker.snapshot().total_bytes(),
                report.bytes,
                "{from} -> {to} accounting mismatch"
            );
            assert_eq!(
                report.moved_elements + report.stayed_elements,
                n,
                "{from} -> {to} lost elements"
            );
        }
    }
}

/// 2-D redistributions (the Figure 1 transpose-like case) across different
/// processor counts.
#[test]
fn two_dimensional_redistributions_preserve_data() {
    for p in [2usize, 3, 4, 6] {
        for (from, to) in [
            (DistType::columns(), DistType::rows()),
            (DistType::rows(), DistType::blocks2d()),
            (DistType::blocks2d(), DistType::columns()),
        ] {
            let tracker = CommTracker::new(p, CostModel::zero());
            let mut a = DistArray::from_fn("V", dist_2d(from.clone(), 12, 18, p), |pt| {
                (pt.coord(0) * 100 + pt.coord(1)) as f64
            });
            let before = a.to_dense();
            redistribute(
                &mut a,
                dist_2d(to.clone(), 12, 18, p),
                &tracker,
                &RedistOptions::default(),
            )
            .unwrap();
            assert_eq!(a.to_dense(), before, "{from} -> {to} on {p} processors");
        }
    }
}

/// A chain of redistributions through the language layer keeps primary and
/// secondary arrays consistent, including a transposing alignment.
#[test]
fn connect_class_follows_through_a_chain_of_redistributions() {
    let n = 12usize;
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(4));
    scope
        .declare_dynamic(DynamicDecl::new("B", IndexDomain::d2(n, n)).initial(DistType::columns()))
        .unwrap();
    scope
        .declare_secondary(SecondaryDecl::extraction("EXT", IndexDomain::d2(n, n), "B"))
        .unwrap();
    scope
        .declare_secondary(SecondaryDecl::aligned(
            "TRANS",
            IndexDomain::d2(n, n),
            "B",
            Alignment::transpose2d(),
        ))
        .unwrap();

    // Fill all three arrays with distinct data.
    let domain = IndexDomain::d2(n, n);
    for point in domain.iter() {
        let v = (point.coord(0) * 1000 + point.coord(1)) as f64;
        scope.array_mut("B").unwrap().set(&point, v).unwrap();
        scope.array_mut("EXT").unwrap().set(&point, -v).unwrap();
        scope
            .array_mut("TRANS")
            .unwrap()
            .set(&point, 2.0 * v)
            .unwrap();
    }

    for dist in [
        DistType::rows(),
        DistType::blocks2d(),
        DistType::new(vec![DimDist::Cyclic(2), DimDist::Block]),
        DistType::columns(),
    ] {
        scope
            .distribute(DistributeStmt::new("B", dist.clone()))
            .unwrap();
        // The extraction secondary shares B's distribution type.
        assert_eq!(scope.current_dist_type("EXT").unwrap(), dist);
        // Data of all three arrays survives every step.
        for point in domain.iter() {
            let v = (point.coord(0) * 1000 + point.coord(1)) as f64;
            assert_eq!(scope.array("B").unwrap().get(&point).unwrap(), v);
            assert_eq!(scope.array("EXT").unwrap().get(&point).unwrap(), -v);
            assert_eq!(scope.array("TRANS").unwrap().get(&point).unwrap(), 2.0 * v);
        }
        // The aligned secondary really is co-located: TRANS(i,j) lives with
        // B(j,i) on every processor.
        let b = scope.array("B").unwrap();
        let t = scope.array("TRANS").unwrap();
        for point in domain.iter() {
            let swapped = Point::d2(point.coord(1), point.coord(0));
            assert_eq!(
                t.dist().owner(&point).unwrap(),
                b.dist().owner(&swapped).unwrap(),
                "alignment violated at {point} under {dist}"
            );
        }
    }
}

/// NOTRANSFER redistributes the descriptor but not the data, and only for
/// the named secondary.
#[test]
fn notransfer_applies_only_to_named_secondaries() {
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(4));
    scope
        .declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(16)).initial(DistType::block1d()))
        .unwrap();
    scope
        .declare_secondary(SecondaryDecl::extraction("KEEP", IndexDomain::d1(16), "B"))
        .unwrap();
    scope
        .declare_secondary(SecondaryDecl::extraction("SKIP", IndexDomain::d1(16), "B"))
        .unwrap();
    for i in 1..=16i64 {
        for name in ["B", "KEEP", "SKIP"] {
            scope
                .array_mut(name)
                .unwrap()
                .set(&Point::d1(i), i as f64)
                .unwrap();
        }
    }
    let report = scope
        .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)).notransfer(["SKIP"]))
        .unwrap();
    // B and KEEP moved data; SKIP did not.
    let moved: Vec<(&str, usize)> = report
        .per_array
        .iter()
        .map(|(n, r)| (n.as_str(), r.moved_elements))
        .collect();
    assert!(moved.iter().any(|&(n, m)| n == "B" && m > 0));
    assert!(moved.iter().any(|&(n, m)| n == "KEEP" && m > 0));
    assert!(moved.iter().any(|&(n, m)| n == "SKIP" && m == 0));
    // KEEP's data is intact, SKIP's is not guaranteed (defaults).
    assert_eq!(
        scope.array("KEEP").unwrap().get(&Point::d1(5)).unwrap(),
        5.0
    );
    assert_eq!(
        scope.current_dist_type("SKIP").unwrap(),
        DistType::cyclic1d(1)
    );
}

/// The element-wise ablation charges the same bytes but many more messages,
/// and therefore more modelled time on a latency-bound machine.
#[test]
fn aggregation_ablation_shows_latency_savings() {
    let n = 2048;
    let p = 8;
    let run_opts = |opts: RedistOptions| {
        let tracker = CommTracker::new(p, CostModel::latency_bound());
        let mut a = DistArray::from_fn("A", dist_1d(DistType::block1d(), n, p), |pt| {
            pt.coord(0) as f64
        });
        let report = redistribute(
            &mut a,
            dist_1d(DistType::cyclic1d(1), n, p),
            &tracker,
            &opts,
        )
        .unwrap();
        (report, tracker.snapshot().critical_time())
    };
    let (agg_report, agg_time) = run_opts(RedistOptions::default());
    let (elem_report, elem_time) = run_opts(RedistOptions::element_wise());
    assert_eq!(agg_report.bytes, elem_report.bytes);
    assert!(elem_report.messages > 10 * agg_report.messages);
    assert!(elem_time > 10.0 * agg_time);
}
