//! Checkpoint/restart suite: distribution-aware serialization must
//! round-trip bitwise under every distribution shape, redistribute-on-read
//! must be transparent, every corruption (torn write, flipped byte,
//! truncated segment) must be detected — falling back to the previous
//! generation, never returning damaged data — and the driver-level crash
//! recovery must reproduce a fault-free run bit-for-bit after an injected
//! rank death.
//!
//! Like the chaos suite, crash tests arm machines explicitly with
//! [`Machine::with_fault_plan`] (which overrides any `VF_FAULT_SEED` in
//! the environment), so the suite is deterministic both standalone and
//! under the CI chaos-restart job.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vf_apps::mesh::{
    run_sweep, run_sweep_with_restart, unstructured_mesh, MeshPartition, MeshSweepConfig,
};
use vf_apps::smoothing::{
    recover_and_resume_with, run_sharded, run_sharded_checkpointed_with, SmoothingConfig,
    SmoothingLayout,
};
use vf_apps::workloads;
use vf_core::prelude::*;
use vf_integration::{dist_1d, zero_machine};
use vf_machine::{FaultKind, FaultPlan};
use vf_runtime::RuntimeError;

static STORE_ID: AtomicUsize = AtomicUsize::new(0);

/// A unique, empty store directory per call (tests share one process).
fn fresh_store(tag: &str) -> CheckpointStore {
    let id = STORE_ID.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vf_ckpt_suite_{}_{tag}_{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::new(dir)
}

fn drop_store(store: &CheckpointStore) {
    let _ = std::fs::remove_dir_all(store.dir());
}

/// A deterministic 1-D distribution of one of three shapes: `BLOCK`,
/// `CYCLIC(k)`, or `INDIRECT` with seed-derived owners.
fn make_dist(kind: usize, n: usize, p: usize, seed: u64) -> Distribution {
    let t = match kind % 3 {
        0 => DistType::block1d(),
        1 => DistType::cyclic1d((seed as usize % 3) + 1),
        _ => {
            let owners: Vec<usize> = (0..n)
                .map(|i| ((seed >> (i % 48)) as usize).wrapping_add(i * 7) % p)
                .collect();
            DistType::indirect1d(Arc::new(
                IndirectMap::new(owners).expect("owners are valid"),
            ))
        }
    };
    dist_1d(t, n, p)
}

fn payload(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.7 + (seed % 1024) as f64 * 0.013).sin())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Save under a random distribution, restore both into the same
    /// distribution and into an independently random live one: bitwise in
    /// both directions, and every checkpoint byte written is read back.
    #[test]
    fn round_trips_bitwise_across_random_distributions(
        n in 8usize..48,
        p in 2usize..5,
        seed in 0u64..u64::MAX,
        file_kind in 0usize..3,
        live_kind in 0usize..3,
        step in 0u64..1000,
    ) {
        let data = payload(n, seed);
        let file_dist = make_dist(file_kind, n, p, seed);
        let live_dist = make_dist(live_kind, n, p, seed ^ 0x5DEECE66D);
        let tracker = CommTracker::new(p, CostModel::zero());
        let array = DistArray::from_dense("P", file_dist, &data).unwrap();
        let store = fresh_store("prop");
        store.save(&array, step, &tracker).unwrap();

        let same = store.restore::<f64>(&tracker).unwrap();
        prop_assert_eq!(same.step, step);
        prop_assert_eq!(same.array.to_dense(), data.clone());
        prop_assert!(same.array.dist().same_mapping(array.dist()));
        let stats = tracker.snapshot();
        prop_assert!(stats.ckpt_bytes_written() > 0);
        prop_assert_eq!(stats.ckpt_bytes_read(), stats.ckpt_bytes_written());

        let cache = PlanCache::new();
        let moved = store
            .restore_into::<f64, _>(&live_dist, &tracker, &cache, &SerialExecutor)
            .unwrap();
        prop_assert_eq!(moved.step, step);
        prop_assert!(moved.array.dist().same_mapping(&live_dist));
        prop_assert_eq!(moved.array.to_dense(), data);
        drop_store(&store);
    }

    /// Any single flipped byte or truncation of the newest generation is
    /// detected, and restore falls back to the intact previous generation
    /// bitwise — damaged data is never returned.
    #[test]
    fn corruption_is_detected_and_falls_back_a_generation(
        n in 8usize..40,
        p in 2usize..5,
        seed in 0u64..u64::MAX,
        kind in 0usize..3,
        damage_at in 0usize..1_000_000,
        flip in 1u8..255,
        truncate in (0usize..2).prop_map(|b| b == 1),
    ) {
        let dist = make_dist(kind, n, p, seed);
        let old_data = payload(n, seed);
        let new_data = payload(n, seed ^ 0xABCD);
        let tracker = CommTracker::new(p, CostModel::zero());
        let store = fresh_store("corrupt");
        let old = DistArray::from_dense("C", dist.clone(), &old_data).unwrap();
        store.save(&old, 1, &tracker).unwrap();
        let new = DistArray::from_dense("C", dist, &new_data).unwrap();
        let newest = store.save(&new, 2, &tracker).unwrap();

        let mut bytes = std::fs::read(&newest).unwrap();
        if truncate {
            bytes.truncate(damage_at % (bytes.len() - 1));
        } else {
            let at = damage_at % bytes.len();
            bytes[at] ^= flip;
        }
        std::fs::write(&newest, &bytes).unwrap();

        let restored = store.restore::<f64>(&tracker).unwrap();
        prop_assert_eq!(restored.step, 1, "fell back to the previous generation");
        prop_assert_eq!(restored.array.to_dense(), old_data);
        drop_store(&store);
    }
}

#[test]
fn corrupting_both_generations_reports_the_store() {
    let n = 16;
    let p = 2;
    let dist = make_dist(0, n, p, 3);
    let tracker = CommTracker::new(p, CostModel::zero());
    let store = fresh_store("both_bad");
    let array = DistArray::from_dense("B", dist, &payload(n, 3)).unwrap();
    store.save(&array, 1, &tracker).unwrap();
    store.save(&array, 2, &tracker).unwrap();
    for path in store.generation_paths() {
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
    }
    match store.restore::<f64>(&tracker) {
        Err(RuntimeError::CorruptCheckpoint { .. }) => {}
        other => panic!("expected CorruptCheckpoint for the whole store, got {other:?}"),
    }
    drop_store(&store);
}

/// An armed rank death makes the checkpointed sharded run fail with a
/// structured channel error — bounded by the receive timeout, no hang, no
/// panic.
#[test]
fn injected_rank_death_degrades_structured_and_bounded() {
    let n = 16;
    let initial = workloads::initial_grid(n, 5);
    let plan = FaultPlan::new(41)
        .with_rate(1.0)
        .with_kinds(&[FaultKind::RankDeath])
        .with_max_faults(1);
    let machine = zero_machine(4).with_fault_plan(plan);
    let store = fresh_store("degrade");
    let executor = ShardedExecutor::new().with_timeout(Duration::from_millis(500));
    let start = std::time::Instant::now();
    let result = run_sharded_checkpointed_with(
        &SmoothingConfig {
            n,
            steps: 4,
            layout: SmoothingLayout::Columns,
        },
        &machine,
        &initial,
        &store,
        2,
        &executor,
    );
    let elapsed = start.elapsed();
    match result {
        Err(RuntimeError::Channel(_)) => {}
        other => panic!("expected a structured channel failure, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "failed region must return promptly, took {elapsed:?}"
    );
    drop_store(&store);
}

/// The full recovery ladder for the sharded smoothing kernel: a rank dies
/// mid-run, the driver restores the last good generation and resumes, and
/// the final field is bitwise identical to a fault-free run.
#[test]
fn smoothing_crash_recovery_is_bitwise_identical() {
    let n = 16;
    let steps = 8;
    let initial = workloads::initial_grid(n, 29);
    for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
        let clean = run_sharded(
            &SmoothingConfig { n, steps, layout },
            &zero_machine(4),
            &initial,
        );
        let plan = FaultPlan::new(131)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::RankDeath])
            .with_max_faults(1);
        let machine = zero_machine(4).with_fault_plan(plan);
        let store = fresh_store("recover");
        let executor = ShardedExecutor::new().with_timeout(Duration::from_millis(500));
        let recovered = recover_and_resume_with(
            &SmoothingConfig { n, steps, layout },
            &machine,
            &initial,
            &store,
            3,
            4,
            &executor,
        )
        .expect("one injected rank death is recoverable");
        assert_eq!(
            recovered.restarts, 1,
            "{layout:?}: exactly one region crashed"
        );
        assert_eq!(
            recovered.result.field, clean.field,
            "{layout:?}: recovered field diverges from the fault-free run"
        );
        drop_store(&store);
    }
}

/// Mid-run repartition, checkpoint under the post-repartition `INDIRECT`
/// distribution, restore through redistribute-on-read into a different
/// partition, finish the sweep: bitwise identical to an uninterrupted run.
#[test]
fn mesh_restart_with_repartition_matches_uninterrupted() {
    let mesh = unstructured_mesh(12, 8, 17);
    let machine = || zero_machine(4);
    let config = MeshSweepConfig {
        steps: 6,
        partition: MeshPartition::Block,
        repartition_at: Some(2),
    };
    let uninterrupted = run_sweep(&mesh, &config, &machine());
    for resume in [MeshPartition::Block, MeshPartition::Coordinate] {
        let store = fresh_store("mesh");
        let restarted = run_sweep_with_restart(&mesh, &config, &machine(), 4, resume, &store)
            .expect("checkpoint/restart round-trips");
        assert_eq!(
            restarted.values, uninterrupted.values,
            "restart into {resume:?} diverges from the uninterrupted sweep"
        );
        assert_eq!(store.latest_step(), Some(4));
        drop_store(&store);
    }
}
