//! Integration tests of the paper's language rules (§2) and of the
//! consistency between the compile-time analysis (§3.1) and the runtime.

use vf_core::analysis::{evaluate_query, Program, QueryOutcome, ReachingDistributions, Stmt};
use vf_core::prelude::*;
use vf_integration::zero_machine;

/// Rule §2.3(3): DISTRIBUTE applies to primary arrays only; §2.3(4): classes
/// are independent.
#[test]
fn connect_classes_are_independent() {
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(4));
    for name in ["B1", "B2"] {
        scope
            .declare_dynamic(
                DynamicDecl::new(name, IndexDomain::d1(12)).initial(DistType::block1d()),
            )
            .unwrap();
    }
    scope
        .declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d1(12), "B1"))
        .unwrap();
    scope
        .declare_secondary(SecondaryDecl::extraction("A2", IndexDomain::d1(12), "B2"))
        .unwrap();

    scope
        .distribute(DistributeStmt::new("B1", DistType::cyclic1d(1)))
        .unwrap();
    // Only C(B1) changed; C(B2) kept its distribution.
    assert_eq!(
        scope.current_dist_type("A1").unwrap(),
        DistType::cyclic1d(1)
    );
    assert_eq!(scope.current_dist_type("B2").unwrap(), DistType::block1d());
    assert_eq!(scope.current_dist_type("A2").unwrap(), DistType::block1d());
    // NOTRANSFER may not name a secondary of a different class.
    assert!(scope
        .distribute(DistributeStmt::new("B1", DistType::block1d()).notransfer(["A2"]))
        .is_err());
}

/// Rule §2.3(5): the connect relation does not extend across procedure
/// boundaries — a new scope starts fresh even on the same machine.
#[test]
fn connect_relation_stops_at_scope_boundaries() {
    let machine = zero_machine(2);
    let mut outer: VfScope<f64> = VfScope::new(machine.clone());
    outer
        .declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(8)).initial(DistType::block1d()))
        .unwrap();
    outer
        .declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(8), "B"))
        .unwrap();
    assert_eq!(outer.connect_class("B").unwrap().len(), 1);

    // The "called procedure" has its own scope: no classes, and the same
    // names can be redeclared with different roles.
    let mut inner: VfScope<f64> = VfScope::new(machine);
    assert!(inner.connect_class("B").is_err());
    inner
        .declare_static(StaticDecl::new(
            "A",
            IndexDomain::d1(8),
            DistType::cyclic1d(1),
        ))
        .unwrap();
    assert_eq!(inner.current_dist_type("A").unwrap(), DistType::cyclic1d(1));
    // The outer scope is unaffected.
    assert_eq!(outer.current_dist_type("A").unwrap(), DistType::block1d());
}

/// The RANGE attribute restricts every later DISTRIBUTE, including ones
/// arriving through multi-array statements and extraction expressions.
#[test]
fn range_restricts_all_paths_to_a_distribution() {
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(4));
    scope
        .declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .range([
                    DistPattern::dims(vec![DimPattern::Block, DimPattern::Block]),
                    DistPattern::dims(vec![DimPattern::Star, DimPattern::Cyclic(1)]),
                ])
                .initial(DistType::blocks2d()),
        )
        .unwrap();
    // (*, CYCLIC) admits (BLOCK, CYCLIC) and even (:, CYCLIC)...
    scope
        .distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)]),
        ))
        .unwrap();
    scope
        .distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::NotDistributed, DimDist::Cyclic(1)]),
        ))
        .unwrap();
    // ...but not (CYCLIC, BLOCK) or (CYCLIC(2), CYCLIC(2)).
    assert!(scope
        .distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Cyclic(1), DimDist::Block]),
        ))
        .is_err());
    assert!(scope
        .distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Cyclic(2), DimDist::Cyclic(2)]),
        ))
        .is_err());
    // The failed statements left the previous distribution in place.
    assert_eq!(
        scope.current_dist_type("B3").unwrap(),
        DistType::new(vec![DimDist::NotDistributed, DimDist::Cyclic(1)])
    );
}

/// DCASE clause order matters: the first matching clause wins even when a
/// later clause also matches.
#[test]
fn dcase_selects_the_first_matching_clause() {
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(4));
    scope
        .declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(8)).initial(DistType::block1d()))
        .unwrap();
    let dcase = Dcase::new(["B"])
        .when_positional([DistPattern::Any])
        .when_positional([DistPattern::exact(&DistType::block1d())])
        .default_case();
    assert_eq!(dcase.select(&scope).unwrap(), Some(0));
    scope
        .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)))
        .unwrap();
    assert_eq!(dcase.select(&scope).unwrap(), Some(0));
}

/// The reaching-distribution analysis is sound with respect to the runtime:
/// every distribution actually observed at an access is covered by the
/// plausible set the analysis computed for it.
#[test]
fn analysis_plausible_sets_cover_the_runtime_behaviour() {
    // The analysed program: V starts as (:,BLOCK); inside a loop it is
    // redistributed to (BLOCK,:) and conditionally back.
    let program = Program::new()
        .with_initial("V", DistPattern::exact(&DistType::columns()))
        .stmt(Stmt::access("V", "before"))
        .stmt(Stmt::loop_(vec![
            Stmt::distribute("V", DistPattern::exact(&DistType::rows())),
            Stmt::access("V", "in_loop"),
            Stmt::if_then(vec![Stmt::distribute(
                "V",
                DistPattern::exact(&DistType::columns()),
            )]),
        ]))
        .stmt(Stmt::access("V", "after"));
    let analysis = ReachingDistributions::analyze(&program);

    // The runtime executes the same shape with a concrete predicate.
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(4));
    scope
        .declare_dynamic(DynamicDecl::new("V", IndexDomain::d2(8, 8)).initial(DistType::columns()))
        .unwrap();
    let observed_before = scope.current_dist_type("V").unwrap();
    let mut observed_in_loop = Vec::new();
    for iter in 0..4 {
        scope
            .distribute(DistributeStmt::new("V", DistType::rows()))
            .unwrap();
        observed_in_loop.push(scope.current_dist_type("V").unwrap());
        if iter % 2 == 0 {
            scope
                .distribute(DistributeStmt::new("V", DistType::columns()))
                .unwrap();
        }
    }
    let observed_after = scope.current_dist_type("V").unwrap();

    let covers = |label: &str, observed: &DistType| {
        analysis
            .plausible_at(label)
            .unwrap()
            .iter()
            .any(|p| p.matches(observed))
    };
    assert!(covers("before", &observed_before));
    for t in &observed_in_loop {
        assert!(covers("in_loop", t));
    }
    assert!(covers("after", &observed_after));

    // Partial evaluation agrees with what a runtime IDT would return when
    // the plausible set is a singleton.
    let before_set = analysis.plausible_at("before").unwrap();
    assert_eq!(
        evaluate_query(before_set, &DistPattern::exact(&DistType::columns())),
        QueryOutcome::Always
    );
    assert_eq!(
        evaluate_query(before_set, &DistPattern::exact(&DistType::rows())),
        QueryOutcome::Never
    );
    // The in-loop access genuinely needs a runtime query for the column
    // pattern (Maybe), matching the fact that the observed values vary.
    let in_loop_set = analysis.plausible_at("in_loop").unwrap();
    assert_eq!(
        evaluate_query(in_loop_set, &DistPattern::exact(&DistType::rows())),
        QueryOutcome::Always
    );
}

/// IDT distinguishes processor sections as well as distribution types.
#[test]
fn idt_on_processor_sections() {
    let machine = zero_machine(4);
    let mut scope: VfScope<f64> = VfScope::with_processors(machine, ProcessorView::grid2d(2, 2));
    scope
        .declare_dynamic(
            DynamicDecl::new("C", IndexDomain::d3(6, 6, 6)).initial(DistType::new(vec![
                DimDist::Block,
                DimDist::Block,
                DimDist::NotDistributed,
            ])),
        )
        .unwrap();
    let pattern = DistPattern::dims(vec![
        DimPattern::Block,
        DimPattern::Block,
        DimPattern::NotDistributed,
    ]);
    assert!(idt(&scope, "C", &pattern).unwrap());
    assert!(idt_on(&scope, "C", &pattern, &ProcessorView::grid2d(2, 2)).unwrap());
    assert!(!idt_on(&scope, "C", &pattern, &ProcessorView::linear(4)).unwrap());
}
