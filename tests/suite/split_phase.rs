//! Property suite for split-phase wire execution: posting a fused ghost
//! exchange or a redistribution and completing it later must be **bitwise
//! identical** to the blocking wire path — same ghost values, same new
//! locals, same per-processor tracker charges, same credited overlap —
//! across the serial (inline) and forced-streaming (pooled) backends.
//! Only the *measured* wall-clock overlap is allowed to differ: zero on
//! every blocking/inline path, positive when background workers really
//! unpacked while the caller computed.

use std::sync::Arc;
use vf_core::prelude::*;
use vf_integration::zero_machine;
use vf_runtime::ghost::{exchange_ghosts_fused_wire, exchange_ghosts_fused_wire_split};

const WIDTHS: [(usize, usize); 2] = [(1, 1), (1, 1)];

fn grid_array(name: &str, t: DistType, n: usize, p: usize, scale: f64) -> DistArray<f64> {
    let dist = Distribution::new(t, IndexDomain::d2(n, n), ProcessorView::linear(p)).unwrap();
    DistArray::from_fn(name, dist, |pt| {
        (pt.coord(0) * 1000 + pt.coord(1)) as f64 * scale
    })
}

/// A backend whose unpack genuinely streams on background pool workers:
/// zero cutoff forces the threaded path regardless of volume.
fn streaming_backend(workers: usize) -> ExecBackend {
    ExecBackend::Threaded(
        ThreadedExecutor::with_pool(Arc::new(WorkerPool::new(workers))).serial_cutoff_bytes(0),
    )
}

/// Per-processor charges and the credited overlap must agree; the measured
/// overlap is the one quantity a streaming run may legitimately add.
fn assert_charges_equal(a: &CommStats, b: &CommStats, ctx: &str) {
    assert_eq!(a.per_proc(), b.per_proc(), "{ctx}: per-proc charges");
    assert!(
        (a.credited_overlap_seconds() - b.credited_overlap_seconds()).abs() < 1e-12,
        "{ctx}: credited overlap"
    );
}

#[test]
fn split_fused_ghost_equals_blocking_wire_bitwise() {
    let n = 8usize;
    let p = 4usize;
    for t in [DistType::columns(), DistType::blocks2d()] {
        let arrays: Vec<DistArray<f64>> = (0..3)
            .map(|k| grid_array("A", t.clone(), n, p, (k + 1) as f64 * 0.5))
            .collect();
        let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
        let machine = zero_machine(p);

        // Blocking reference: the fused wire path.
        let cache_b = PlanCache::new();
        let t_block = machine.tracker();
        let (blocking, exec) =
            exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_block, &cache_b).unwrap();
        assert_eq!(t_block.snapshot().measured_overlap_seconds(), 0.0);

        for (backend, label) in [
            (ExecBackend::Serial, "serial"),
            (streaming_backend(3), "streaming"),
        ] {
            let cache = PlanCache::new();
            let t_split = machine.tracker();
            let split =
                exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &t_split, &cache, &backend)
                    .unwrap();
            assert_eq!(split.messages(), exec.messages, "{t} {label}");
            assert_eq!(split.bytes(), exec.bytes, "{t} {label}");
            let (regions, report) = split.wait(&t_split).unwrap();
            assert_eq!(report.messages, exec.messages, "{t} {label}");
            assert_eq!(report.bytes, exec.bytes, "{t} {label}");
            for (k, array) in arrays.iter().enumerate() {
                for proc in array.dist().proc_ids() {
                    for point in array.domain().iter() {
                        assert_eq!(
                            regions[k].get(*proc, &point),
                            blocking[k].get(*proc, &point),
                            "{t} {label} array {k} at {point:?} on {proc:?}"
                        );
                    }
                }
            }
            assert_charges_equal(
                &t_block.snapshot(),
                &t_split.snapshot(),
                &format!("{t} {label}"),
            );
            if matches!(backend, ExecBackend::Serial) {
                assert_eq!(report.measured_overlap_seconds, 0.0, "inline split");
                assert_eq!(t_split.snapshot().measured_overlap_seconds(), 0.0);
            }
        }
    }
}

#[test]
fn split_redistribute_equals_blocking_bitwise() {
    let n = 12usize;
    let p = 4usize;
    let original = grid_array("R", DistType::blocks2d(), n, p, 1.25);
    let columns = || {
        Distribution::new(
            DistType::columns(),
            IndexDomain::d2(n, n),
            ProcessorView::linear(p),
        )
        .unwrap()
    };
    let machine = zero_machine(p);

    // Blocking reference.
    let mut blocking = original.clone();
    let cache_b = PlanCache::new();
    let t_block = machine.tracker();
    let ref_report = redistribute_cached_with(
        &mut blocking,
        columns(),
        &t_block,
        &RedistOptions::default(),
        &cache_b,
        &SerialExecutor,
    )
    .unwrap();

    for (backend, label) in [
        (ExecBackend::Serial, "serial"),
        (streaming_backend(3), "streaming"),
    ] {
        let mut array = original.clone();
        let cache = PlanCache::new();
        let t_split = machine.tracker();
        let split = redistribute_split(&array, columns(), &t_split, &cache, &backend).unwrap();
        assert_eq!(split.new_dist(), blocking.dist(), "{label}");
        let (report, split_report) = split.finish_into(&mut array, &t_split).unwrap();
        assert_eq!(report.moved_elements, ref_report.moved_elements, "{label}");
        assert_eq!(
            report.stayed_elements, ref_report.stayed_elements,
            "{label}"
        );
        assert_eq!(report.messages, ref_report.messages, "{label}");
        assert_eq!(report.bytes, ref_report.bytes, "{label}");
        assert_eq!(split_report.messages, ref_report.messages, "{label}");
        assert_eq!(array.dist(), blocking.dist(), "{label}");
        assert_eq!(array.to_dense(), blocking.to_dense(), "{label}");
        assert_charges_equal(&t_block.snapshot(), &t_split.snapshot(), label);
    }
}

#[test]
fn pipelined_destination_mutation_survives_finish() {
    // The ADI pattern: while the redistribution is in flight, each
    // destination processor's new buffer is completed and mutated in
    // place; the mutations must land in the installed array.
    let n = 8usize;
    let p = 4usize;
    let original = grid_array("P", DistType::columns(), n, p, 2.0);
    let rows = Distribution::new(
        DistType::rows(),
        IndexDomain::d2(n, n),
        ProcessorView::linear(p),
    )
    .unwrap();
    let machine = zero_machine(p);

    for (backend, label) in [
        (ExecBackend::Serial, "serial"),
        (streaming_backend(3), "streaming"),
    ] {
        let mut array = original.clone();
        let cache = PlanCache::new();
        let tracker = machine.tracker();
        let split = redistribute_split(&array, rows.clone(), &tracker, &cache, &backend).unwrap();
        for d in 0..p {
            split.wait_dest(d);
            split.with_dest_mut(d, |buf| {
                for v in buf.iter_mut() {
                    *v += 1.0;
                }
            });
        }
        split.finish_into(&mut array, &tracker).unwrap();
        for point in array.domain().iter() {
            let expect = (point.coord(0) * 1000 + point.coord(1)) as f64 * 2.0 + 1.0;
            assert_eq!(array.get(&point).unwrap(), expect, "{label} at {point:?}");
        }
    }
}

#[test]
fn split_redistribute_rejects_stale_source_fingerprint() {
    // `finish_into` validates the handle against the array it is asked to
    // install into: a redistributed (different-fingerprint) target is
    // rejected instead of silently corrupted.
    let n = 8usize;
    let p = 4usize;
    let array = grid_array("S", DistType::columns(), n, p, 1.0);
    let rows = Distribution::new(
        DistType::rows(),
        IndexDomain::d2(n, n),
        ProcessorView::linear(p),
    )
    .unwrap();
    let machine = zero_machine(p);
    let cache = PlanCache::new();
    let tracker = machine.tracker();
    let split =
        redistribute_split(&array, rows.clone(), &tracker, &cache, &ExecBackend::Serial).unwrap();
    // Redistribute a clone of the source out from under the handle.
    let mut other = array.clone();
    redistribute_cached_with(
        &mut other,
        rows,
        &tracker,
        &RedistOptions::default(),
        &cache,
        &SerialExecutor,
    )
    .unwrap();
    assert!(matches!(
        split.finish_into(&mut other, &tracker),
        Err(vf_runtime::RuntimeError::PlanMismatch { .. })
    ));
}

#[test]
fn forced_streaming_overlaps_compute_with_the_halo() {
    // With a zero cutoff and a multi-worker pool the unpack must stream on
    // background workers while the caller "computes" (sleeps): the handle
    // reports streaming and a strictly positive measured overlap, and the
    // tracker records it.
    let n = 64usize;
    let p = 4usize;
    let arrays: Vec<DistArray<f64>> = (0..3)
        .map(|k| grid_array("O", DistType::blocks2d(), n, p, (k + 1) as f64))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let machine = zero_machine(p);
    let backend = streaming_backend(3);
    let cache = PlanCache::new();
    let tracker = machine.tracker();
    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &cache, &backend).unwrap();
    assert!(split.is_streaming(), "zero cutoff + 3 workers must stream");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let (_regions, report) = split.wait(&tracker).unwrap();
    assert!(
        report.measured_overlap_seconds > 0.0,
        "background unpack ran while the caller slept"
    );
    assert!(report.measured_overlap_seconds <= report.measured_unpack_seconds + 1e-9);
    assert!(tracker.snapshot().measured_overlap_seconds() > 0.0);
}

#[test]
fn scope_split_class_exchange_equals_blocking() {
    let p = 4usize;
    let n = 8usize;
    let widths = [(1, 1), (1, 1)];
    let build = || {
        let mut s: VfScope<f64> = VfScope::new(zero_machine(p));
        s.declare_dynamic(
            DynamicDecl::new("U", IndexDomain::d2(n, n)).initial(DistType::blocks2d()),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("V", IndexDomain::d2(n, n), "U"))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("W", IndexDomain::d2(n, n), "U"))
            .unwrap();
        for name in ["U", "V", "W"] {
            for point in IndexDomain::d2(n, n).iter() {
                let v = (point.coord(0) * 10 + point.coord(1)) as f64;
                s.array_mut(name).unwrap().set(&point, v).unwrap();
            }
        }
        s.take_stats();
        s
    };

    let s_block = build();
    let (blocking, exec) = s_block.exchange_class_ghosts("U", &widths).unwrap();
    let stats_block = s_block.stats();

    for streaming in [false, true] {
        let mut s = build();
        if streaming {
            s.set_executor(streaming_backend(3));
        }
        let halo = s.exchange_class_ghosts_split("U", &widths).unwrap();
        assert_eq!(halo.messages(), exec.messages, "streaming={streaming}");
        assert_eq!(halo.bytes(), exec.bytes, "streaming={streaming}");
        let (regions, report) = halo.wait().unwrap();
        assert_eq!(report.messages, exec.messages, "streaming={streaming}");
        let u = s.array("U").unwrap();
        assert_eq!(regions.len(), blocking.len());
        for (k, ((name_a, ra), (name_b, rb))) in regions.iter().zip(blocking.iter()).enumerate() {
            assert_eq!(name_a, name_b);
            for proc in u.dist().proc_ids() {
                for point in u.domain().iter() {
                    assert_eq!(
                        ra.get(*proc, &point),
                        rb.get(*proc, &point),
                        "member {k} at {point:?} on {proc:?} streaming={streaming}"
                    );
                }
            }
        }
        assert_charges_equal(&stats_block, &s.stats(), &format!("streaming={streaming}"));
    }
}

#[test]
fn class_halo_double_buffer_swaps_front_to_back() {
    let p = 4usize;
    let n = 8usize;
    let widths = [(1, 1), (1, 1)];
    let mut s: VfScope<f64> = VfScope::new(zero_machine(p));
    s.declare_dynamic(DynamicDecl::new("U", IndexDomain::d2(n, n)).initial(DistType::blocks2d()))
        .unwrap();
    let fill = |s: &mut VfScope<f64>, offset: f64| {
        for point in IndexDomain::d2(n, n).iter() {
            let v = (point.coord(0) * 10 + point.coord(1)) as f64 + offset;
            s.array_mut("U").unwrap().set(&point, v).unwrap();
        }
    };

    let mut halo: ClassHalo<f64> = ClassHalo::new();
    assert!(halo.front().is_none() && halo.back().is_none());

    // Generation 0: front filled, back still empty.
    fill(&mut s, 0.0);
    let ex = s.exchange_class_ghosts_split("U", &widths).unwrap();
    ex.wait_into(&mut halo).unwrap();
    assert!(halo.front().is_some());
    assert!(halo.back().is_none(), "first publish displaces nothing");

    // Generation 1: the previous front retires to the back, so boundary
    // code can read generation k-1's halo while k's is current.
    fill(&mut s, 1000.0);
    let ex = s.exchange_class_ghosts_split("U", &widths).unwrap();
    ex.wait_into(&mut halo).unwrap();
    let (front, back) = (halo.front().unwrap(), halo.back().unwrap());
    let u = s.array("U").unwrap();
    let mut ghost_points = 0usize;
    for proc in u.dist().proc_ids() {
        for point in u.domain().iter() {
            if let Some(new) = front[0].1.get(*proc, &point) {
                let base = (point.coord(0) * 10 + point.coord(1)) as f64;
                assert_eq!(new, base + 1000.0, "front holds generation 1");
                assert_eq!(
                    back[0].1.get(*proc, &point),
                    Some(base),
                    "back holds generation 0"
                );
                ghost_points += 1;
            }
        }
    }
    assert!(ghost_points > 0, "the exchange produced ghost values");
}
