//! Differential tests for the persistent SPMD worker pool and the
//! wire-layout fused executors: pooled dispatch must be **bitwise
//! indistinguishable** from the fresh-spawn harness and from serial
//! execution across every communication path (values, reports and tracker
//! snapshots), the wire-packed fused executors must match the per-part
//! fused executors exactly (identical buffers, identical messages/bytes),
//! one pool must be reused across repeated `DISTRIBUTE` statements, and a
//! panicking worker must leave the pool usable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use vf_core::prelude::*;
use vf_integration::{dist_1d, dist_2d, zero_machine};
use vf_runtime::ghost::{
    exchange_ghosts_cached_with, exchange_ghosts_fused_planned_wire_with,
    exchange_ghosts_fused_planned_with,
};
use vf_runtime::parti::{execute_gather_with, execute_scatter_with, inspector};
use vf_runtime::plan::plan_redistribute;

/// The three executors every path is run under: the serial baseline, the
/// fresh-spawn threaded harness, and the pooled threaded backend — the
/// latter two forced onto the parallel path (cutoff 0) with more workers
/// than this host may have cores.
fn executors() -> (
    SerialExecutor,
    ThreadedExecutor,
    ThreadedExecutor,
    Arc<WorkerPool>,
) {
    let pool = Arc::new(WorkerPool::new(3));
    (
        SerialExecutor,
        ThreadedExecutor::with_workers(3).with_serial_cutoff(0),
        ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0),
        pool,
    )
}

fn tracker(p: usize) -> CommTracker {
    CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.25))
}

#[test]
fn pooled_spawn_serial_identical_for_redistribute() {
    let n = 256usize;
    let p = 4usize;
    let (serial, spawn, pooled, pool) = executors();
    let from = dist_1d(DistType::cyclic1d(3), n, p);
    let to = dist_1d(DistType::gen_block1d(vec![13, 101, 80, 62]), n, p);
    let run = |executor: &dyn Fn(&mut DistArray<f64>, &CommTracker) -> RedistReport| {
        let mut a = DistArray::from_fn("A", from.clone(), |pt| (pt.coord(0) as f64).sin());
        let t = tracker(p);
        let report = executor(&mut a, &t);
        (a.to_dense(), report, t.snapshot())
    };
    let base = run(&|a, t| {
        redistribute_with(a, to.clone(), t, &RedistOptions::default(), &serial).unwrap()
    });
    let spawned = run(&|a, t| {
        redistribute_with(a, to.clone(), t, &RedistOptions::default(), &spawn).unwrap()
    });
    let pooled_r = run(&|a, t| {
        redistribute_with(a, to.clone(), t, &RedistOptions::default(), &pooled).unwrap()
    });
    assert_eq!(base, spawned, "fresh-spawn differs from serial");
    assert_eq!(base, pooled_r, "pooled differs from serial");
    assert!(pool.jobs_dispatched() > 0, "the pooled run used the pool");
}

#[test]
fn pooled_spawn_serial_identical_for_ghost_exchange() {
    let n = 16usize;
    let p = 4usize;
    let (serial, spawn, pooled, _pool) = executors();
    let dist = dist_2d(DistType::blocks2d(), n, n, p);
    let a = DistArray::from_fn("U", dist, |pt| (pt.coord(0) * 100 + pt.coord(1)) as f64);
    let widths = [(1, 1), (1, 1)];
    let run = |e: &dyn PlanExecutor2| {
        let t = tracker(p);
        let cache = PlanCache::new();
        let (g, rep) = e.ghost(&a, &widths, &cache, &t);
        (ghost_values(&a, &g), rep, t.snapshot())
    };
    let base = run(&serial);
    assert_eq!(base, run(&spawn), "fresh-spawn ghost exchange differs");
    assert_eq!(base, run(&pooled), "pooled ghost exchange differs");
}

/// Flattens every processor's view of every ghost point for comparison.
fn ghost_values(a: &DistArray<f64>, g: &vf_runtime::ghost::GhostRegion<f64>) -> Vec<Option<f64>> {
    let mut out = Vec::new();
    for proc in a.dist().proc_ids() {
        for point in a.domain().iter() {
            out.push(g.get(*proc, &point));
        }
    }
    out
}

#[test]
fn pooled_spawn_serial_identical_for_gather_and_assign() {
    let n = 128usize;
    let p = 4usize;
    let (serial, spawn, pooled, _pool) = executors();
    let dist = dist_1d(DistType::cyclic1d(1), n, p);
    let a = DistArray::from_fn("X", dist.clone(), |pt| pt.coord(0) as f64 * 0.5);
    // Every processor reads a strided window of remote elements.
    let accesses: Vec<(ProcId, Point)> = (0..n)
        .map(|i| (ProcId((i * 7) % p), Point::d1((i % n) as i64 + 1)))
        .collect();
    let schedule = inspector(a.dist(), &accesses).unwrap();
    let gather_under = |e: &dyn PlanExecutor2| {
        let t = tracker(p);
        let g = e.gather(&a, &schedule, &t);
        let mut vals = Vec::new();
        for (q, pt) in &accesses {
            vals.push(g.get(*q, a.dist(), pt));
        }
        (vals, t.snapshot())
    };
    let base = gather_under(&serial);
    assert_eq!(base, gather_under(&spawn), "spawned gather differs");
    assert_eq!(base, gather_under(&pooled), "pooled gather differs");

    // Assignment between different layouts.
    let rows = dist_2d(DistType::rows(), 32, 32, p);
    let cols = dist_2d(DistType::columns(), 32, 32, p);
    let src = DistArray::from_fn("S", cols, |pt| (pt.coord(0) * 31 + pt.coord(1)) as f64);
    let assign_under = |e: &dyn PlanExecutor2| {
        let mut dst: DistArray<f64> = DistArray::new("D", rows.clone());
        let t = tracker(p);
        let rep = e.assign(&mut dst, &src, &t);
        (dst.to_dense(), rep, t.snapshot())
    };
    let base = assign_under(&serial);
    assert_eq!(base, assign_under(&spawn), "spawned assign differs");
    assert_eq!(base, assign_under(&pooled), "pooled assign differs");
}

/// Object-safe adapter so the same closure body can run under all three
/// backends (the `PlanExecutor` trait itself has generic methods).
trait PlanExecutor2 {
    fn gather(
        &self,
        a: &DistArray<f64>,
        s: &vf_runtime::parti::CommSchedule,
        t: &CommTracker,
    ) -> vf_runtime::parti::GatherResult<f64>;
    fn assign(
        &self,
        dst: &mut DistArray<f64>,
        src: &DistArray<f64>,
        t: &CommTracker,
    ) -> vf_runtime::assign::AssignReport;
    fn ghost(
        &self,
        a: &DistArray<f64>,
        widths: &[(usize, usize)],
        cache: &PlanCache,
        t: &CommTracker,
    ) -> (
        vf_runtime::ghost::GhostRegion<f64>,
        vf_runtime::ghost::GhostReport,
    );
}

impl<E: PlanExecutor> PlanExecutor2 for E {
    fn gather(
        &self,
        a: &DistArray<f64>,
        s: &vf_runtime::parti::CommSchedule,
        t: &CommTracker,
    ) -> vf_runtime::parti::GatherResult<f64> {
        execute_gather_with(a, s, t, self).unwrap()
    }
    fn assign(
        &self,
        dst: &mut DistArray<f64>,
        src: &DistArray<f64>,
        t: &CommTracker,
    ) -> vf_runtime::assign::AssignReport {
        vf_runtime::assign::assign_with(dst, src, t, self).unwrap()
    }
    fn ghost(
        &self,
        a: &DistArray<f64>,
        widths: &[(usize, usize)],
        cache: &PlanCache,
        t: &CommTracker,
    ) -> (
        vf_runtime::ghost::GhostRegion<f64>,
        vf_runtime::ghost::GhostReport,
    ) {
        exchange_ghosts_cached_with(a, widths, t, cache, self).unwrap()
    }
}

#[test]
fn pooled_scatter_matches_serial_with_order_sensitive_combine() {
    let n = 96usize;
    let p = 4usize;
    let (_, _, pooled, _pool) = executors();
    let dist = dist_1d(DistType::cyclic1d(2), n, p);
    let combine = |a: f64, b: f64| a * 0.5 + b; // neither commutative nor associative
    let updates: Vec<(ProcId, Point, f64)> = (0..3 * n)
        .map(|k| {
            (
                ProcId(k % p),
                Point::d1((k % n) as i64 + 1),
                (k as f64).cos(),
            )
        })
        .collect();
    let mut serial_arr = DistArray::from_fn("S", dist.clone(), |pt| pt.coord(0) as f64);
    let t1 = tracker(p);
    let m1 = vf_runtime::parti::execute_scatter(&mut serial_arr, &updates, &t1, combine).unwrap();
    let mut pooled_arr = DistArray::from_fn("S", dist, |pt| pt.coord(0) as f64);
    let t2 = tracker(p);
    let m2 = execute_scatter_with(&mut pooled_arr, &updates, &t2, &pooled, combine).unwrap();
    assert_eq!(m1, m2);
    assert_eq!(serial_arr.to_dense(), pooled_arr.to_dense());
    assert_eq!(t1.snapshot(), t2.snapshot());
}

#[test]
fn wire_packed_fused_ghost_matches_per_part_with_identical_traffic() {
    let n = 12usize;
    let p = 4usize;
    let (serial, _, pooled, _pool) = executors();
    let dist = dist_2d(DistType::blocks2d(), n, n, p);
    let a = DistArray::from_fn("A", dist.clone(), |pt| {
        (pt.coord(0) * 17 + pt.coord(1)) as f64
    });
    let b = DistArray::from_fn("B", dist.clone(), |pt| -(pt.coord(1) as f64) * 3.0);
    let c = DistArray::from_fn("C", dist.clone(), |pt| (pt.coord(0) + pt.coord(1)) as f64);
    let widths = [(1, 1), (1, 1)];
    let cache = PlanCache::new();
    let plan = cache.ghost_plan(&dist, &widths).unwrap();
    let fused = FusedPlan::fuse(vec![
        Arc::clone(&plan),
        Arc::clone(&plan),
        Arc::clone(&plan),
    ])
    .unwrap();
    let arrays = [&a, &b, &c];

    let t_parts = tracker(p);
    let (per_part, exec_parts) =
        exchange_ghosts_fused_planned_with(&arrays, &fused, &t_parts, &serial).unwrap();
    for (name, executor) in [
        ("serial", &serial as &dyn WireGhost),
        ("pooled", &pooled as &dyn WireGhost),
    ] {
        let t_wire = tracker(p);
        let (wire, exec_wire) = executor.wire(&arrays, &fused, &t_wire);
        // Identical charged traffic: exactly one message per communicating
        // pair, bytes conserved, tracker snapshots equal.
        assert_eq!(exec_parts, exec_wire, "{name}");
        assert_eq!(exec_wire.messages, fused.num_messages(), "{name}");
        assert_eq!(exec_wire.bytes, fused.bytes_for(8), "{name}");
        assert_eq!(t_parts.snapshot(), t_wire.snapshot(), "{name}");
        // Region values are the per-part execution bitwise.
        for (idx, array) in arrays.iter().enumerate() {
            for proc in array.dist().proc_ids() {
                for point in array.domain().iter() {
                    assert_eq!(
                        per_part[idx].get(*proc, &point),
                        wire[idx].get(*proc, &point),
                        "{name}: array {idx} at {point:?} on {proc:?}"
                    );
                }
            }
        }
    }
}

/// Object-safe adapter for the wire ghost exchange under both backends.
trait WireGhost {
    fn wire(
        &self,
        arrays: &[&DistArray<f64>; 3],
        fused: &FusedPlan,
        t: &CommTracker,
    ) -> (Vec<vf_runtime::ghost::GhostRegion<f64>>, ExecReport);
}

impl<E: PlanExecutor> WireGhost for E {
    fn wire(
        &self,
        arrays: &[&DistArray<f64>; 3],
        fused: &FusedPlan,
        t: &CommTracker,
    ) -> (Vec<vf_runtime::ghost::GhostRegion<f64>>, ExecReport) {
        exchange_ghosts_fused_planned_wire_with(&arrays[..], fused, t, self).unwrap()
    }
}

#[test]
fn wire_packed_fused_redistribute_matches_per_part() {
    let n = 64usize;
    let p = 4usize;
    let (serial, _, pooled, _pool) = executors();
    let from = dist_1d(DistType::block1d(), n, p);
    let to = dist_1d(DistType::cyclic1d(1), n, p);
    let plan = Arc::new(plan_redistribute(&from, &to).unwrap());
    let fused = FusedPlan::fuse(vec![Arc::clone(&plan), plan]).unwrap();
    let build = || {
        (
            DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64),
            DistArray::from_fn("B", from.clone(), |pt| (pt.coord(0) as f64).powi(2)),
        )
    };
    let (mut a1, mut b1) = build();
    let t1 = tracker(p);
    let (r1, e1) =
        execute_redistribute_fused(&mut [&mut a1, &mut b1], &fused, &t1, &serial).unwrap();
    let (mut a2, mut b2) = build();
    let t2 = tracker(p);
    let (r2, e2) =
        execute_redistribute_fused_wire(&mut [&mut a2, &mut b2], &fused, &t2, &pooled).unwrap();
    assert_eq!(a1.to_dense(), a2.to_dense());
    assert_eq!(b1.to_dense(), b2.to_dense());
    assert_eq!(r1, r2);
    assert_eq!(e1, e2);
    assert_eq!(t1.snapshot(), t2.snapshot());
}

#[test]
fn scope_reuses_one_pool_across_repeated_distributes() {
    let p = 4usize;
    let pool = Arc::new(WorkerPool::new(3));
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(p));
    scope.set_executor(ExecBackend::Threaded(
        ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0),
    ));
    let held = Arc::clone(scope.worker_pool().expect("threaded backend has a pool"));
    assert!(
        Arc::ptr_eq(&held, &pool),
        "the scope holds the pool it was given"
    );

    scope
        .declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(64)).initial(DistType::block1d()))
        .unwrap();
    scope
        .declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(64), "B"))
        .unwrap();
    for i in 1..=64i64 {
        scope
            .array_mut("B")
            .unwrap()
            .set(&Point::d1(i), i as f64)
            .unwrap();
        scope
            .array_mut("A")
            .unwrap()
            .set(&Point::d1(i), -(i as f64))
            .unwrap();
    }
    let mut dispatched = pool.jobs_dispatched();
    for (round, t) in [
        DistType::cyclic1d(1),
        DistType::block1d(),
        DistType::cyclic1d(2),
    ]
    .into_iter()
    .enumerate()
    {
        scope.distribute(DistributeStmt::new("B", t)).unwrap();
        let now = pool.jobs_dispatched();
        assert!(
            now > dispatched,
            "round {round}: DISTRIBUTE did not dispatch to the persistent pool"
        );
        dispatched = now;
        // Same pool instance throughout — no respawn between statements.
        assert!(Arc::ptr_eq(
            scope.worker_pool().expect("still threaded"),
            &pool
        ));
    }
    // Values survived every pooled round trip.
    for i in 1..=64i64 {
        assert_eq!(
            scope.array("B").unwrap().get(&Point::d1(i)).unwrap(),
            i as f64
        );
        assert_eq!(
            scope.array("A").unwrap().get(&Point::d1(i)).unwrap(),
            -(i as f64)
        );
    }
}

#[test]
fn worker_panic_leaves_the_pool_usable_for_executors() {
    let p = 4usize;
    let pool = Arc::new(WorkerPool::new(2));
    // Inject a panic into one pool worker's job.
    let t = CommTracker::new(p, CostModel::zero());
    let boom = catch_unwind(AssertUnwindSafe(|| {
        pool.run_partitioned(&t, 2, |_, item| {
            assert!(item != 1, "injected worker failure");
            item
        })
    }));
    assert!(
        boom.is_err(),
        "the worker panic propagates to the submitter"
    );

    // The same pool then executes a real plan correctly.
    let pooled = ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0);
    let from = dist_1d(DistType::block1d(), 64, p);
    let to = dist_1d(DistType::cyclic1d(1), 64, p);
    let mut a = DistArray::from_fn("A", from, |pt| pt.coord(0) as f64);
    let expect = a.to_dense();
    let tr = tracker(p);
    redistribute_with(&mut a, to, &tr, &RedistOptions::default(), &pooled).unwrap();
    assert_eq!(a.to_dense(), expect, "data intact after the poisoned job");
}

#[test]
fn worker_panic_leaves_the_pool_usable_for_streaming_split_phase() {
    // Panic containment extended to the streaming unpack path: after a
    // poisoned job, the same pool must still stream a split-phase ghost
    // exchange to completion — bitwise equal to the blocking wire path,
    // with no array left partially unpacked and identical tracker charges.
    let n = 16usize;
    let p = 4usize;
    let pool = Arc::new(WorkerPool::new(3));
    let t0 = CommTracker::new(p, CostModel::zero());
    let boom = catch_unwind(AssertUnwindSafe(|| {
        pool.run_partitioned(&t0, 3, |_, item| {
            assert!(item != 2, "injected worker failure");
            item
        })
    }));
    assert!(
        boom.is_err(),
        "the worker panic propagates to the submitter"
    );

    let dist = dist_2d(DistType::blocks2d(), n, n, p);
    let arrays: Vec<DistArray<f64>> = (0..2)
        .map(|k| {
            DistArray::from_fn("P", dist.clone(), |pt| {
                (pt.coord(0) * 100 + pt.coord(1)) as f64 * (k + 1) as f64
            })
        })
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let widths = [(1, 1), (1, 1)];

    let t_block = tracker(p);
    let (blocking, _) =
        vf_runtime::ghost::exchange_ghosts_fused_wire(&refs, &widths, &t_block, &PlanCache::new())
            .unwrap();

    let backend = ExecBackend::Threaded(
        ThreadedExecutor::with_pool(Arc::clone(&pool)).serial_cutoff_bytes(0),
    );
    let t_split = tracker(p);
    let split = vf_runtime::ghost::exchange_ghosts_fused_wire_split(
        &refs,
        &widths,
        &t_split,
        &PlanCache::new(),
        &backend,
    )
    .unwrap();
    assert!(split.is_streaming(), "the poisoned pool still streams");
    let (regions, _) = split.wait(&t_split).unwrap();
    for (k, array) in arrays.iter().enumerate() {
        for proc in array.dist().proc_ids() {
            for point in array.domain().iter() {
                assert_eq!(
                    regions[k].get(*proc, &point),
                    blocking[k].get(*proc, &point),
                    "array {k} at {point:?} on {proc:?}"
                );
            }
        }
    }
    assert_eq!(t_split.snapshot().per_proc(), t_block.snapshot().per_proc());
}

#[test]
fn zero_width_halo_posts_no_messages_through_the_wire_path() {
    let p = 4usize;
    let (_, _, pooled, _pool) = executors();
    let dist = dist_2d(DistType::columns(), 8, 8, p);
    let a = DistArray::from_fn("Z", dist.clone(), |pt| pt.coord(0) as f64);
    let cache = PlanCache::new();
    let plan = cache.ghost_plan(&dist, &[(0, 0), (0, 0)]).unwrap();
    let fused = FusedPlan::fuse(vec![Arc::clone(&plan), plan]).unwrap();
    let t = tracker(p);
    let (regions, exec) =
        exchange_ghosts_fused_planned_wire_with(&[&a, &a], &fused, &t, &pooled).unwrap();
    assert_eq!(exec.messages, 0);
    assert_eq!(exec.bytes, 0);
    assert_eq!(
        t.snapshot().total_messages(),
        0,
        "no zero-byte messages posted"
    );
    for r in &regions {
        for proc in a.dist().proc_ids() {
            assert!(r.is_empty(*proc));
        }
    }
}
