//! The `VF_EXEC_CUTOFF` environment override of [`ExecBackend::auto`].
//!
//! This lives in its own test binary with exactly **one** test: mutating
//! the process environment while other tests run concurrently in the same
//! binary would race libc's `getenv`/`setenv` (undefined behaviour per
//! POSIX, and the reason `std::env::set_var` is unsafe in later editions).
//! A single-test binary makes the set → construct → unset sequence the
//! only environment access in the process.

use vf_core::prelude::*;

#[test]
fn exec_cutoff_env_override_reaches_auto_backends() {
    std::env::set_var("VF_EXEC_CUTOFF", "12345");
    let auto = ExecBackend::auto();
    std::env::remove_var("VF_EXEC_CUTOFF");
    match auto {
        ExecBackend::Threaded(t) => assert_eq!(t.effective_serial_cutoff(), 12345),
        // Single-core hosts stay serial; the override has nothing to bind
        // to, which is the documented behaviour.
        ExecBackend::Serial => {
            assert_eq!(
                std::thread::available_parallelism().map(|n| n.get()).ok(),
                Some(1)
            );
        }
        // Only selected when VF_EXEC_BACKEND=sharded is exported, which
        // this single-env-test binary never does.
        ExecBackend::Sharded(s) => {
            assert_eq!(std::env::var("VF_EXEC_BACKEND").as_deref(), Ok("sharded"));
            assert_eq!(vf_runtime::PlanExecutor::name(&s), "sharded");
        }
    }
}
