//! Property suite for the indirect-distribution subsystem: mapping-array
//! distributions, the distributed translation table, and redistribution
//! through the `CommPlan`/`PlanCache`/executor stack.

use proptest::prelude::*;
use std::sync::Arc;
use vf_core::prelude::*;
use vf_integration::{dist_1d, zero_machine};
use vf_runtime::plan::plan_redistribute;
use vf_runtime::DistTranslationTable;

fn indirect_1d(owners: Vec<usize>, p: usize) -> Distribution {
    let n = owners.len();
    Distribution::new(
        DistType::indirect1d(Arc::new(IndirectMap::new(owners).expect("non-empty"))),
        IndexDomain::d1(n),
        ProcessorView::linear(p),
    )
    .expect("valid indirect distribution")
}

/// Brute-force per-element oracle: how many elements change owner between
/// `from` and `to`, resolved point by point through the public owner API.
fn oracle_moved(from: &Distribution, to: &Distribution) -> usize {
    from.domain()
        .clone()
        .iter()
        .filter(|pt| from.owner(pt).unwrap() != to.owner(pt).unwrap())
        .count()
}

#[test]
fn indirect_redistribute_round_trips_bitwise() {
    // BLOCK -> INDIRECT(mapA) -> INDIRECT(mapB) -> BLOCK, at the runtime
    // level, with data compared bitwise at every stage.
    let n = 160usize;
    let p = 4usize;
    let machine = zero_machine(p);
    let tracker = machine.tracker();
    let block = dist_1d(DistType::block1d(), n, p);
    let map_a = indirect_1d((0..n).map(|i| (i * 7 + 1) % p).collect(), p);
    let map_b = indirect_1d((0..n).map(|i| (i / 5) % p).collect(), p);
    let mut a = DistArray::from_fn("A", block.clone(), |pt| (pt.coord(0) as f64).sqrt());
    let before = a.to_dense();
    for target in [map_a, map_b, block] {
        let report = redistribute(&mut a, target, &tracker, &RedistOptions::default()).unwrap();
        assert_eq!(a.to_dense(), before, "data lost");
        a.check_invariants().unwrap();
        assert_eq!(report.moved_elements + report.stayed_elements, n);
    }
}

#[test]
fn indirect_plans_conserve_against_the_per_element_oracle() {
    let n = 96usize;
    let p = 4usize;
    let block = dist_1d(DistType::block1d(), n, p);
    let cyclic = dist_1d(DistType::cyclic1d(1), n, p);
    let ind_a = indirect_1d((0..n).map(|i| (i * 11 + 2) % p).collect(), p);
    let ind_b = indirect_1d((0..n).map(|i| (i * i) % p).collect(), p);
    // Into, out of, and between indirect distributions.
    for (from, to) in [
        (&block, &ind_a),
        (&ind_a, &block),
        (&cyclic, &ind_b),
        (&ind_a, &ind_b),
        (&ind_b, &ind_a),
    ] {
        let plan = plan_redistribute(from, to).unwrap();
        let moved = oracle_moved(from, to);
        assert_eq!(plan.moved_elements(), moved, "{from} -> {to}");
        assert_eq!(plan.moved_elements() + plan.stayed_elements(), n);
        assert_eq!(plan.bytes_for(8), moved * 8);
        // Planning against an indirect target carried directory page
        // fetches on the plan; a plan onto a regular target carries none.
        let (dir_messages, dir_bytes) = plan.pending_directory_traffic();
        assert_eq!(dir_messages > 0, to.dist_type().has_indirect(), "{to}");
        // First execution charges the data motion plus the inspection's
        // directory traffic, exactly once.
        let machine = zero_machine(p);
        let tracker = machine.tracker();
        let mut arr = DistArray::from_fn("X", from.clone(), |pt| pt.coord(0) as f64 * 0.5);
        let dense = arr.to_dense();
        let report =
            vf_runtime::execute_redistribute(&mut arr, &plan, &tracker, &RedistOptions::default())
                .unwrap();
        assert_eq!(arr.to_dense(), dense);
        assert_eq!(report.moved_elements, moved);
        assert_eq!(
            report.bytes,
            moved * 8,
            "data-plane report excludes the directory"
        );
        assert_eq!(tracker.snapshot().total_bytes(), moved * 8 + dir_bytes);
        // Re-executing the (now drained) plan charges the data motion only
        // — the cold-vs-warm split of schedule reuse.
        assert_eq!(plan.pending_directory_traffic(), (0, 0));
        let t2 = zero_machine(p).tracker();
        let mut arr2 = DistArray::from_fn("X", from.clone(), |pt| pt.coord(0) as f64 * 0.5);
        vf_runtime::execute_redistribute(&mut arr2, &plan, &t2, &RedistOptions::default()).unwrap();
        assert_eq!(t2.snapshot().total_bytes(), moved * 8);
    }
}

#[test]
fn translation_table_lookups_equal_naive_owner_map_scans() {
    let n = 300usize;
    let p = 5usize;
    let owners: Vec<usize> = (0..n).map(|i| (i * 13 + 3) % p).collect();
    let dist = indirect_1d(owners.clone(), p);
    let table = DistTranslationTable::with_page_size(&dist, 32);
    // The naive scan: owners[] directly, local offset by counting.
    let mut seen = vec![0usize; p];
    for (lin, &owner) in owners.iter().enumerate() {
        let expect = (ProcId(owner), seen[owner]);
        seen[owner] += 1;
        assert_eq!(table.lookup(lin), expect, "direct lookup at {lin}");
        assert_eq!(
            table.lookup_from(ProcId(lin % p), lin),
            expect,
            "cached lookup at {lin}"
        );
        let point = Point::d1(lin as i64 + 1);
        assert_eq!(dist.owner(&point).unwrap(), expect.0);
        assert_eq!(dist.loc_map(expect.0, &point).unwrap(), expect.1);
    }
}

#[test]
fn repeated_indirect_distribute_is_served_from_the_plan_cache() {
    let n = 64usize;
    let p = 4usize;
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(p));
    scope
        .declare_dynamic(DynamicDecl::new("V", IndexDomain::d1(n)).initial(DistType::block1d()))
        .unwrap();
    let map = Arc::new(IndirectMap::from_fn(n, |i| (i * 3 + 1) % p).unwrap());
    let to_indirect = DistributeStmt::new("V", DistType::indirect1d(Arc::clone(&map)));
    let to_block = DistributeStmt::new("V", DistType::block1d());
    scope.distribute(to_indirect.clone()).unwrap();
    scope.distribute(to_block.clone()).unwrap();
    let after_first_cycle = scope.plan_cache().stats();
    assert_eq!(after_first_cycle.misses, 2);
    // Ten more cycles: all hits, zero planning.
    for _ in 0..10 {
        scope.distribute(to_indirect.clone()).unwrap();
        scope.distribute(to_block.clone()).unwrap();
    }
    let stats = scope.plan_cache().stats();
    assert_eq!(stats.misses, 2, "no replanning while the maps repeat");
    assert_eq!(stats.hits, 20);
}

#[test]
fn indirect_class_fuses_and_threaded_matches_serial() {
    // A three-array connect class sharing one map: the DISTRIBUTE fuses to
    // one message per pair, and the threaded backend (including the
    // hot-destination split) is bitwise identical to serial.
    let n = 128usize;
    let p = 4usize;
    // A skewed map: half of everything lands on P0 (the hot receiver).
    let owners: Vec<usize> = (0..n)
        .map(|i| if i % 2 == 0 { 0 } else { 1 + i % (p - 1) })
        .collect();
    let build = |backend| {
        let mut scope: VfScope<f64> = VfScope::new(zero_machine(p));
        scope.set_executor(backend);
        scope
            .declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(n)).initial(DistType::block1d()))
            .unwrap();
        for name in ["A1", "A2"] {
            scope
                .declare_secondary(SecondaryDecl::extraction(name, IndexDomain::d1(n), "B"))
                .unwrap();
        }
        for i in 1..=n as i64 {
            for (k, name) in ["B", "A1", "A2"].iter().enumerate() {
                scope
                    .array_mut(name)
                    .unwrap()
                    .set(&Point::d1(i), (i * (k as i64 + 1)) as f64)
                    .unwrap();
            }
        }
        let report = scope
            .distribute(DistributeStmt::new(
                "B",
                DistType::indirect1d(Arc::new(IndirectMap::new(owners.clone()).unwrap())),
            ))
            .unwrap();
        (scope, report)
    };
    let (serial_scope, serial_report) = build(ExecBackend::Serial);
    let (threaded_scope, threaded_report) = build(ExecBackend::Threaded(
        ThreadedExecutor::with_workers(3).serial_cutoff_bytes(0),
    ));
    assert!(serial_report.fused.is_some());
    assert!(serial_report.messages() < serial_report.unfused_messages());
    assert_eq!(serial_report, threaded_report);
    for name in ["B", "A1", "A2"] {
        assert_eq!(
            serial_scope.array(name).unwrap().to_dense(),
            threaded_scope.array(name).unwrap().to_dense(),
            "{name} differs between backends"
        );
    }
    assert_eq!(
        serial_scope.stats().total_messages(),
        threaded_scope.stats().total_messages()
    );
}

#[test]
fn indirect_gather_and_scatter_resolve_through_the_map() {
    let n = 40usize;
    let p = 4usize;
    let dist = indirect_1d((0..n).map(|i| (i * 5 + 2) % p).collect(), p);
    let mut a = DistArray::from_fn("M", dist, |pt| pt.coord(0) as f64);
    let machine = zero_machine(p);
    let tracker = machine.tracker();
    // Gather: every processor reads element 1 and its own rank's element.
    let accesses: Vec<(ProcId, Point)> = (0..p)
        .flat_map(|q| {
            [
                (ProcId(q), Point::d1(1)),
                (ProcId(q), Point::d1(q as i64 + 2)),
            ]
        })
        .collect();
    let schedule = vf_runtime::parti::inspector(a.dist(), &accesses).unwrap();
    let gathered = vf_runtime::parti::execute_gather(&a, &schedule, &tracker).unwrap();
    for (q, point) in &accesses {
        let expect = point.coord(0) as f64;
        let owner = a.dist().owner(point).unwrap();
        if owner == *q {
            assert_eq!(a.get(point).unwrap(), expect);
        } else {
            assert_eq!(gathered.get(*q, a.dist(), point), Some(expect));
        }
    }
    // Scatter accumulates at map-resolved owners.
    let updates: Vec<(ProcId, Point, f64)> = (1..=n as i64)
        .map(|i| (ProcId(0), Point::d1(i), 100.0))
        .collect();
    vf_runtime::parti::execute_scatter(&mut a, &updates, &tracker, |x, y| x + y).unwrap();
    for i in 1..=n as i64 {
        assert_eq!(a.get(&Point::d1(i)).unwrap(), i as f64 + 100.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random maps: redistribution between any two of them round-trips
    /// bitwise, conserves elements against the oracle, and cache-hits on
    /// repeat.
    #[test]
    fn prop_indirect_redistribute_round_trip(
        owners_a in proptest::collection::vec(0usize..4, 8..80),
        seed in 0usize..1000,
    ) {
        let n = owners_a.len();
        let p = 4usize;
        let owners_b: Vec<usize> = (0..n).map(|i| (i * 7 + seed) % p).collect();
        let from = indirect_1d(owners_a, p);
        let to = indirect_1d(owners_b, p);
        let machine = zero_machine(p);
        let tracker = machine.tracker();
        let cache = PlanCache::new();
        let mut a = DistArray::from_fn("P", from.clone(), |pt| (pt.coord(0) * 3) as f64);
        let dense = a.to_dense();
        let report = redistribute_cached(
            &mut a, to.clone(), &tracker, &RedistOptions::default(), &cache,
        ).unwrap();
        prop_assert_eq!(a.to_dense(), dense.clone());
        prop_assert_eq!(report.moved_elements, oracle_moved(&from, &to));
        let back = redistribute_cached(
            &mut a, from.clone(), &tracker, &RedistOptions::default(), &cache,
        ).unwrap();
        prop_assert_eq!(a.to_dense(), dense);
        prop_assert_eq!(back.moved_elements, report.moved_elements);
        // Second cycle: pure cache hits.
        redistribute_cached(&mut a, to, &tracker, &RedistOptions::default(), &cache).unwrap();
        redistribute_cached(&mut a, from, &tracker, &RedistOptions::default(), &cache).unwrap();
        prop_assert_eq!(cache.stats().misses, 2);
        prop_assert_eq!(cache.stats().hits, 2);
    }

    /// The distributed translation table agrees with the owner map for
    /// random maps, page sizes and requesters.
    #[test]
    fn prop_translation_table_matches_owner_map(
        owners in proptest::collection::vec(0usize..5, 5..120),
        page_size in 1usize..40,
    ) {
        let p = 5usize;
        let n = owners.len();
        let dist = indirect_1d(owners.clone(), p);
        let table = DistTranslationTable::with_page_size(&dist, page_size);
        let mut seen = vec![0usize; p];
        for (lin, &owner) in owners.iter().enumerate() {
            let expect = (ProcId(owner), seen[owner]);
            seen[owner] += 1;
            prop_assert_eq!(table.lookup(lin), expect);
            prop_assert_eq!(table.lookup_from(ProcId((lin * 3) % p), lin), expect);
        }
        prop_assert_eq!(table.len(), n);
        prop_assert_eq!(table.num_pages(), n.div_ceil(page_size.max(1)));
    }
}
