//! Integration tests of the application kernels against their sequential
//! references and the paper's qualitative claims.

use vf_apps::adi::{self, AdiConfig, AdiStrategy};
use vf_apps::pic::{self, PicConfig, PicStrategy};
use vf_apps::smoothing::{self, SmoothingConfig, SmoothingLayout};
use vf_apps::workloads::{self, ParticleLayout};
use vf_core::prelude::*;
use vf_integration::zero_machine;

#[test]
fn smoothing_matches_reference_for_many_processor_counts() {
    let n = 16;
    let steps = 4;
    let initial = workloads::initial_grid(n, 21);
    let reference = smoothing::sequential_reference(n, steps, &initial);
    for p in [1usize, 2, 3, 4, 8] {
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = zero_machine(p);
            let r = smoothing::run(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            for (a, b) in r.field.iter().zip(reference.iter()) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "{layout:?} with {p} processors diverges"
                );
            }
        }
    }
}

#[test]
fn smoothing_crossover_matches_the_analytic_chooser() {
    // For a machine and size where the analytic model prefers each layout,
    // the simulated per-step critical time must agree with the preference.
    let p = 16;
    let steps = 2;
    for (cost, n) in [
        (CostModel::latency_bound(), 48usize),
        (CostModel::bandwidth_bound(), 96usize),
    ] {
        let initial = workloads::initial_grid(n, 2);
        let chosen = smoothing::choose_layout(n, p, &cost);
        let mut measured = Vec::new();
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = Machine::new(p, cost.clone());
            let r = smoothing::run(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            measured.push((layout, r.stats.critical_time()));
        }
        measured.sort_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(
            measured[0].0, chosen,
            "chooser and simulation disagree for n={n}"
        );
    }
}

#[test]
fn adi_strategies_agree_with_reference_across_sizes() {
    for n in [8usize, 20] {
        let initial = workloads::initial_grid(n, 31);
        let reference = adi::sequential_reference(n, 2, &initial);
        for strategy in [
            AdiStrategy::StaticColumns,
            AdiStrategy::StaticRows,
            AdiStrategy::DynamicRedistribute,
            AdiStrategy::TwoCopies,
        ] {
            let machine = zero_machine(3);
            let r = adi::run(
                &AdiConfig {
                    n,
                    iterations: 2,
                    strategy,
                },
                &machine,
                &initial,
            );
            for (a, b) in r.field.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-9, "{strategy:?} diverges at n={n}");
            }
        }
    }
}

#[test]
fn adi_communication_breakdown_matches_figure1_claim() {
    // Figure 1's point: with dynamic redistribution all communication is in
    // the DISTRIBUTE; with a static distribution it is in one of the sweeps;
    // and the dynamic total bytes are below the static sweep bytes for the
    // gather/scatter model.
    let n = 32;
    let p = 4;
    let initial = workloads::initial_grid(n, 13);
    let run_strategy = |strategy| {
        let machine = zero_machine(p);
        adi::run(
            &AdiConfig {
                n,
                iterations: 1,
                strategy,
            },
            &machine,
            &initial,
        )
    };
    let dynamic = run_strategy(AdiStrategy::DynamicRedistribute);
    let static_cols = run_strategy(AdiStrategy::StaticColumns);
    assert_eq!(dynamic.sweep_messages, 0);
    assert_eq!(static_cols.redist_messages, 0);
    assert!(static_cols.sweep_messages > 0);
    assert!(dynamic.redist_messages > 0);
    // The dynamic strategy sends fewer, larger messages.
    assert!(dynamic.redist_messages < static_cols.sweep_messages);
}

#[test]
fn pic_dynamic_strategy_keeps_imbalance_bounded_as_the_cloud_drifts() {
    let ncell = 128;
    let init = workloads::particles(
        ncell,
        1500,
        ParticleLayout::Cluster {
            center: 0.15,
            width: 0.05,
        },
        0.5,
        41,
    );
    let run_strategy = |strategy| {
        let machine = Machine::new(8, CostModel::modern_cluster());
        pic::run(
            &PicConfig {
                ncell,
                steps: 40,
                strategy,
            },
            &machine,
            &init,
        )
    };
    let static_block = run_strategy(PicStrategy::StaticBlock);
    let dynamic = run_strategy(PicStrategy::DynamicGenBlock {
        period: 10,
        threshold: 1.1,
    });

    assert_eq!(static_block.total_particles, 1500);
    assert_eq!(dynamic.total_particles, 1500);
    // The static distribution becomes badly imbalanced at some point; the
    // dynamic one stays closer to balanced on average.
    assert!(static_block.max_imbalance > 1.5);
    assert!(dynamic.mean_imbalance < static_block.mean_imbalance);
    // Rebalancing happened but not every step.
    assert!(dynamic.rebalance_count >= 1);
    assert!(dynamic.rebalance_count <= 4);
    // And the modelled execution time improves despite the redistribution
    // traffic (the paper's overall claim about judicious use of dynamic
    // distributions).
    assert!(dynamic.stats.critical_time() < static_block.stats.critical_time());
}

#[test]
fn pic_imbalance_drops_right_after_a_rebalance_step() {
    let ncell = 96;
    let init = workloads::particles(
        ncell,
        1200,
        ParticleLayout::Cluster {
            center: 0.25,
            width: 0.06,
        },
        0.4,
        11,
    );
    let machine = zero_machine(6);
    let r = pic::run(
        &PicConfig {
            ncell,
            steps: 30,
            strategy: PicStrategy::DynamicGenBlock {
                period: 10,
                threshold: 1.05,
            },
        },
        &machine,
        &init,
    );
    // Find a step where a rebalance occurred and compare the imbalance
    // observed at the next step.
    let mut checked = 0;
    for w in r.per_step.windows(2) {
        if w[0].rebalanced {
            assert!(
                w[1].imbalance <= w[0].imbalance + 0.3,
                "imbalance should not grow right after rebalancing"
            );
            checked += 1;
        }
    }
    assert!(checked >= 1, "expected at least one rebalance in 30 steps");
}
