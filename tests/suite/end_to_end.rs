//! End-to-end scenarios combining the language layer, the runtime and the
//! simulated machine.

use vf_core::prelude::*;
use vf_integration::{ipsc_machine, zero_machine};

/// The full Figure 1 program, written against the language layer: dynamic
/// declaration with RANGE, local x-sweeps, DISTRIBUTE, local y-sweeps, and
/// the communication confined to the DISTRIBUTE.
#[test]
fn figure1_adi_scenario_through_the_language_layer() {
    let n = 24;
    let mut scope: VfScope<f64> = VfScope::new(ipsc_machine(4));
    scope
        .declare_dynamic(
            DynamicDecl::new("V", IndexDomain::d2(n, n))
                .range([
                    DistPattern::exact(&DistType::columns()),
                    DistPattern::exact(&DistType::rows()),
                ])
                .initial(DistType::columns()),
        )
        .unwrap();

    let initial = vf_apps::workloads::initial_grid(n, 5);
    let domain = IndexDomain::d2(n, n);
    for point in domain.iter() {
        let lin = domain.linearize(&point).unwrap();
        scope
            .array_mut("V")
            .unwrap()
            .set(&point, initial[lin])
            .unwrap();
    }
    scope.take_stats();

    // x-line sweeps: every column is local, so no communication at all.
    let coeffs = vf_apps::tridiag::TridiagCoeffs::diffusion(0.05);
    for j in 1..=n as i64 {
        let mut line: Vec<f64> = (1..=n as i64)
            .map(|i| scope.array("V").unwrap().get(&Point::d2(i, j)).unwrap())
            .collect();
        vf_apps::tridiag::solve_in_place(coeffs, &mut line);
        for (k, v) in line.into_iter().enumerate() {
            scope
                .array_mut("V")
                .unwrap()
                .set(&Point::d2(k as i64 + 1, j), v)
                .unwrap();
        }
    }
    assert_eq!(scope.take_stats().total_messages(), 0);

    // DISTRIBUTE V :: (BLOCK, :) — all the communication happens here.
    let report = scope
        .distribute(DistributeStmt::new("V", DistType::rows()))
        .unwrap();
    assert!(report.moved_elements() > 0);
    let redist_stats = scope.take_stats();
    assert!(redist_stats.total_messages() > 0);
    assert!(scope
        .idt("V", &DistPattern::exact(&DistType::rows()))
        .unwrap());

    // y-line sweeps: every row is now local, again no communication.
    for i in 1..=n as i64 {
        let mut line: Vec<f64> = (1..=n as i64)
            .map(|j| scope.array("V").unwrap().get(&Point::d2(i, j)).unwrap())
            .collect();
        vf_apps::tridiag::solve_in_place(coeffs, &mut line);
        for (k, v) in line.into_iter().enumerate() {
            scope
                .array_mut("V")
                .unwrap()
                .set(&Point::d2(i, k as i64 + 1), v)
                .unwrap();
        }
    }
    assert_eq!(scope.take_stats().total_messages(), 0);

    // The result equals the sequential ADI reference.
    let reference = vf_apps::adi::sequential_reference(n, 1, &initial);
    let result = scope.array("V").unwrap().to_dense();
    for (a, b) in result.iter().zip(reference.iter()) {
        assert!((a - b).abs() < 1e-9);
    }

    // Redistributing outside the declared RANGE is rejected.
    assert!(scope
        .distribute(DistributeStmt::new("V", DistType::blocks2d()))
        .is_err());
}

/// The Figure 2 skeleton at the language level: a DYNAMIC cell array whose
/// general-block redistribution follows the evolving particle counts, with
/// the BOUNDS array recomputed by `balance`.
#[test]
fn figure2_load_balance_scenario_through_the_language_layer() {
    let ncell = 64usize;
    let p = 4usize;
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(p));
    scope
        .declare_dynamic(
            DynamicDecl::new("FIELD", IndexDomain::d1(ncell)).initial(DistType::block1d()),
        )
        .unwrap();

    // A clustered particle population.
    let particles = vf_apps::workloads::particles(
        ncell,
        1000,
        vf_apps::workloads::ParticleLayout::Cluster {
            center: 0.2,
            width: 0.05,
        },
        0.0,
        3,
    );
    let counts = vf_apps::workloads::particles_per_cell(&particles, ncell);

    // Under the static BLOCK distribution the cluster sits on one processor.
    let per_proc_static: Vec<usize> = (0..p)
        .map(|proc| {
            (0..ncell)
                .filter(|&c| {
                    scope
                        .array("FIELD")
                        .unwrap()
                        .dist()
                        .owner(&Point::d1(c as i64 + 1))
                        .unwrap()
                        .0
                        == proc
                })
                .map(|c| counts[c])
                .sum()
        })
        .collect();
    let imbalance_static = *per_proc_static.iter().max().unwrap() as f64 / (1000.0 / p as f64);

    // balance + DISTRIBUTE FIELD :: B_BLOCK(BOUNDS).
    let bounds = vf_apps::pic::balance(&counts, p);
    scope
        .distribute(DistributeStmt::new("FIELD", DistType::gen_block1d(bounds)))
        .unwrap();
    assert!(scope
        .idt("FIELD", &DistPattern::dims(vec![DimPattern::GenBlockAny]))
        .unwrap());

    let per_proc_balanced: Vec<usize> = (0..p)
        .map(|proc| {
            (0..ncell)
                .filter(|&c| {
                    scope
                        .array("FIELD")
                        .unwrap()
                        .dist()
                        .owner(&Point::d1(c as i64 + 1))
                        .unwrap()
                        .0
                        == proc
                })
                .map(|c| counts[c])
                .sum()
        })
        .collect();
    let imbalance_balanced = *per_proc_balanced.iter().max().unwrap() as f64 / (1000.0 / p as f64);
    assert!(
        imbalance_balanced < imbalance_static,
        "rebalancing must reduce the particle imbalance ({imbalance_balanced:.2} vs {imbalance_static:.2})"
    );
    assert!(imbalance_balanced < 1.5);
}

/// The SPMD thread executor and the master-managed tracker agree on the
/// cost model: a ring exchange performed by real threads produces the same
/// accounted bytes as the equivalent tracker calls.
#[test]
fn spmd_executor_accounts_like_the_tracker() {
    let p = 4;
    let cost = CostModel::from_alpha_beta(1e-6, 1e-9);
    let spmd_tracker = CommTracker::new(p, cost.clone());
    vf_machine::spmd::run(p, &spmd_tracker, |ctx| {
        let right = (ctx.rank() + 1) % ctx.num_procs();
        ctx.send_f64s(right, 1, &[ctx.rank() as f64; 16]).unwrap();
        let _ = ctx.recv_f64s(None, 1).unwrap();
        ctx.barrier();
    });
    let manual_tracker = CommTracker::new(p, cost);
    for src in 0..p {
        manual_tracker.send(src, (src + 1) % p, 16 * 8);
    }
    let a = spmd_tracker.snapshot();
    let b = manual_tracker.snapshot();
    assert_eq!(a.total_messages(), b.total_messages());
    assert_eq!(a.total_bytes(), b.total_bytes());
    assert!((a.critical_time() - b.critical_time()).abs() < 1e-12);
}

/// Deferred distribution: an array declared DYNAMIC without an initial
/// distribution is unusable until DISTRIBUTE executes, then fully usable.
#[test]
fn deferred_distribution_lifecycle() {
    let mut scope: VfScope<f64> = VfScope::new(zero_machine(2));
    scope
        .declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(10)))
        .unwrap();
    assert!(matches!(
        scope.array("B1"),
        Err(CoreError::NotYetDistributed { .. })
    ));
    assert!(scope.idt("B1", &DistPattern::Any).is_err());
    scope
        .distribute(DistributeStmt::new("B1", DistType::cyclic1d(2)))
        .unwrap();
    scope
        .array_mut("B1")
        .unwrap()
        .set(&Point::d1(3), 9.0)
        .unwrap();
    assert_eq!(scope.array("B1").unwrap().get(&Point::d1(3)).unwrap(), 9.0);
    assert_eq!(
        scope.descriptor("B1").unwrap().dist_type,
        DistType::cyclic1d(2)
    );
}
