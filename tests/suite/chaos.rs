//! Chaos soak suite for the fault-injection harness: under seeded,
//! deterministic fault schedules (transient sends, delayed deliveries,
//! bit-corrupted wire buffers, worker deaths, cancelled handles) every
//! execution path must produce **bitwise identical** results to a
//! fault-free run, every injected corruption must be detected by the wire
//! frame checksum and repaired by a modelled retransmission, retries must
//! stay bounded by the plan, and the `CommStats` fault counters must match
//! the injector's record of what actually fired.
//!
//! The suite never mutates process environment variables: machines are
//! armed explicitly with [`Machine::with_fault_plan`] and trackers with
//! [`CommTracker::with_fault_injector`], so the tests run correctly both
//! standalone and under a CI `VF_FAULT_SEED` chaos job (an env-armed
//! "reference" run is itself fault-injected — which is fine, because the
//! invariant under test is precisely that injection never changes
//! results).

use std::sync::Arc;
use vf_apps::adi::{self, AdiConfig, AdiStrategy};
use vf_apps::mesh::{run_sweep, unstructured_mesh, MeshPartition, MeshSweepConfig};
use vf_apps::pic::{self, PicConfig, PicStrategy};
use vf_apps::smoothing::{self, SmoothingConfig, SmoothingLayout};
use vf_apps::workloads::{self, ParticleLayout};
use vf_core::prelude::*;
use vf_integration::zero_machine;
use vf_machine::{FaultInjector, FaultKind, FaultPlan};
use vf_runtime::ghost::{
    exchange_ghosts_fused_wire, exchange_ghosts_fused_wire_split, exchange_ghosts_fused_wire_with,
    GhostRegion,
};

const WIDTHS: [(usize, usize); 2] = [(1, 1), (1, 1)];

fn grid_array(name: &str, t: DistType, n: usize, p: usize, scale: f64) -> DistArray<f64> {
    let dist = Distribution::new(t, IndexDomain::d2(n, n), ProcessorView::linear(p)).unwrap();
    DistArray::from_fn(name, dist, |pt| {
        (pt.coord(0) * 1000 + pt.coord(1)) as f64 * scale
    })
}

/// A backend whose unpack genuinely streams on background pool workers.
fn streaming_backend(pool: &Arc<WorkerPool>) -> ExecBackend {
    ExecBackend::Threaded(ThreadedExecutor::with_pool(Arc::clone(pool)).serial_cutoff_bytes(0))
}

/// A tracker that is **never** armed by the environment: chaos references
/// must stay clean even when CI runs this binary under `VF_FAULT_SEED`.
fn clean_tracker(p: usize) -> CommTracker {
    CommTracker::new(p, CostModel::zero())
}

/// A tracker armed with an explicit, test-owned injector (replacing any
/// env-derived one).
fn faulty_tracker(p: usize, inj: &Arc<FaultInjector>) -> CommTracker {
    CommTracker::new(p, CostModel::zero()).with_fault_injector(Arc::clone(inj))
}

fn assert_regions_equal(
    arrays: &[DistArray<f64>],
    a: &[GhostRegion<f64>],
    b: &[GhostRegion<f64>],
    ctx: &str,
) {
    assert_eq!(a.len(), b.len(), "{ctx}: region count");
    for (k, array) in arrays.iter().enumerate() {
        for proc in array.dist().proc_ids() {
            for point in array.domain().iter() {
                assert_eq!(
                    a[k].get(*proc, &point),
                    b[k].get(*proc, &point),
                    "{ctx}: array {k} at {point:?} on {proc:?}"
                );
            }
        }
    }
}

/// Every decision the injector fires must be recorded exactly once in the
/// tracker's `CommStats`: `faults_injected` mirrors the fired count,
/// `retries` mirrors the retransmissions the schedule caused, `fallbacks`
/// mirrors degradations (worker deaths and cancelled handles).
#[test]
fn injector_counters_flow_into_tracker_stats() {
    let n = 16usize;
    let p = 4usize;
    let arrays: Vec<DistArray<f64>> = (0..3)
        .map(|k| grid_array("C", DistType::blocks2d(), n, p, (k + 1) as f64 * 0.5))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

    // Fault-free reference.
    let t_clean = clean_tracker(p);
    let (clean, _) =
        exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_clean, &PlanCache::new()).unwrap();

    let plan = FaultPlan::new(0xC0FFEE).with_rate(1.0).with_max_faults(64);
    let inj = Arc::new(FaultInjector::new(plan));
    let tracker = faulty_tracker(p, &inj);
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    // Blocking wire exchanges followed by split (posted/waited) exchanges,
    // all on the same injected tracker.
    for round in 0..3 {
        let (regions, _) =
            exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
        assert_regions_equal(
            &arrays,
            &regions,
            &clean,
            &format!("blocking round {round}"),
        );

        let split =
            exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
                .unwrap();
        let (regions, _) = split.wait(&tracker).unwrap();
        assert_regions_equal(&arrays, &regions, &clean, &format!("split round {round}"));
    }

    let stats = tracker.snapshot();
    assert!(
        inj.faults_injected() > 0,
        "the schedule fired at least once"
    );
    assert_eq!(stats.faults_injected(), inj.faults_injected(), "faults");
    assert_eq!(stats.retries(), inj.expected_retries(), "retries");
    assert_eq!(stats.fallbacks(), inj.expected_fallbacks(), "fallbacks");
}

/// A corrupt-wire schedule at rate 1.0: every exchange takes a flipped bit
/// on the wire, the frame checksum detects it, and the modelled
/// retransmission repairs it — results stay bitwise identical and each
/// corruption is counted as one fault plus one retry.
#[test]
fn injected_corruption_is_always_detected_and_repaired() {
    let n = 12usize;
    let p = 4usize;
    for t in [DistType::columns(), DistType::blocks2d()] {
        let arrays: Vec<DistArray<f64>> = (0..2)
            .map(|k| grid_array("K", t.clone(), n, p, (k + 1) as f64 * 1.25))
            .collect();
        let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

        let t_clean = clean_tracker(p);
        let (clean, _) =
            exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_clean, &PlanCache::new()).unwrap();

        let plan = FaultPlan::new(7)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::CorruptWire])
            .with_max_faults(32);
        let inj = Arc::new(FaultInjector::new(plan));
        let tracker = faulty_tracker(p, &inj);
        let pool = Arc::new(WorkerPool::new(3));
        let backend = streaming_backend(&pool);

        let (regions, _) =
            exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
        assert_regions_equal(&arrays, &regions, &clean, &format!("{t} blocking"));

        let split =
            exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
                .unwrap();
        let (regions, _) = split.wait(&tracker).unwrap();
        assert_regions_equal(&arrays, &regions, &clean, &format!("{t} split"));

        let stats = tracker.snapshot();
        assert_eq!(
            inj.fired_of(FaultKind::CorruptWire),
            2,
            "{t}: one corruption per exchange"
        );
        assert_eq!(stats.faults_injected(), 2, "{t}: faults counted");
        assert_eq!(stats.retries(), 2, "{t}: one retransmission each");
    }
}

/// A worker death during a pooled (blocking) dispatch degrades to the
/// partitioned fallback — and, when too few workers survive, all the way
/// to serial — without changing a single bit of the result.
#[test]
fn worker_death_degrades_pooled_dispatch_bitwise() {
    let n = 16usize;
    let p = 4usize;
    let arrays: Vec<DistArray<f64>> = (0..3)
        .map(|k| grid_array("D", DistType::blocks2d(), n, p, (k + 1) as f64))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

    let t_clean = clean_tracker(p);
    let (clean, _) =
        exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_clean, &PlanCache::new()).unwrap();

    // 4 workers, 1 death → partitioned degraded path; 2 workers, 1 death →
    // serial degraded path.
    for workers in [4usize, 2] {
        let plan = FaultPlan::new(99)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::WorkerDeath])
            .with_max_faults(1);
        let inj = Arc::new(FaultInjector::new(plan));
        let tracker = faulty_tracker(p, &inj);
        let executor =
            ThreadedExecutor::with_pool(Arc::new(WorkerPool::new(workers))).serial_cutoff_bytes(0);

        for round in 0..2 {
            let (regions, _) = exchange_ghosts_fused_wire_with(
                &refs,
                &WIDTHS,
                &tracker,
                &PlanCache::new(),
                &executor,
            )
            .unwrap();
            assert_regions_equal(
                &arrays,
                &regions,
                &clean,
                &format!("workers={workers} round={round}"),
            );
        }

        let stats = tracker.snapshot();
        assert_eq!(inj.fired_of(FaultKind::WorkerDeath), 1, "budget of one");
        assert_eq!(inj.dead_workers(), 1, "the dead worker stays dead");
        assert_eq!(stats.fallbacks(), 1, "one degradation recorded");
        assert_eq!(stats.faults_injected(), 1);
    }
}

/// Satellite: a worker dying **mid-stream** during split-phase unpack.
/// The panic is contained inside the streaming job, the caller adopts the
/// dead rank's abandoned items, the result is bitwise identical, the
/// arrays are never left partially unpacked, and the pool remains fully
/// usable for later streaming exchanges.
#[test]
fn worker_death_mid_stream_recovers_and_pool_stays_usable() {
    let n = 24usize;
    let p = 4usize;
    let arrays: Vec<DistArray<f64>> = (0..3)
        .map(|k| grid_array("S", DistType::blocks2d(), n, p, (k + 1) as f64 * 2.0))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

    let t_clean = clean_tracker(p);
    let (clean, _) =
        exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_clean, &PlanCache::new()).unwrap();

    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    let plan = FaultPlan::new(5)
        .with_rate(1.0)
        .with_kinds(&[FaultKind::WorkerDeath])
        .with_max_faults(1);
    let inj = Arc::new(FaultInjector::new(plan));
    let tracker = faulty_tracker(p, &inj);

    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
            .unwrap();
    assert!(split.is_streaming(), "death still streams, minus one rank");
    let (regions, _) = split.wait(&tracker).unwrap();
    assert_regions_equal(&arrays, &regions, &clean, "mid-stream death");

    assert_eq!(inj.fired_of(FaultKind::WorkerDeath), 1);
    let stats = tracker.snapshot();
    assert_eq!(stats.fallbacks(), 1, "the death is recorded as a fallback");
    assert_eq!(stats.faults_injected(), 1);

    // The pool survived the simulated death: a later exchange on the same
    // pool (fresh, uninjected tracker) streams and agrees bitwise.
    let t_after = clean_tracker(p);
    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &t_after, &PlanCache::new(), &backend)
            .unwrap();
    assert!(split.is_streaming(), "pool is still usable after the death");
    let (regions, _) = split.wait(&t_after).unwrap();
    assert_regions_equal(&arrays, &regions, &clean, "pool reuse after death");
}

/// A cancelled-handle fault at post time falls back to the inline
/// (blocking) drain: no streaming, identical results, one fallback
/// counted.
#[test]
fn cancelled_streaming_falls_back_inline_bitwise() {
    let n = 16usize;
    let p = 4usize;
    let arrays: Vec<DistArray<f64>> = (0..2)
        .map(|k| grid_array("X", DistType::columns(), n, p, (k + 1) as f64))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

    let t_clean = clean_tracker(p);
    let (clean, _) =
        exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_clean, &PlanCache::new()).unwrap();

    let plan = FaultPlan::new(3)
        .with_rate(1.0)
        .with_kinds(&[FaultKind::CancelHandle])
        .with_max_faults(1);
    let inj = Arc::new(FaultInjector::new(plan));
    let tracker = faulty_tracker(p, &inj);
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
            .unwrap();
    assert!(
        !split.is_streaming(),
        "a fired cancel degrades to the inline drain"
    );
    let (regions, _) = split.wait(&tracker).unwrap();
    assert_regions_equal(&arrays, &regions, &clean, "cancelled streaming");

    assert_eq!(inj.fired_of(FaultKind::CancelHandle), 1);
    let stats = tracker.snapshot();
    assert_eq!(stats.fallbacks(), 1);
    assert_eq!(stats.faults_injected(), 1);
}

/// Satellite (pinning test): dropping or cancelling a split-phase handle
/// without waiting settles its pending communication charges — the
/// tracker ends up with exactly the blocking path's per-processor totals,
/// never a leak. Covers the raw ghost handle, the redistribute wrapper,
/// and the scope-level class-halo wrapper.
#[test]
fn dropped_and_cancelled_handles_settle_their_charges() {
    let n = 12usize;
    let p = 4usize;
    let cost = || CostModel::ipsc860(p);
    let arrays: Vec<DistArray<f64>> = (0..2)
        .map(|k| grid_array("L", DistType::blocks2d(), n, p, (k + 1) as f64))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    // Ghost exchange: blocking reference charges.
    let t_block = CommTracker::new(p, cost());
    exchange_ghosts_fused_wire(&refs, &WIDTHS, &t_block, &PlanCache::new()).unwrap();

    // Drop without wait, and explicit cancel(): both settle.
    for (consume, label) in [(false, "drop-without-wait"), (true, "explicit cancel")] {
        let tracker = CommTracker::new(p, cost());
        let split =
            exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
                .unwrap();
        if consume {
            split.cancel();
        } else {
            drop(split);
        }
        assert_eq!(
            tracker.snapshot().per_proc(),
            t_block.snapshot().per_proc(),
            "{label}: per-proc charges settled, not leaked"
        );
    }

    // Redistribute wrapper: the abandoned handle's charges equal the
    // blocking redistribution's.
    let original = grid_array("R", DistType::blocks2d(), n, p, 1.5);
    let columns = || {
        Distribution::new(
            DistType::columns(),
            IndexDomain::d2(n, n),
            ProcessorView::linear(p),
        )
        .unwrap()
    };
    let mut blocking = original.clone();
    let t_rblock = CommTracker::new(p, cost());
    redistribute_cached_with(
        &mut blocking,
        columns(),
        &t_rblock,
        &RedistOptions::default(),
        &PlanCache::new(),
        &SerialExecutor,
    )
    .unwrap();
    let t_rdrop = CommTracker::new(p, cost());
    let split =
        redistribute_split(&original, columns(), &t_rdrop, &PlanCache::new(), &backend).unwrap();
    split.cancel();
    assert_eq!(
        t_rdrop.snapshot().per_proc(),
        t_rblock.snapshot().per_proc(),
        "cancelled redistribute settled its charges"
    );

    // Scope-level class halo: dropping the exchange handle mid-flight
    // leaves the scope's accumulated stats equal to the blocking path's.
    let widths = [(1, 1), (1, 1)];
    let build = || {
        let mut s: VfScope<f64> = VfScope::new(zero_machine(p));
        s.declare_dynamic(
            DynamicDecl::new("U", IndexDomain::d2(n, n)).initial(DistType::blocks2d()),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("V", IndexDomain::d2(n, n), "U"))
            .unwrap();
        for name in ["U", "V"] {
            for point in IndexDomain::d2(n, n).iter() {
                let v = (point.coord(0) * 10 + point.coord(1)) as f64;
                s.array_mut(name).unwrap().set(&point, v).unwrap();
            }
        }
        s.take_stats();
        s
    };
    let s_block = build();
    s_block.exchange_class_ghosts("U", &widths).unwrap();
    let mut s = build();
    s.set_executor(streaming_backend(&pool));
    let halo = s.exchange_class_ghosts_split("U", &widths).unwrap();
    halo.cancel();
    assert_eq!(
        s.stats().per_proc(),
        s_block.stats().per_proc(),
        "cancelled class-halo exchange settled its charges"
    );
}

/// A split redistribution under a full fault schedule (all kinds, rate
/// 1.0) still installs exactly the blocking result.
#[test]
fn faulty_split_redistribute_matches_blocking() {
    let n = 16usize;
    let p = 4usize;
    let original = grid_array("F", DistType::blocks2d(), n, p, 0.75);
    let rows = || {
        Distribution::new(
            DistType::rows(),
            IndexDomain::d2(n, n),
            ProcessorView::linear(p),
        )
        .unwrap()
    };

    let mut blocking = original.clone();
    let t_clean = clean_tracker(p);
    redistribute_cached_with(
        &mut blocking,
        rows(),
        &t_clean,
        &RedistOptions::default(),
        &PlanCache::new(),
        &SerialExecutor,
    )
    .unwrap();

    let plan = FaultPlan::new(0xBAD).with_rate(1.0).with_max_faults(16);
    let inj = Arc::new(FaultInjector::new(plan));
    let tracker = faulty_tracker(p, &inj);
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    let mut array = original.clone();
    let split = redistribute_split(&array, rows(), &tracker, &PlanCache::new(), &backend).unwrap();
    split.finish_into(&mut array, &tracker).unwrap();
    assert_eq!(array.dist(), blocking.dist());
    assert_eq!(array.to_dense(), blocking.to_dense(), "bitwise install");

    let stats = tracker.snapshot();
    assert!(inj.faults_injected() > 0);
    assert_eq!(stats.faults_injected(), inj.faults_injected());
    assert_eq!(stats.retries(), inj.expected_retries());
    assert_eq!(stats.fallbacks(), inj.expected_fallbacks());
}

/// The headline soak: all four applications (ADI, Jacobi smoothing, PIC,
/// unstructured mesh sweep) run under seeded fault schedules and must be
/// bitwise identical to fault-free runs, with retries bounded by the
/// plan's budget.
#[test]
fn chaos_soak_apps_bitwise_equal_under_seeded_faults() {
    const MAX_FAULTS: usize = 48;
    const MAX_ATTEMPTS: usize = 4;
    let bounded = |stats: &CommStats, app: &str, seed: u64| {
        assert!(
            stats.faults_injected() > 0,
            "{app} seed={seed}: the schedule fired"
        );
        assert!(
            stats.retries() <= stats.faults_injected() * MAX_ATTEMPTS,
            "{app} seed={seed}: retries bounded by the fault budget"
        );
    };

    for seed in [11u64, 23] {
        let plan = || {
            FaultPlan::new(seed)
                .with_rate(0.8)
                .with_max_faults(MAX_FAULTS)
                .with_backoff(5.0e-4, MAX_ATTEMPTS)
        };

        // ADI with dynamic redistribution between the sweeps.
        let n = 16;
        let initial = workloads::initial_grid(n, 31);
        let config = AdiConfig {
            n,
            iterations: 2,
            strategy: AdiStrategy::DynamicRedistribute,
        };
        let clean = adi::run(&config, &zero_machine(4), &initial);
        let faulty = adi::run(&config, &zero_machine(4).with_fault_plan(plan()), &initial);
        assert_eq!(faulty.field, clean.field, "adi field bitwise, seed={seed}");
        assert_eq!(faulty.checksum, clean.checksum, "adi checksum, seed={seed}");
        bounded(&faulty.stats, "adi", seed);

        // Jacobi smoothing over both layouts.
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let config = SmoothingConfig {
                n,
                steps: 3,
                layout,
            };
            let clean = smoothing::run(&config, &zero_machine(4), &initial);
            let faulty =
                smoothing::run(&config, &zero_machine(4).with_fault_plan(plan()), &initial);
            assert_eq!(
                faulty.field, clean.field,
                "smoothing {layout:?} field bitwise, seed={seed}"
            );
            bounded(&faulty.stats, "smoothing", seed);
        }

        // PIC with generalised-block rebalancing.
        let ncell = 64;
        let init = workloads::particles(
            ncell,
            800,
            ParticleLayout::Cluster {
                center: 0.2,
                width: 0.06,
            },
            0.4,
            41,
        );
        let config = PicConfig {
            ncell,
            steps: 10,
            strategy: PicStrategy::DynamicGenBlock {
                period: 5,
                threshold: 1.1,
            },
        };
        let clean = pic::run(&config, &zero_machine(4), &init);
        let faulty = pic::run(&config, &zero_machine(4).with_fault_plan(plan()), &init);
        assert_eq!(faulty.total_particles, clean.total_particles, "seed={seed}");
        assert_eq!(faulty.rebalance_count, clean.rebalance_count, "seed={seed}");
        assert_eq!(faulty.rebalance_bytes, clean.rebalance_bytes, "seed={seed}");
        assert_eq!(faulty.mean_imbalance, clean.mean_imbalance, "seed={seed}");
        assert_eq!(faulty.max_imbalance, clean.max_imbalance, "seed={seed}");
        bounded(&faulty.stats, "pic", seed);

        // Unstructured mesh sweep with a mid-run repartition.
        let mesh = unstructured_mesh(8, 7, 31);
        let config = MeshSweepConfig {
            steps: 3,
            partition: MeshPartition::Greedy,
            repartition_at: Some(2),
        };
        let clean = run_sweep(&mesh, &config, &zero_machine(4));
        let faulty = run_sweep(&mesh, &config, &zero_machine(4).with_fault_plan(plan()));
        assert_eq!(
            faulty.values, clean.values,
            "mesh values bitwise, seed={seed}"
        );
        assert_eq!(faulty.edge_cut_final, clean.edge_cut_final, "seed={seed}");
        bounded(&faulty.stats, "mesh", seed);
    }
}
