//! Property-based cross-crate tests: randomised distributions, domains and
//! redistribution chains must preserve the core invariants.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use vf_core::prelude::*;
use vf_integration::dist_1d;

/// Strategy for an arbitrary 1-D distribution type valid for `n` elements on
/// `p` processors.
fn arb_dist_type(n: usize, p: usize) -> impl Strategy<Value = DistType> {
    prop_oneof![
        Just(DistType::block1d()),
        (1usize..6).prop_map(DistType::cyclic1d),
        proptest::collection::vec(0usize..(2 * n / p + 1), p).prop_map(move |mut sizes| {
            // Normalise so the sizes sum to n.
            let mut total: usize = sizes.iter().sum();
            let mut i = 0;
            while total > n {
                let take = (total - n).min(sizes[i % p]);
                sizes[i % p] -= take;
                total -= take;
                i += 1;
            }
            if total < n {
                sizes[p - 1] += n - total;
            }
            DistType::gen_block1d(sizes)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A chain of three random redistributions preserves the data, keeps
    /// the invariants, and the tracker's byte accounting matches the sum of
    /// the reports.
    #[test]
    fn prop_redistribution_chains_preserve_data(
        n in 8usize..80,
        p in 2usize..6,
        seed in 0u64..1000,
        chain_idx in 0usize..3,
    ) {
        let chain_len = chain_idx + 1;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let mut types = Vec::new();
        for _ in 0..=chain_len {
            types.push(arb_dist_type(n, p).new_tree(&mut runner).unwrap().current());
        }
        let tracker = CommTracker::new(p, CostModel::zero());
        let mut a = DistArray::from_fn("A", dist_1d(types[0].clone(), n, p), |pt| {
            (pt.coord(0) as f64) * 1.5 + seed as f64
        });
        let before = a.to_dense();
        let mut total_bytes = 0usize;
        for t in &types[1..] {
            let report = redistribute(
                &mut a,
                dist_1d(t.clone(), n, p),
                &tracker,
                &RedistOptions::default(),
            ).unwrap();
            total_bytes += report.bytes;
            prop_assert_eq!(report.moved_elements + report.stayed_elements, n);
            a.check_invariants().unwrap();
        }
        prop_assert_eq!(a.to_dense(), before);
        prop_assert_eq!(tracker.snapshot().total_bytes(), total_bytes);
    }

    /// The distributed reduction equals the dense sum for arbitrary
    /// distributions.
    #[test]
    fn prop_reduction_matches_dense_sum(
        n in 4usize..60,
        p in 1usize..5,
        values in proptest::collection::vec(-100i32..100, 4..60),
    ) {
        let tracker = CommTracker::new(p, CostModel::zero());
        let a = DistArray::from_fn("A", dist_1d(DistType::cyclic1d(2), n, p), |pt| {
            let i = (pt.coord(0) - 1) as usize;
            values.get(i % values.len()).copied().unwrap_or(0) as f64
        });
        let dense_sum: f64 = a.to_dense().iter().sum();
        let reduced = vf_runtime::reduce::sum(&a, &tracker);
        prop_assert!((dense_sum - reduced).abs() < 1e-9);
    }

    /// Ghost exchange returns exactly the true neighbour values for block
    /// layouts of arbitrary sizes.
    #[test]
    fn prop_ghost_values_match_direct_reads(n in 4usize..24, p in 1usize..5) {
        let dist = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(n, n),
            ProcessorView::linear(p),
        ).unwrap();
        let a = DistArray::from_fn("U", dist.clone(), |pt| (pt.coord(0) * 37 + pt.coord(1)) as f64);
        let tracker = CommTracker::new(p, CostModel::zero());
        let (ghosts, _) = vf_runtime::ghost::exchange_ghosts(&a, &[(1, 1), (1, 1)], &tracker).unwrap();
        for &proc in dist.proc_ids() {
            for point in dist.local_points(proc) {
                for (dim, delta) in [(0, -1i64), (0, 1), (1, -1), (1, 1)] {
                    let nb = point.offset(dim, delta);
                    if !dist.domain().contains(&nb) {
                        continue;
                    }
                    let v = vf_runtime::ghost::get_with_ghosts(&a, &ghosts, proc, &nb).unwrap();
                    prop_assert_eq!(v, a.get(&nb).unwrap());
                }
            }
        }
    }

    /// The DISTRIBUTE statement through the language layer is equivalent to
    /// calling the runtime redistribution directly.
    #[test]
    fn prop_scope_distribute_equals_runtime_redistribute(
        n in 8usize..60,
        p in 2usize..5,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let from = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();

        // Language layer.
        let mut scope: VfScope<f64> = VfScope::new(Machine::new(p, CostModel::zero()));
        scope.declare_dynamic(
            DynamicDecl::new("B", IndexDomain::d1(n)).initial(from.clone()),
        ).unwrap();
        for i in 1..=n as i64 {
            scope.array_mut("B").unwrap().set(&Point::d1(i), i as f64).unwrap();
        }
        let report = scope.distribute(DistributeStmt::new("B", to.clone())).unwrap();

        // Runtime layer.
        let tracker = CommTracker::new(p, CostModel::zero());
        let mut direct = DistArray::from_fn("B", dist_1d(from, n, p), |pt| pt.coord(0) as f64);
        let direct_report = redistribute(
            &mut direct,
            dist_1d(to, n, p),
            &tracker,
            &RedistOptions::default(),
        ).unwrap();

        prop_assert_eq!(report.moved_elements(), direct_report.moved_elements);
        prop_assert_eq!(report.bytes(), direct_report.bytes);
        prop_assert_eq!(scope.array("B").unwrap().to_dense(), direct.to_dense());
    }
}
