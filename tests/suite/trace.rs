//! Tracing subsystem suite: span accounting over *live* runtime workloads.
//!
//! The unit tests inside `vf-machine` exercise the recorder in isolation;
//! this suite drives the real execution stack — blocking wire exchanges,
//! split-phase posts (waited, dropped and cancelled), and fault-degraded
//! chaos runs — and checks the global invariants:
//!
//! * every span that opens also closes (`open_spans() == 0`), on every
//!   path including cancellation and fault degradation,
//! * with tracing disabled nothing is recorded at all,
//! * the same seeded fault schedule produces the same trace shape,
//! * the Chrome export round-trips through [`trace::parse_chrome_trace`],
//! * histogram percentiles stay within the documented factor-two bound of
//!   the exact order statistics,
//! * the `retry` / `fault` / `fallback` instants agree with the
//!   [`CommStats`] counters *exactly* (they are emitted at the same choke
//!   points).
//!
//! The trace collector is process-global, so every test here serialises on
//! a file-local mutex and leaves tracing disabled on exit.

use std::sync::{Arc, Mutex, MutexGuard};
use vf_core::prelude::*;
use vf_machine::trace;
use vf_machine::{FaultInjector, FaultKind, FaultPlan};
use vf_runtime::ghost::{exchange_ghosts_fused_wire, exchange_ghosts_fused_wire_split};

const WIDTHS: [(usize, usize); 2] = [(1, 1), (1, 1)];

// The trace collector is process-global: tests that enable tracing must
// not interleave with each other.
static GUARD: Mutex<()> = Mutex::new(());

/// Takes the serialisation lock and puts the recorder in a known state.
fn locked_tracing(enabled: bool) -> MutexGuard<'static, ()> {
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(enabled);
    trace::reset();
    guard
}

fn grid_arrays(n: usize, p: usize, fields: usize) -> Vec<DistArray<f64>> {
    let dist = Distribution::new(
        DistType::blocks2d(),
        IndexDomain::d2(n, n),
        ProcessorView::linear(p),
    )
    .unwrap();
    (0..fields)
        .map(|k| {
            DistArray::from_fn("T", dist.clone(), |pt| {
                (pt.coord(0) * 1000 + pt.coord(1)) as f64 * (k + 1) as f64
            })
        })
        .collect()
}

fn streaming_backend(pool: &Arc<WorkerPool>) -> ExecBackend {
    ExecBackend::Threaded(ThreadedExecutor::with_pool(Arc::clone(pool)).serial_cutoff_bytes(0))
}

/// Blocking, waited-split, dropped-split and fault-degraded executions all
/// leave zero spans open.
#[test]
fn spans_balance_on_every_execution_path() {
    let _guard = locked_tracing(true);
    let p = 4usize;
    let arrays = grid_arrays(12, p, 2);
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    // Blocking wire path.
    let tracker = CommTracker::new(p, CostModel::zero());
    exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
    assert_eq!(trace::open_spans(), 0, "blocking");

    // Split-phase, waited.
    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
            .unwrap();
    split.wait(&tracker).unwrap();
    assert_eq!(trace::open_spans(), 0, "split waited");

    // Split-phase, dropped without wait: the cancellation path must close
    // the pending-handle span and every worker span.
    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
            .unwrap();
    drop(split);
    assert_eq!(trace::open_spans(), 0, "split dropped");

    // Fault-degraded paths: every kind armed at rate 1.0, blocking and
    // split rounds — retries, corruption repairs, worker deaths and
    // cancelled handles all fire.
    let plan = FaultPlan::new(0xBA1A9CE).with_rate(1.0).with_max_faults(48);
    let inj = Arc::new(FaultInjector::new(plan));
    let tracker = CommTracker::new(p, CostModel::zero()).with_fault_injector(Arc::clone(&inj));
    let chaos_pool = Arc::new(WorkerPool::new(3));
    let chaos_backend = streaming_backend(&chaos_pool);
    for _ in 0..3 {
        exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
        let split = exchange_ghosts_fused_wire_split(
            &refs,
            &WIDTHS,
            &tracker,
            &PlanCache::new(),
            &chaos_backend,
        )
        .unwrap();
        split.wait(&tracker).unwrap();
    }
    assert!(inj.faults_injected() > 0, "the chaos schedule fired");
    assert_eq!(trace::open_spans(), 0, "fault-degraded");
    assert!(!trace::snapshot().events.is_empty());

    trace::set_enabled(false);
}

/// With tracing disabled the same workloads record nothing: no events, no
/// metrics, no open spans.
#[test]
fn disabled_mode_records_no_events() {
    let _guard = locked_tracing(false);
    let p = 4usize;
    let arrays = grid_arrays(12, p, 2);
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let tracker = CommTracker::new(p, CostModel::zero());
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);

    exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
            .unwrap();
    split.wait(&tracker).unwrap();

    assert_eq!(trace::snapshot().events.len(), 0, "no events");
    assert!(trace::metrics().phases.is_empty(), "no metrics");
    assert_eq!(trace::open_spans(), 0);
}

/// The multiset of `(phase, label)` pairs a seeded chaos run records —
/// its *shape*, timing aside — is identical across runs of the same
/// schedule.
#[test]
fn trace_shape_is_deterministic_under_a_fault_seed() {
    let _guard = locked_tracing(true);
    let p = 4usize;
    let arrays = grid_arrays(12, p, 2);
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

    let run = || -> Vec<(String, String)> {
        trace::reset();
        let plan = FaultPlan::new(0x5EED).with_rate(1.0).with_max_faults(32);
        let inj = Arc::new(FaultInjector::new(plan));
        let tracker = CommTracker::new(p, CostModel::zero()).with_fault_injector(inj);
        let pool = Arc::new(WorkerPool::new(3));
        let backend = streaming_backend(&pool);
        for _ in 0..2 {
            exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
            let split = exchange_ghosts_fused_wire_split(
                &refs,
                &WIDTHS,
                &tracker,
                &PlanCache::new(),
                &backend,
            )
            .unwrap();
            split.wait(&tracker).unwrap();
        }
        let mut shape: Vec<(String, String)> = trace::snapshot()
            .events
            .iter()
            .map(|ev| (ev.phase.name().to_string(), ev.label.clone()))
            .collect();
        shape.sort();
        shape
    };

    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed, same trace shape");

    trace::set_enabled(false);
}

/// `write_chrome_trace` produces a file `parse_chrome_trace` accepts, with
/// every recorded event surviving the round trip (phases, labels, lanes;
/// timestamps to the exporter's precision).
#[test]
fn chrome_export_round_trips_through_the_parser() {
    let _guard = locked_tracing(true);
    let p = 4usize;
    let arrays = grid_arrays(12, p, 2);
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let tracker = CommTracker::new(p, CostModel::zero());
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);
    exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
    let split =
        exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
            .unwrap();
    split.wait(&tracker).unwrap();

    let snap = trace::snapshot();
    assert!(!snap.events.is_empty());
    let path = std::env::temp_dir().join(format!("vf_trace_roundtrip_{}.json", std::process::id()));
    trace::write_chrome_trace(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = trace::parse_chrome_trace(&text).unwrap();

    assert_eq!(parsed.len(), snap.events.len(), "event count");
    let key = |ev: &trace::TraceEvent| (ev.phase, ev.label.clone(), ev.lane);
    let mut want: Vec<_> = snap.events.iter().map(key).collect();
    let mut got: Vec<_> = parsed.iter().map(key).collect();
    want.sort();
    got.sort();
    assert_eq!(got, want, "phases, labels and lanes survive the round trip");

    trace::set_enabled(false);
}

/// Histogram percentile estimates stay within the documented factor-two
/// bound of the exact order statistic, across several distributions.
#[test]
fn histogram_percentiles_track_a_naive_oracle() {
    // Deterministic xorshift so the test never flakes.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let uniform: Vec<u64> = (0..4096).map(|_| next() % 1_000_000).collect();
    let skewed: Vec<u64> = (0..4096)
        .map(|i| {
            if i % 100 == 0 {
                next() % 50_000_000
            } else {
                next() % 2_000
            }
        })
        .collect();
    let tiny: Vec<u64> = vec![0, 1, 1, 2, 3, 900];

    for samples in [&uniform, &skewed, &tiny] {
        let mut hist = trace::Histogram::new();
        for &ns in samples.iter() {
            hist.record(ns);
        }
        assert_eq!(hist.count(), samples.len() as u64);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = hist.percentile(q);
            if exact == 0 {
                assert_eq!(est, 0, "q={q}: zero bucket is exact");
            } else {
                assert!(
                    est as f64 >= exact as f64 / 2.0 && est as f64 <= exact as f64 * 2.0,
                    "q={q}: estimate {est} outside factor two of exact {exact}"
                );
            }
        }
    }
}

/// The `retry`, `fault` and `fallback` instants are emitted at the same
/// choke points that bump the [`CommStats`] counters, so after a chaos run
/// the trace counts match the stats counters *exactly*.
#[test]
fn fault_instants_match_comm_stats_counters_exactly() {
    let _guard = locked_tracing(true);
    let p = 4usize;
    let arrays = grid_arrays(16, p, 3);
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();

    let plan = FaultPlan::new(0xC0FFEE)
        .with_rate(1.0)
        .with_kinds(FaultKind::ALL.as_slice())
        .with_max_faults(64);
    let inj = Arc::new(FaultInjector::new(plan));
    let tracker = CommTracker::new(p, CostModel::zero()).with_fault_injector(Arc::clone(&inj));
    let pool = Arc::new(WorkerPool::new(3));
    let backend = streaming_backend(&pool);
    for _ in 0..3 {
        exchange_ghosts_fused_wire(&refs, &WIDTHS, &tracker, &PlanCache::new()).unwrap();
        let split =
            exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &PlanCache::new(), &backend)
                .unwrap();
        split.wait(&tracker).unwrap();
    }

    let stats = tracker.snapshot();
    let snap = trace::snapshot();
    assert!(stats.faults_injected() > 0, "the schedule fired");
    assert_eq!(
        snap.count(trace::Phase::Fault),
        stats.faults_injected(),
        "fault instants"
    );
    assert_eq!(
        snap.count(trace::Phase::Retry),
        stats.retries(),
        "retry instants"
    );
    assert_eq!(
        snap.count(trace::Phase::Fallback),
        stats.fallbacks(),
        "fallback instants"
    );

    trace::set_enabled(false);
}
