//! Property tests for the unified communication-plan layer: a cached,
//! reused `CommPlan` must move exactly the same elements and charge
//! exactly the same bytes as a freshly planned execution and as a naive
//! per-element reference, and changing the target distribution must never
//! reuse a stale plan.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use vf_core::prelude::*;
use vf_integration::dist_1d;
use vf_runtime::ghost::{exchange_ghosts, exchange_ghosts_cached};

/// Strategy for an arbitrary 1-D distribution type valid for `n` elements on
/// `p` processors (same shape as `property_cross_crate`).
fn arb_dist_type(n: usize, p: usize) -> impl Strategy<Value = DistType> {
    prop_oneof![
        Just(DistType::block1d()),
        (1usize..6).prop_map(DistType::cyclic1d),
        proptest::collection::vec(0usize..(2 * n / p + 1), p).prop_map(move |mut sizes| {
            let mut total: usize = sizes.iter().sum();
            let mut i = 0;
            while total > n {
                let take = (total - n).min(sizes[i % p]);
                sizes[i % p] -= take;
                total -= take;
                i += 1;
            }
            if total < n {
                sizes[p - 1] += n - total;
            }
            DistType::gen_block1d(sizes)
        }),
    ]
}

/// The naive per-element reference: element-wise ownership comparison,
/// without plans, runs, or caches.
fn naive_counts(from: &Distribution, to: &Distribution) -> (usize, usize, usize) {
    let mut moved = 0usize;
    let mut stayed = 0usize;
    let mut pairs = std::collections::BTreeSet::new();
    for point in from.domain().iter() {
        let src = from.owner(&point).unwrap();
        let dst = to.owner(&point).unwrap();
        if src == dst {
            stayed += 1;
        } else {
            moved += 1;
            pairs.insert((src.0, dst.0));
        }
    }
    (moved, stayed, pairs.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Executing a cached plan twice, a fresh plan, and the naive
    /// per-element reference all agree on moved elements, messages and
    /// bytes — and the cached executions preserve the data.
    #[test]
    fn prop_cached_plan_equals_fresh_and_naive(
        n in 8usize..80,
        p in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let from_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let from = dist_1d(from_t.clone(), n, p);
        let to = dist_1d(to_t.clone(), n, p);

        let init = |pt: &Point| (pt.coord(0) as f64) * 1.5 + seed as f64;

        // Fresh planning.
        let t_fresh = CommTracker::new(p, CostModel::zero());
        let mut a_fresh = DistArray::from_fn("A", from.clone(), init);
        let fresh = redistribute(&mut a_fresh, to.clone(), &t_fresh, &RedistOptions::default())
            .unwrap();

        // Cached planning, executed twice on identical inputs.
        let cache = PlanCache::new();
        let t_cached = CommTracker::new(p, CostModel::zero());
        let mut a1 = DistArray::from_fn("A", from.clone(), init);
        let r1 = redistribute_cached(&mut a1, to.clone(), &t_cached, &RedistOptions::default(), &cache).unwrap();
        let mut a2 = DistArray::from_fn("A", from.clone(), init);
        let r2 = redistribute_cached(&mut a2, to.clone(), &t_cached, &RedistOptions::default(), &cache).unwrap();
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(cache.stats().hits, 1);

        // Cached == fresh, execution for execution.
        prop_assert_eq!(&r1, &fresh);
        prop_assert_eq!(&r2, &fresh);
        prop_assert_eq!(a1.to_dense(), a_fresh.to_dense());
        prop_assert_eq!(a2.to_dense(), a_fresh.to_dense());
        // Data preserved.
        let expected: Vec<f64> = from.domain().iter().map(|pt| init(&pt)).collect();
        prop_assert_eq!(a1.to_dense(), expected);

        // Both equal the naive per-element reference.
        let (moved, stayed, pairs) = naive_counts(&from, &to);
        prop_assert_eq!(r1.moved_elements, moved);
        prop_assert_eq!(r1.stayed_elements, stayed);
        prop_assert_eq!(r1.messages, pairs);
        prop_assert_eq!(r1.bytes, moved * 8);

        // The tracker charged exactly twice the per-execution traffic.
        prop_assert_eq!(t_cached.snapshot().total_bytes(), 2 * fresh.bytes);
        prop_assert_eq!(t_cached.snapshot().total_messages(), 2 * fresh.messages);
    }

    /// Changing the target distribution never reuses a stale plan: the
    /// cache plans a fresh schedule (new key) and the data survives;
    /// executing the stale plan object directly is rejected.
    #[test]
    fn prop_changed_target_never_reuses_stale_plan(
        n in 8usize..60,
        p in 2usize..5,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let from_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to1_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to2_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        prop_assume!(to1_t != to2_t);
        let from = dist_1d(from_t, n, p);
        let to1 = dist_1d(to1_t, n, p);
        let to2 = dist_1d(to2_t, n, p);

        let cache = PlanCache::new();
        let tracker = CommTracker::new(p, CostModel::zero());
        let mut a = DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64);
        let before = a.to_dense();

        redistribute_cached(&mut a, to1.clone(), &tracker, &RedistOptions::default(), &cache).unwrap();
        let stale = cache.redistribute_plan(&from, &to1).unwrap();
        // Second hop with a *different* target: must be a cache miss with
        // its own key, and the data must survive.
        let misses_before = cache.stats().misses;
        redistribute_cached(&mut a, to2.clone(), &tracker, &RedistOptions::default(), &cache).unwrap();
        prop_assert_eq!(cache.stats().misses, misses_before + 1);
        prop_assert_eq!(a.to_dense(), before);
        a.check_invariants().unwrap();

        // The stale (from -> to1) plan no longer matches the array (now
        // distributed as to2) — unless to2 is structurally the same
        // distribution as from, in which case the plan genuinely applies.
        if to2.fingerprint() != from.fingerprint() {
            let err = vf_runtime::execute_redistribute(
                &mut a,
                &stale,
                &tracker,
                &RedistOptions::default(),
            );
            prop_assert!(matches!(err, Err(vf_runtime::RuntimeError::PlanMismatch { .. })));
        }
    }

    /// Cached ghost-exchange plans return exactly the values and charge
    /// exactly the bytes of a fresh exchange, step after step.
    #[test]
    fn prop_cached_ghost_exchange_matches_fresh(
        n in 4usize..24,
        p in 1usize..5,
        steps in 1usize..4,
    ) {
        let dist = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(n, n),
            ProcessorView::linear(p),
        ).unwrap();
        let a = DistArray::from_fn("U", dist.clone(), |pt| (pt.coord(0) * 37 + pt.coord(1)) as f64);
        let cache = PlanCache::new();
        let t_cached = CommTracker::new(p, CostModel::zero());
        let t_fresh = CommTracker::new(p, CostModel::zero());
        for _ in 0..steps {
            let (g_cached, r_cached) =
                exchange_ghosts_cached(&a, &[(1, 1), (1, 1)], &t_cached, &cache).unwrap();
            let (g_fresh, r_fresh) =
                exchange_ghosts(&a, &[(1, 1), (1, 1)], &t_fresh).unwrap();
            prop_assert_eq!(r_cached, r_fresh);
            for &proc in dist.proc_ids() {
                prop_assert_eq!(g_cached.len(proc), g_fresh.len(proc));
                for point in dist.domain().iter() {
                    prop_assert_eq!(g_cached.get(proc, &point), g_fresh.get(proc, &point));
                }
            }
        }
        prop_assert_eq!(
            t_cached.snapshot().total_bytes(),
            t_fresh.snapshot().total_bytes()
        );
        // One plan served every step.
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(cache.stats().hits, steps as u64 - 1);
    }
}
