//! Property suite for the distributed-memory backend: a sharded run —
//! rank-local shards exchanged over real SPMD channels — must be
//! **bitwise identical** to the shared-memory wire path (same locals,
//! same reports, same modelled tracker charges) across redistribution,
//! ghost exchange and PARTI gather on random block and INDIRECT
//! layouts, and the real channel traffic it counts must equal the
//! modelled wire traffic exactly.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use std::sync::Arc;
use vf_core::prelude::*;
use vf_integration::dist_1d;
use vf_runtime::ghost::{exchange_ghosts_fused_sharded, exchange_ghosts_fused_wire_with};
use vf_runtime::parti::{execute_gather, execute_gather_sharded, inspector};

/// Strategy for an arbitrary 1-D distribution type valid for `n` elements
/// on `p` processors — block, cyclic, generalised block, or a
/// mapping-array INDIRECT layout with arbitrary owners.
fn arb_dist_type(n: usize, p: usize) -> impl Strategy<Value = DistType> {
    prop_oneof![
        Just(DistType::block1d()),
        (1usize..6).prop_map(DistType::cyclic1d),
        proptest::collection::vec(0usize..(2 * n / p + 1), p).prop_map(move |mut sizes| {
            let mut total: usize = sizes.iter().sum();
            let mut i = 0;
            while total > n {
                let take = (total - n).min(sizes[i % p]);
                sizes[i % p] -= take;
                total -= take;
                i += 1;
            }
            if total < n {
                sizes[p - 1] += n - total;
            }
            DistType::gen_block1d(sizes)
        }),
        proptest::collection::vec(0usize..p, n).prop_map(|owners| {
            DistType::indirect1d(Arc::new(IndirectMap::new(owners).expect("non-empty")))
        }),
    ]
}

/// Asserts the modelled charges agree and that only the sharded tracker
/// moved real bytes — exactly as many as the executor reports.
fn assert_stats_parity(sharded: &CommStats, shared: &CommStats, exec: &ExecReport) {
    assert_eq!(sharded.total_messages(), shared.total_messages());
    assert_eq!(sharded.total_bytes(), shared.total_bytes());
    assert_eq!(
        shared.channel_messages(),
        0,
        "oracle never touches a channel"
    );
    assert_eq!(sharded.channel_messages(), exec.messages);
    assert_eq!(sharded.channel_bytes(), exec.bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused redistribution through rank-local shards and real channels
    /// is bitwise identical to the shared-memory wire executor.
    #[test]
    fn prop_sharded_redistribute_is_bitwise_identical(
        n in 8usize..64,
        p in 2usize..5,
        arrays in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let from_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let to_t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let from = dist_1d(from_t, n, p);
        let to = dist_1d(to_t, n, p);
        let init = |k: usize| move |pt: &Point| {
            (pt.coord(0) as f64) * 1.5 + (seed + k as u64 * 10_000) as f64
        };

        // One independently planned fused schedule per run: directory
        // page charges are consumed on first execution, so sharing one
        // plan would hide them from the second run.
        let plan_once = || {
            FusedPlan::fuse(
                (0..arrays)
                    .map(|_| Ok(Arc::new(plan::plan_redistribute(&from, &to)?)))
                    .collect::<Result<Vec<_>, vf_runtime::RuntimeError>>()
                    .unwrap(),
            )
            .unwrap()
        };
        let fused = plan_once();

        let t_shared = CommTracker::new(p, CostModel::ipsc860(p));
        let mut a_shared: Vec<DistArray<f64>> = (0..arrays)
            .map(|k| DistArray::from_fn(format!("A{k}"), from.clone(), init(k)))
            .collect();
        let mut refs: Vec<&mut DistArray<f64>> = a_shared.iter_mut().collect();
        let (r_shared, e_shared) =
            execute_redistribute_fused_wire(&mut refs, &fused, &t_shared, &SerialExecutor)
                .unwrap();

        let t_sharded = CommTracker::new(p, CostModel::ipsc860(p));
        let mut a_sharded: Vec<DistArray<f64>> = (0..arrays)
            .map(|k| DistArray::from_fn(format!("A{k}"), from.clone(), init(k)))
            .collect();
        let mut refs: Vec<&mut DistArray<f64>> = a_sharded.iter_mut().collect();
        let fused2 = plan_once();
        let (r_sharded, e_sharded) = execute_redistribute_fused_sharded(
            &mut refs, &fused2, &t_sharded, &ShardedExecutor::new(),
        )
        .unwrap();

        prop_assert_eq!(r_shared, r_sharded);
        prop_assert_eq!(&e_shared, &e_sharded);
        for (a, b) in a_shared.iter().zip(&a_sharded) {
            for q in 0..p {
                prop_assert_eq!(a.local(ProcId(q)), b.local(ProcId(q)), "locals of P{}", q);
            }
            prop_assert_eq!(a.to_dense(), b.to_dense());
            b.check_invariants().unwrap();
        }
        assert_stats_parity(&t_sharded.snapshot(), &t_shared.snapshot(), &e_sharded);
    }

    /// Fused ghost exchange over real channels fills exactly the ghost
    /// values of the shared-memory wire exchange — including on INDIRECT
    /// layouts, whose halos are irregular per-element chains.
    #[test]
    fn prop_sharded_ghost_exchange_is_bitwise_identical(
        n in 8usize..48,
        p in 2usize..5,
        lo in 1usize..3,
        hi in 1usize..3,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let dist = dist_1d(t, n, p);
        let a = DistArray::from_fn("G", dist.clone(), |pt| (pt.coord(0) * 37) as f64 * 0.25);
        let widths = [(lo, hi)];

        let t_shared = CommTracker::new(p, CostModel::ipsc860(p));
        let (g_shared, e_shared) = exchange_ghosts_fused_wire_with(
            &[&a], &widths, &t_shared, &PlanCache::new(), &SerialExecutor,
        )
        .unwrap();

        let t_sharded = CommTracker::new(p, CostModel::ipsc860(p));
        let (g_sharded, e_sharded) = exchange_ghosts_fused_sharded(
            &[&a], &widths, &t_sharded, &PlanCache::new(), &ShardedExecutor::new(),
        )
        .unwrap();

        prop_assert_eq!(&e_shared, &e_sharded);
        for q in 0..p {
            prop_assert_eq!(g_shared[0].len(ProcId(q)), g_sharded[0].len(ProcId(q)));
            for point in dist.domain().iter() {
                prop_assert_eq!(
                    g_shared[0].get(ProcId(q), &point),
                    g_sharded[0].get(ProcId(q), &point)
                );
            }
        }
        assert_stats_parity(&t_sharded.snapshot(), &t_shared.snapshot(), &e_sharded);
    }

    /// PARTI gathers through rank-local shards fetch exactly the values
    /// of the shared-memory executor and charge identically.
    #[test]
    fn prop_sharded_gather_is_bitwise_identical(
        n in 8usize..64,
        p in 2usize..5,
        stride in 1usize..5,
        spin in 1usize..11,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let t = arb_dist_type(n, p).new_tree(&mut runner).unwrap().current();
        let dist = dist_1d(t, n, p);
        let a = DistArray::from_fn("X", dist.clone(), |pt| pt.coord(0) as f64 * 2.5);
        let accesses: Vec<(ProcId, Point)> = (1..=n as i64)
            .step_by(stride)
            .map(|i| (ProcId(((i as usize) * spin) % p), Point::d1(i)))
            .collect();
        // One schedule per run — directory page charges are consumed on
        // first execution.
        let schedule = inspector(&dist, &accesses).unwrap();
        let schedule2 = inspector(&dist, &accesses).unwrap();

        let t_shared = CommTracker::new(p, CostModel::ipsc860(p));
        let g_shared = execute_gather(&a, &schedule, &t_shared).unwrap();

        let t_sharded = CommTracker::new(p, CostModel::ipsc860(p));
        let g_sharded =
            execute_gather_sharded(&a, &schedule2, &t_sharded, &ShardedExecutor::new()).unwrap();

        for q in 0..p {
            prop_assert_eq!(g_shared.len(ProcId(q)), g_sharded.len(ProcId(q)));
        }
        for (proc, point) in &accesses {
            prop_assert_eq!(
                g_shared.get(*proc, &dist, point),
                g_sharded.get(*proc, &dist, point)
            );
        }
        let shared = t_shared.snapshot();
        let sharded = t_sharded.snapshot();
        prop_assert_eq!(sharded.total_messages(), shared.total_messages());
        prop_assert_eq!(sharded.total_bytes(), shared.total_bytes());
        prop_assert_eq!(shared.channel_messages(), 0);
        // Gather moves exactly the schedule's aggregated messages over
        // the wire — one channel frame per crossing processor pair.
        prop_assert_eq!(sharded.channel_messages(), schedule.num_messages());
        prop_assert_eq!(sharded.channel_bytes(), schedule.plan().bytes_for(8));
    }
}
