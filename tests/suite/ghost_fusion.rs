//! Property suite for the fused ghost exchange: a connect class of stencil
//! arrays exchanges all halos in **one message per communicating processor
//! pair**, conserving values and byte totals exactly against per-array
//! exchange, across execution backends, and through the plan cache.

use std::sync::Arc;
use vf_core::prelude::*;
use vf_integration::zero_machine;
use vf_runtime::ghost::{
    exchange_ghosts, exchange_ghosts_fused, exchange_ghosts_fused_planned_with,
    exchange_ghosts_fused_with,
};
use vf_runtime::plan::{plan_ghost, plan_ghost_irregular};
use vf_runtime::{RuntimeError, SerialExecutor};

const WIDTHS: [(usize, usize); 2] = [(1, 1), (1, 1)];

fn grid_array(name: &str, t: DistType, n: usize, p: usize, scale: f64) -> DistArray<f64> {
    let dist = Distribution::new(t, IndexDomain::d2(n, n), ProcessorView::linear(p)).unwrap();
    DistArray::from_fn(name, dist, |pt| {
        (pt.coord(0) * 1000 + pt.coord(1)) as f64 * scale
    })
}

/// The set of communicating (owner, reader) pairs of a ghost plan.
fn crossing_pairs(plan: &CommPlan) -> std::collections::BTreeSet<(usize, usize)> {
    plan.transfers()
        .iter()
        .filter(|t| t.src != t.dst && t.elements > 0)
        .map(|t| (t.src.0, t.dst.0))
        .collect()
}

#[test]
fn fused_ghost_equals_per_array_ghost_bitwise_and_conserves_traffic() {
    let n = 8usize;
    let p = 4usize;
    for t in [DistType::columns(), DistType::blocks2d()] {
        let arrays: Vec<DistArray<f64>> = (0..3)
            .map(|k| grid_array("A", t.clone(), n, p, (k + 1) as f64 * 0.5))
            .collect();
        let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
        let cache = PlanCache::new();
        let machine = zero_machine(p);
        let t_fused = machine.tracker();
        let (regions, exec) = exchange_ghosts_fused(&refs, &WIDTHS, &t_fused, &cache).unwrap();

        // Exactly one message per communicating processor pair, regardless
        // of class size.
        let pairs = crossing_pairs(&plan_ghost(arrays[0].dist(), &WIDTHS).unwrap());
        assert_eq!(exec.messages, pairs.len(), "{t}");
        assert!(exec.messages <= p * (p - 1));

        // Per-array exchange: same values bitwise, k× the messages, the
        // same byte total.
        let t_single = machine.tracker();
        let mut single_messages = 0usize;
        let mut single_bytes = 0usize;
        for (k, array) in arrays.iter().enumerate() {
            let (ghosts, report) = exchange_ghosts(array, &WIDTHS, &t_single).unwrap();
            single_messages += report.messages;
            single_bytes += report.bytes;
            for proc in array.dist().proc_ids() {
                for point in array.domain().iter() {
                    assert_eq!(
                        regions[k].get(*proc, &point),
                        ghosts.get(*proc, &point),
                        "{t} array {k} at {point:?} on {proc:?}"
                    );
                }
            }
        }
        assert_eq!(single_messages, 3 * exec.messages);
        assert_eq!(single_bytes, exec.bytes);
        // The trackers agree on bytes and disagree on messages by exactly
        // the fusion factor.
        assert_eq!(
            t_fused.snapshot().total_bytes(),
            t_single.snapshot().total_bytes()
        );
        assert_eq!(
            3 * t_fused.snapshot().total_messages(),
            t_single.snapshot().total_messages()
        );
    }
}

#[test]
fn threaded_equals_serial_on_fused_ghost_plans() {
    let n = 16usize;
    let p = 4usize;
    let arrays: Vec<DistArray<f64>> = (0..4)
        .map(|k| grid_array("B", DistType::blocks2d(), n, p, (k as f64 + 1.0) * 1.25))
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let machine = Machine::new(p, CostModel::from_alpha_beta(1.0, 0.25));
    let cache = PlanCache::new();
    let t_serial = machine.tracker();
    let (serial, rs) =
        exchange_ghosts_fused_with(&refs, &WIDTHS, &t_serial, &cache, &SerialExecutor).unwrap();
    for workers in [2, 3, 5] {
        let forced = ThreadedExecutor::with_workers(workers).serial_cutoff_bytes(0);
        let t_thr = machine.tracker();
        let (threaded, rt) =
            exchange_ghosts_fused_with(&refs, &WIDTHS, &t_thr, &cache, &forced).unwrap();
        assert_eq!(rs, rt, "{workers} workers");
        assert_eq!(t_serial.snapshot(), t_thr.snapshot(), "{workers} workers");
        for (k, array) in arrays.iter().enumerate() {
            for proc in array.dist().proc_ids() {
                for point in array.domain().iter() {
                    assert_eq!(
                        serial[k].get(*proc, &point),
                        threaded[k].get(*proc, &point),
                        "array {k} differs with {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn cached_fused_plans_equal_fresh_ones_and_invalidate_by_fingerprint() {
    let n = 8usize;
    let p = 4usize;
    let a = grid_array("C", DistType::blocks2d(), n, p, 1.0);
    let b = grid_array("C", DistType::blocks2d(), n, p, -2.0);
    let machine = zero_machine(p);

    // Cached: the class hits one plan (both arrays share the
    // distribution), so the second exchange plans nothing.
    let cache = PlanCache::new();
    let t_cached = machine.tracker();
    let (g1, e1) = exchange_ghosts_fused(&[&a, &b], &WIDTHS, &t_cached, &cache).unwrap();
    assert_eq!(cache.stats().misses, 1);
    let (g2, e2) = exchange_ghosts_fused(&[&a, &b], &WIDTHS, &t_cached, &cache).unwrap();
    assert_eq!(cache.stats().misses, 1);
    assert!(cache.stats().hits >= 3, "replay served from the cache");
    assert_eq!(e1, e2);

    // Fresh: identical values and identical charges.
    let fresh = FusedPlan::fuse(vec![
        Arc::new(plan_ghost(a.dist(), &WIDTHS).unwrap()),
        Arc::new(plan_ghost(b.dist(), &WIDTHS).unwrap()),
    ])
    .unwrap();
    let t_fresh = machine.tracker();
    let (g3, e3) =
        exchange_ghosts_fused_planned_with(&[&a, &b], &fresh, &t_fresh, &SerialExecutor).unwrap();
    assert_eq!(e3, e1);
    for k in 0..2 {
        for proc in a.dist().proc_ids() {
            for point in a.domain().iter() {
                assert_eq!(g1[k].get(*proc, &point), g2[k].get(*proc, &point));
                assert_eq!(g1[k].get(*proc, &point), g3[k].get(*proc, &point));
            }
        }
    }

    // Invalidation: once the arrays are redistributed, the held fused plan
    // no longer matches their fingerprint and is rejected before charging.
    let mut moved = a.clone();
    let columns = Distribution::new(
        DistType::columns(),
        IndexDomain::d2(n, n),
        ProcessorView::linear(p),
    )
    .unwrap();
    let tracker = machine.tracker();
    redistribute(&mut moved, columns, &tracker, &RedistOptions::default()).unwrap();
    tracker.take();
    assert!(matches!(
        exchange_ghosts_fused_planned_with(&[&moved, &b], &fresh, &tracker, &SerialExecutor),
        Err(RuntimeError::PlanMismatch { .. })
    ));
    assert_eq!(tracker.snapshot().total_messages(), 0);
}

#[test]
fn scope_class_halo_exchange_is_fused_at_the_language_level() {
    // Acceptance guard at the language layer: a DYNAMIC primary with two
    // connected secondaries exchanges the class's halos in one message per
    // communicating pair.
    let p = 4usize;
    let n = 8usize;
    let mut s: VfScope<f64> = VfScope::new(zero_machine(p));
    s.declare_dynamic(DynamicDecl::new("U", IndexDomain::d2(n, n)).initial(DistType::blocks2d()))
        .unwrap();
    s.declare_secondary(SecondaryDecl::extraction("F", IndexDomain::d2(n, n), "U"))
        .unwrap();
    s.declare_secondary(SecondaryDecl::extraction("G", IndexDomain::d2(n, n), "U"))
        .unwrap();
    for name in ["U", "F", "G"] {
        for point in IndexDomain::d2(n, n).iter() {
            let v = (point.coord(0) * 10 + point.coord(1)) as f64;
            s.array_mut(name).unwrap().set(&point, v).unwrap();
        }
    }
    s.take_stats();
    let (regions, exec) = s.exchange_class_ghosts("U", &WIDTHS).unwrap();
    assert_eq!(regions.len(), 3);
    let single = plan_ghost(s.array("U").unwrap().dist(), &WIDTHS).unwrap();
    assert_eq!(exec.messages, crossing_pairs(&single).len());
    assert_eq!(exec.bytes, 3 * single.bytes_for(8));
    assert_eq!(s.stats().total_messages(), exec.messages);
    // Ghost reads resolve through every member's own slot index.
    let u = s.array("U").unwrap();
    for proc in u.dist().proc_ids() {
        for point in u.domain().iter() {
            if u.dist().is_local(*proc, &point) {
                continue;
            }
            let expect = (point.coord(0) * 10 + point.coord(1)) as f64;
            for (k, (_, region)) in regions.iter().enumerate() {
                if let Some(got) = region.get(*proc, &point) {
                    assert_eq!(got, expect, "member {k} at {point:?}");
                }
            }
        }
    }
}

#[test]
fn plan_cache_byte_budget_holds_under_mixed_regular_and_irregular_ghosts() {
    let p = 4usize;
    // A regular 2-D halo plan (hot) plus two irregular halo plans over
    // indirect maps (one cold, one new): eviction must stay within the
    // byte budget and claim the cold entry, never the hot one.
    let regular = Distribution::new(
        DistType::blocks2d(),
        IndexDomain::d2(12, 12),
        ProcessorView::linear(p),
    )
    .unwrap();
    let indirect = |seed: usize| {
        Distribution::new(
            DistType::indirect1d(Arc::new(
                IndirectMap::from_fn(144, |i| (i * 7 + seed) % p).unwrap(),
            )),
            IndexDomain::d1(144),
            ProcessorView::linear(p),
        )
        .unwrap()
    };
    let ind_a = indirect(1);
    let ind_b = indirect(2);
    let conn = Connectivity::chain(144, 1, 1).unwrap();

    let size_hot = plan_ghost(&regular, &WIDTHS).unwrap().estimated_bytes();
    let size_cold = plan_ghost_irregular(&ind_a, &conn)
        .unwrap()
        .estimated_bytes();
    let size_new = plan_ghost_irregular(&ind_b, &conn)
        .unwrap()
        .estimated_bytes();
    let budget = size_hot + size_cold + size_new - 1;
    let cache = PlanCache::with_budget_bytes(budget);

    cache.ghost_plan(&regular, &WIDTHS).unwrap(); // hot
    assert!(cache.stats().resident_bytes <= budget);
    cache.ghost_irregular_plan(&ind_a, &conn).unwrap(); // cold
    assert!(cache.stats().resident_bytes <= budget);
    cache.ghost_plan(&regular, &WIDTHS).unwrap(); // touch hot
    let hits_before = cache.stats().hits;
    assert_eq!(hits_before, 1);

    // The new irregular plan overflows the budget by one byte: exactly one
    // LRU eviction, and it must take the cold indirect entry.
    cache.ghost_irregular_plan(&ind_b, &conn).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    assert!(stats.resident_bytes <= budget);
    assert_eq!(stats.resident_bytes, size_hot + size_new);

    // Hit-rate survives: the hot regular plan is still served from the
    // cache, the cold indirect one replans.
    cache.ghost_plan(&regular, &WIDTHS).unwrap();
    assert_eq!(cache.stats().hits, hits_before + 1);
    cache.ghost_irregular_plan(&ind_a, &conn).unwrap();
    assert_eq!(
        cache.stats().misses,
        4,
        "the cold entry was the evicted one"
    );
}
