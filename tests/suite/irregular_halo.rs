//! Differential/property suite for irregular (INDIRECT) ghost regions: the
//! incremental-schedule halo exchange must agree bitwise with the
//! point-wise PARTI gather it replaces, on random shuffled-id meshes and
//! random partitions; a repartitioning must invalidate the halo plan
//! (stale-halo detection); and the structured non-contiguous-layout error
//! must name the offending dimension.

use proptest::prelude::*;
use std::sync::Arc;
use vf_apps::mesh::{
    partition_greedy, run_sweep, unstructured_mesh, MeshPartition, MeshSweepConfig,
};
use vf_core::prelude::*;
use vf_integration::zero_machine;
use vf_runtime::parti::{
    execute_gather, execute_halo, incremental_schedule, incremental_schedule_cached, inspector,
};
use vf_runtime::plan::plan_ghost;
use vf_runtime::RuntimeError;

fn indirect_1d(owners: Vec<usize>, p: usize) -> Distribution {
    let n = owners.len();
    Distribution::new(
        DistType::indirect1d(Arc::new(IndirectMap::new(owners).expect("non-empty"))),
        IndexDomain::d1(n),
        ProcessorView::linear(p),
    )
    .expect("valid indirect distribution")
}

/// The gather accesses equivalent to one halo sweep: every element's owner
/// reads all of the element's neighbours.
fn edge_accesses(conn: &Connectivity, dist: &Distribution) -> Vec<(ProcId, Point)> {
    let locator = dist.locator();
    (0..conn.num_nodes())
        .flat_map(|u| {
            let owner = locator.locate_lin(u).0;
            conn.neighbors(u)
                .map(move |v| (owner, Point::d1(v as i64 + 1)))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn stale_halo_plans_are_detected_after_repartitioning() {
    let nx = 8usize;
    let ny = 6usize;
    let p = 4usize;
    let mesh = unstructured_mesh(nx, ny, 99);
    let conn = mesh.connectivity();
    let n = mesh.num_nodes();
    let machine = zero_machine(p);
    let tracker = machine.tracker();
    let cache = PlanCache::new();

    // Initial partition: coordinate-ish striping by id.
    let dist_a = indirect_1d((0..n).map(|u| u * p / n).collect(), p);
    let mut a = DistArray::from_fn("VAL", dist_a.clone(), |pt| (pt.coord(0) * 3) as f64);
    let stale = incremental_schedule_cached(&dist_a, &conn, &cache).unwrap();
    execute_halo(&a, &stale, &tracker).unwrap();
    assert_eq!(cache.stats().misses, 1);

    // Mid-run repartitioning: a greedy connectivity-aware map.
    let dist_b = indirect_1d(partition_greedy(&mesh, p), p);
    redistribute(&mut a, dist_b.clone(), &tracker, &RedistOptions::default()).unwrap();

    // The held schedule is stale: execution is rejected before anything is
    // charged — the stale-halo detection.
    tracker.take();
    assert!(matches!(
        execute_halo(&a, &stale, &tracker),
        Err(RuntimeError::PlanMismatch { .. })
    ));
    assert_eq!(tracker.snapshot().total_messages(), 0);

    // The cache replans for the new fingerprint (a miss, not a stale hit)
    // and the fresh schedule serves correct values.
    let fresh = incremental_schedule_cached(&dist_b, &conn, &cache).unwrap();
    assert_eq!(cache.stats().misses, 2);
    let (halo, _) = execute_halo(&a, &fresh, &tracker).unwrap();
    let locator = dist_b.locator();
    for u in 0..n {
        let owner = locator.locate_lin(u).0;
        for v in conn.neighbors(u) {
            if locator.locate_lin(v).0 == owner {
                continue;
            }
            let point = Point::d1(v as i64 + 1);
            assert_eq!(
                halo.get(owner, &point),
                Some((v as i64 + 1) as f64 * 3.0),
                "cut edge {u} -> {v}"
            );
        }
    }

    // Evicting the old map's translation table is idempotent.  The
    // process-wide registry is a small LRU shared with every other test in
    // this binary, so re-register the table immediately before evicting it
    // rather than relying on residency across the loops above.
    let _keep_alive = table_for(&dist_a);
    assert!(vf_runtime::invalidate(dist_a.fingerprint()));
    assert!(!vf_runtime::invalidate(dist_a.fingerprint()));
}

#[test]
fn non_contiguous_layout_error_names_the_dimension() {
    let p = 4usize;
    // Dimension 1 is cyclic: the error must say so.
    let dist = Distribution::new(
        DistType::new(vec![DimDist::NotDistributed, DimDist::Cyclic(1)]),
        IndexDomain::d2(8, 8),
        ProcessorView::linear(p),
    )
    .unwrap();
    let err = plan_ghost(&dist, &[(1, 1), (1, 1)]).unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::NonContiguousLayout { dim: 1, .. }
    ));
    assert!(
        err.to_string().contains("dimension 1"),
        "message must name the dimension: {err}"
    );
    // And dimension 0 when the first dimension scatters (CYCLIC(2) over 16
    // elements on 4 processors: two separated blocks per processor).
    let dist = Distribution::new(
        DistType::new(vec![DimDist::Cyclic(2), DimDist::NotDistributed]),
        IndexDomain::d2(16, 8),
        ProcessorView::linear(p),
    )
    .unwrap();
    let err = plan_ghost(&dist, &[(1, 1), (0, 0)]).unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::NonContiguousLayout { dim: 0, .. }
    ));
    assert!(err.to_string().contains("dimension 0"));
    // A CYCLIC dimension whose blocks happen to be contiguous must NOT be
    // blamed: CYCLIC(8) over 16 elements on 2 processors is one block per
    // processor, so the scatterer is the CYCLIC(1) dimension — dim 1.
    let dist = Distribution::new(
        DistType::new(vec![DimDist::Cyclic(8), DimDist::Cyclic(1)]),
        IndexDomain::d2(16, 8),
        ProcessorView::grid2d(2, 4),
    )
    .unwrap();
    let err = plan_ghost(&dist, &[(1, 1), (1, 1)]).unwrap_err();
    assert!(
        matches!(err, RuntimeError::NonContiguousLayout { dim: 1, .. }),
        "the genuinely scattered dimension must be named: {err}"
    );
}

#[test]
fn mesh_sweep_values_survive_the_halo_switch_bitwise() {
    // Acceptance guard: after switching the edge sweep to
    // incremental-schedule halos, the values stay bitwise
    // partition-independent, including across a mid-run repartition.
    let mesh = unstructured_mesh(10, 9, 31);
    let machine = Machine::new(4, CostModel::from_alpha_beta(1.0, 0.01));
    let run = |partition, repartition_at| {
        run_sweep(
            &mesh,
            &MeshSweepConfig {
                steps: 4,
                partition,
                repartition_at,
            },
            &machine,
        )
    };
    let block = run(MeshPartition::Block, None);
    let coord = run(MeshPartition::Coordinate, None);
    let greedy = run(MeshPartition::Greedy, None);
    let remapped = run(MeshPartition::Greedy, Some(2));
    assert_eq!(block.values, coord.values);
    assert_eq!(block.values, greedy.values);
    assert_eq!(block.values, remapped.values);
    // The halo path really planned against the translation table and the
    // cache was hit across steps.
    assert!(coord.directory.page_fetches + coord.directory.home_hits > 0);
    assert!(coord.plan_cache.hits > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On random shuffled-id meshes with random partitions, the
    /// incremental-schedule halo exchange fetches exactly what the
    /// point-wise gather fetches, bitwise, with identical element counts
    /// and message structure.
    #[test]
    fn prop_incremental_halo_equals_pointwise_gather(
        nx in 2usize..9,
        ny in 2usize..7,
        mesh_seed in 0u64..1000,
        owners_seed in proptest::collection::vec(0usize..4, 1..64),
    ) {
        let p = 4usize;
        let mesh = unstructured_mesh(nx, ny, mesh_seed);
        let conn = mesh.connectivity();
        let n = mesh.num_nodes();
        // A pseudo-random partition derived from the sampled seed vector.
        let owners: Vec<usize> = (0..n)
            .map(|u| owners_seed[u % owners_seed.len()].wrapping_add(u / 3) % p)
            .collect();
        let dist = indirect_1d(owners, p);
        let a = DistArray::from_fn("N", dist.clone(), |pt| ((pt.coord(0) * 37) % 101) as f64);

        let schedule = incremental_schedule(&dist, &conn).unwrap();
        let accesses = edge_accesses(&conn, &dist);
        let gather = inspector(&dist, &accesses).unwrap();
        prop_assert_eq!(schedule.num_elements(), gather.num_elements());
        prop_assert_eq!(schedule.num_messages(), gather.num_messages());

        let machine = zero_machine(p);
        let t_halo = machine.tracker();
        let t_gather = machine.tracker();
        let (halo, report) = execute_halo(&a, &schedule, &t_halo).unwrap();
        let fetched = execute_gather(&a, &gather, &t_gather).unwrap();
        prop_assert_eq!(report.elements, schedule.num_elements());
        // Identical modelled traffic...
        prop_assert_eq!(
            t_halo.snapshot().total_bytes(),
            t_gather.snapshot().total_bytes()
        );
        prop_assert_eq!(
            t_halo.snapshot().total_messages(),
            t_gather.snapshot().total_messages()
        );
        // ...and identical values for every scheduled cut edge.
        for (q, point) in &accesses {
            if a.dist().is_local(*q, point) {
                continue;
            }
            prop_assert_eq!(
                halo.get(*q, point),
                fetched.get(*q, a.dist(), point),
                "P{:?} at {:?}", q, point
            );
        }
    }

    /// Widths on a 1-D INDIRECT array mean the implicit chain stencil: the
    /// routed plan serves every ±width read that crosses processors.
    #[test]
    fn prop_indirect_widths_route_to_chain_halos(
        owners in proptest::collection::vec(0usize..3, 4..48),
        lo in 0usize..3,
        hi in 0usize..3,
    ) {
        let p = 3usize;
        let n = owners.len();
        let dist = indirect_1d(owners.clone(), p);
        let a = DistArray::from_fn("W", dist.clone(), |pt| (pt.coord(0) * 2) as f64);
        let machine = zero_machine(p);
        let tracker = machine.tracker();
        let (halo, _) = ghost::exchange_ghosts(&a, &[(lo, hi)], &tracker).unwrap();
        for u in 0..n {
            let owner = ProcId(owners[u]);
            for v in u.saturating_sub(lo)..=(u + hi).min(n - 1) {
                if owners[v] == owners[u] {
                    continue;
                }
                let point = Point::d1(v as i64 + 1);
                prop_assert_eq!(
                    ghost::get_with_ghosts(&a, &halo, owner, &point).ok(),
                    Some((v as i64 + 1) as f64 * 2.0),
                    "{} reading {}", u, v
                );
            }
        }
    }
}
