//! The grid-smoothing scenario of §4: the best distribution of the N×N grid
//! depends on a runtime value (N), the number of processors ($NP) and the
//! machine's message cost parameters — so the program chooses it at run
//! time and issues the corresponding DISTRIBUTE.
//!
//! Run with `cargo run -p vf-examples --bin autotune_smoothing [N] [procs]`.

use vf_apps::smoothing::{self, SmoothingConfig, SmoothingLayout};
use vf_apps::workloads;
use vf_core::prelude::*;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg(1, 64);
    let procs = arg(2, 16);
    let steps = 4;

    for (cost, label) in [
        (CostModel::latency_bound(), "latency-bound machine"),
        (CostModel::bandwidth_bound(), "bandwidth-bound machine"),
        (CostModel::ipsc860(procs), "iPSC/860-like machine"),
    ] {
        // The runtime choice the paper describes: compare the predicted
        // per-step cost of the two layouts for this N, $NP and machine.
        let chosen = smoothing::choose_layout(n, procs, &cost);
        println!("{label}: N = {n}, p = {procs} -> choose {chosen:?}");
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let predicted = smoothing::predicted_step_time(layout, n, procs, &cost);
            let machine = Machine::new(procs, cost.clone());
            let initial = workloads::initial_grid(n, 3);
            let result = smoothing::run(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            println!(
                "  {layout:?}: predicted {:.3e} s/step, measured {:.3e} s/step, {} msgs/step",
                predicted,
                result.stats.critical_time() / steps as f64,
                result.messages_per_step
            );
        }
        println!();
    }
    println!("the chosen layout is the one with the lower predicted per-step cost;");
    println!("a Vienna Fortran program expresses the choice with DISTRIBUTE inside an IF");
    println!("on $NP and the input size, as described in section 4 of the paper.");
}
