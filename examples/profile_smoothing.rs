//! Profiled grid smoothing: the tracing subsystem end to end.
//!
//! Runs the class-fused Jacobi smoothing workload with span recording on,
//! then prints the runtime profile — per-phase span counts, measured
//! seconds and latency percentiles, plus the **drift** section comparing
//! the wall-clock seconds the spans measured against the seconds the cost
//! model charged — and leaves a Chrome `trace_event` file behind.
//!
//! Run with `cargo run --release -p vf-examples --bin profile_smoothing
//! [N] [procs] [steps]`.  Load the written trace at `ui.perfetto.dev`
//! (one lane per pool worker, lane 0 for the calling thread).
//!
//! Tracing is enabled programmatically here; ordinary programs opt in with
//! `VF_TRACE=1` and call [`trace::write_chrome_trace_if_env`] on exit.

use vf_apps::smoothing::{self, SmoothingConfig};
use vf_apps::workloads;
use vf_core::prelude::*;
use vf_runtime::trace;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg(1, 96);
    let procs = arg(2, 8);
    let steps = arg(3, 6);
    let fields = 3usize;

    trace::set_enabled(true);
    trace::reset();

    let cost = CostModel::ipsc860(procs);
    let layout = smoothing::choose_layout(n, procs, &cost);
    let machine = Machine::new(procs, cost);
    let initials: Vec<Vec<f64>> = (0..fields)
        .map(|k| workloads::initial_grid(n, k as u64 + 3))
        .collect();
    println!(
        "profiled smoothing: {n}x{n} grid, {fields}-field class, {procs} procs, \
         {steps} steps, layout {layout:?}\n"
    );
    let result = smoothing::run_class(&SmoothingConfig { n, steps, layout }, &machine, &initials);
    println!(
        "{} fused messages/step (vs {} unfused), {} bytes/step\n",
        result.messages_per_step, result.unfused_messages_per_step, result.bytes_per_step
    );

    // The profile table: spans by phase, then measured-vs-modelled drift.
    // The modelled side simulates the configured iPSC/860, so the ratio —
    // not its absolute value — is the signal to watch across runs.
    print!("{}", machine.metrics_report(&result.stats));

    let path = std::env::var("VF_TRACE_OUT").unwrap_or_else(|_| "trace_smoothing.json".into());
    trace::write_chrome_trace(std::path::Path::new(&path)).unwrap();
    let events = trace::snapshot().events.len();
    println!("\nwrote {path} ({events} events) — load it at ui.perfetto.dev");
}
