//! Unstructured-mesh edge sweep: `INDIRECT(map)` distributions end to end.
//!
//! A shuffled-id CSR mesh is swept with a Jacobi update; the node arrays
//! are distributed (a) `BLOCK` by node id — the regular baseline, blind to
//! the connectivity — and (b) `INDIRECT` through a coordinate partitioner's
//! mapping array, then *re*-partitioned mid-run with a greedy graph-growing
//! map through a second executable `DISTRIBUTE`.  The sweep values are
//! bitwise identical in every configuration; only the communication
//! differs.
//!
//! Run with `cargo run --release -p vf-examples --bin mesh_sweep`.

use vf_apps::mesh::{
    edge_cut, partition_coordinate, partition_greedy, run_sweep, unstructured_mesh, MeshPartition,
    MeshSweepConfig,
};
use vf_core::prelude::*;
use vf_examples::print_phase;

fn main() {
    let procs = 8usize;
    let (nx, ny) = (48usize, 32usize);
    let mesh = unstructured_mesh(nx, ny, 20260731);
    let machine = Machine::new(procs, CostModel::ipsc860(procs));
    println!(
        "unstructured mesh: {} nodes, {} edges, {} processors",
        mesh.num_nodes(),
        mesh.num_edges(),
        procs
    );

    let block_owners: Vec<usize> = (0..mesh.num_nodes())
        .map(|u| u * procs / mesh.num_nodes())
        .collect();
    println!(
        "edge cut: BLOCK-by-id {} | coordinate map {} | greedy map {}\n",
        edge_cut(&mesh, &block_owners),
        edge_cut(&mesh, &partition_coordinate(&mesh, procs)),
        edge_cut(&mesh, &partition_greedy(&mesh, procs)),
    );

    let steps = 6usize;
    let run = |partition, repartition_at| {
        run_sweep(
            &mesh,
            &MeshSweepConfig {
                steps,
                partition,
                repartition_at,
            },
            &machine,
        )
    };

    println!("## {steps}-step sweep per distribution\n");
    let block = run(MeshPartition::Block, None);
    let coord = run(MeshPartition::Coordinate, None);
    let remapped = run(MeshPartition::Coordinate, Some(steps / 2));

    for (name, r) in [
        ("BLOCK by node id", &block),
        ("INDIRECT(coordinate)", &coord),
        ("INDIRECT + mid-run remap", &remapped),
    ] {
        println!(
            "{name} [DCASE arm: {}]\n  gathered {} elements in {} messages over {} steps; edge cut {} -> {}",
            r.dcase_arm,
            r.gathered_elements,
            r.gather_messages,
            steps,
            r.edge_cut_initial,
            r.edge_cut_final
        );
        print_phase("machine totals", &r.stats);
        if r.directory.page_fetches > 0 {
            println!(
                "  translation table: {} page fetches (cold), {} cached hits, {} home hits",
                r.directory.page_fetches, r.directory.cache_hits, r.directory.home_hits
            );
        }
        println!(
            "  plan cache: {} misses, {} hits",
            r.plan_cache.misses, r.plan_cache.hits
        );
        println!();
    }

    // The dynamic repartitioning moved the two-array connect class (values
    // + fluxes) as ONE fused schedule: fewer messages than per-array
    // execution, identical bytes.
    let report = remapped
        .repartition
        .as_ref()
        .expect("the remapped run redistributes");
    println!(
        "mid-run DISTRIBUTE :: INDIRECT(greedy map) over the 2-array class:\n  \
         {} messages fused vs {} unfused ({} bytes either way)",
        report.messages(),
        report.unfused_messages(),
        report.bytes()
    );
    assert!(
        report.messages() < report.unfused_messages(),
        "fusion must save messages for the connect class"
    );

    // Identical numerics in every configuration — only communication
    // differs.
    assert_eq!(block.values, coord.values);
    assert_eq!(block.values, remapped.values);
    assert!(
        coord.gathered_elements < block.gathered_elements,
        "the mesh-aware map must cut fewer edges than BLOCK-by-id"
    );
    println!("\nok: values bitwise identical across all distributions");

    // Under VF_TRACE=1 leave a Chrome trace of the whole run behind
    // (VF_TRACE_OUT overrides the path; load it at ui.perfetto.dev).
    if let Some(path) = vf_runtime::trace::write_chrome_trace_if_env().unwrap() {
        println!("wrote {path}");
    }
}
