//! The particle-in-cell scenario of the paper's Figure 2: a drifting,
//! clustered particle cloud over a 1-D cell domain, with the cells
//! redistributed by `B_BLOCK(BOUNDS)` every ten steps to keep the particle
//! load balanced.
//!
//! Run with `cargo run -p vf-examples --bin pic_simulation [ncell] [particles] [steps] [procs]`.

use vf_apps::pic::{run, PicConfig, PicStrategy};
use vf_apps::workloads::{particles, ParticleLayout};
use vf_core::prelude::*;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let ncell = arg(1, 256);
    let nparticles = arg(2, 4000);
    let steps = arg(3, 40);
    let procs = arg(4, 8);
    println!("PIC: {ncell} cells, {nparticles} particles, {steps} steps, {procs} processors\n");

    let init = particles(
        ncell,
        nparticles,
        ParticleLayout::Cluster {
            center: 0.2,
            width: 0.08,
        },
        0.4,
        29,
    );

    for (strategy, label) in [
        (PicStrategy::StaticBlock, "static BLOCK cells"),
        (
            PicStrategy::DynamicGenBlock {
                period: 10,
                threshold: 1.1,
            },
            "B_BLOCK(BOUNDS) every 10 steps (Figure 2)",
        ),
        (PicStrategy::Oracle, "B_BLOCK(BOUNDS) every step"),
    ] {
        let machine = Machine::new(procs, CostModel::ipsc860(procs));
        let result = run(
            &PicConfig {
                ncell,
                steps,
                strategy,
            },
            &machine,
            &init,
        );
        println!("strategy: {label}");
        println!(
            "  particle imbalance: mean {:.2}, max {:.2}",
            result.mean_imbalance, result.max_imbalance
        );
        println!(
            "  rebalances: {} ({} bytes moved)",
            result.rebalance_count, result.rebalance_bytes
        );
        println!(
            "  compute-time imbalance {:.2}, modelled execution time {:.3e} s",
            result.stats.load_imbalance(),
            result.stats.critical_time()
        );
        assert_eq!(
            result.total_particles, nparticles,
            "particles are conserved"
        );
        println!();
    }
    println!("every strategy conserves all {nparticles} particles; the dynamic");
    println!("general-block redistribution keeps the particle load balanced as the");
    println!("cloud drifts, at the price of periodic redistribution traffic.");
}
