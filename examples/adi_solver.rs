//! The ADI iteration of the paper's Figure 1, written against the language
//! layer: a DYNAMIC array with a RANGE, x-line sweeps, an executable
//! DISTRIBUTE between the phases, y-line sweeps.
//!
//! Run with `cargo run -p vf-examples --bin adi_solver [N] [iterations] [procs]`.

use vf_apps::tridiag::{self, TridiagCoeffs};
use vf_apps::workloads;
use vf_core::prelude::*;
use vf_examples::print_phase;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Sweeps the lines along `sweep_dim`, solving each line locally on the
/// processor that owns it (both sweeps are local thanks to the
/// redistribution, exactly as in Figure 1).
fn local_sweep(scope: &mut VfScope<f64>, name: &str, sweep_dim: usize) -> Result<(), CoreError> {
    let coeffs = TridiagCoeffs::diffusion(0.05);
    let array = scope.array_mut(name)?;
    let domain = array.domain().clone();
    let n_sweep = domain.extent(sweep_dim);
    let other_dim = 1 - sweep_dim;
    for line in 0..domain.extent(other_dim) {
        let fixed = domain.dim(other_dim).lower() + line as i64;
        let mut values = Vec::with_capacity(n_sweep);
        for k in 0..n_sweep {
            let coord = domain.dim(sweep_dim).lower() + k as i64;
            let point = if sweep_dim == 0 {
                Point::d2(coord, fixed)
            } else {
                Point::d2(fixed, coord)
            };
            values.push(array.get(&point)?);
        }
        tridiag::solve_in_place(coeffs, &mut values);
        for (k, &v) in values.iter().enumerate() {
            let coord = domain.dim(sweep_dim).lower() + k as i64;
            let point = if sweep_dim == 0 {
                Point::d2(coord, fixed)
            } else {
                Point::d2(fixed, coord)
            };
            array.set(&point, v)?;
        }
    }
    Ok(())
}

fn main() -> Result<(), CoreError> {
    let n = arg(1, 64);
    let iterations = arg(2, 2);
    let procs = arg(3, 4);
    println!("ADI on a {n}x{n} grid, {iterations} iteration(s), {procs} processors\n");

    let machine = Machine::new(procs, CostModel::ipsc860(procs));
    let mut scope: VfScope<f64> = VfScope::new(machine);

    // REAL V(NX, NY) DYNAMIC, RANGE((:,BLOCK),(BLOCK,:)), DIST(:, BLOCK)
    scope.declare_dynamic(
        DynamicDecl::new("V", IndexDomain::d2(n, n))
            .range([
                DistPattern::exact(&DistType::columns()),
                DistPattern::exact(&DistType::rows()),
            ])
            .initial(DistType::columns()),
    )?;
    let initial = workloads::initial_grid(n, 7);
    for point in IndexDomain::d2(n, n).iter() {
        let lin = IndexDomain::d2(n, n).linearize(&point)?;
        scope.array_mut("V")?.set(&point, initial[lin])?;
    }
    scope.take_stats();

    for iter in 0..iterations {
        if iter > 0 {
            // Return to the column distribution for the next x-sweep.
            scope.distribute(DistributeStmt::new("V", DistType::columns()))?;
            print_phase(
                &format!("iter {iter}: DISTRIBUTE back"),
                &scope.take_stats(),
            );
        }
        // Sweep over x-lines: every column V(:, J) is local under (:, BLOCK).
        local_sweep(&mut scope, "V", 0)?;
        let x_stats = scope.take_stats();
        print_phase(&format!("iter {iter}: x-line sweeps"), &x_stats);

        // DISTRIBUTE V :: (BLOCK, :)
        scope.distribute(DistributeStmt::new("V", DistType::rows()))?;
        let redist_stats = scope.take_stats();
        print_phase(&format!("iter {iter}: DISTRIBUTE"), &redist_stats);

        // Sweep over y-lines: every row V(I, :) is now local.
        local_sweep(&mut scope, "V", 1)?;
        let y_stats = scope.take_stats();
        print_phase(&format!("iter {iter}: y-line sweeps"), &y_stats);
    }

    // Verify against the sequential reference.
    let reference = vf_apps::adi::sequential_reference(n, iterations, &initial);
    let result = scope.array("V")?.to_dense();
    let max_err = result
        .iter()
        .zip(reference.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax deviation from the sequential reference: {max_err:.3e}");
    assert!(max_err < 1e-9, "distributed ADI must match the reference");
    println!("all sweep communication was confined to the DISTRIBUTE statements.");
    Ok(())
}
