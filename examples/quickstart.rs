//! Quickstart: declare dynamically distributed arrays, redistribute them at
//! run time, and query the current distribution — the core constructs of
//! the paper in ~60 lines.
//!
//! Run with `cargo run -p vf-examples --bin quickstart`.

use vf_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // A simulated distributed-memory machine with 4 processors and an
    // iPSC/860-like message cost model.
    let machine = Machine::new(4, CostModel::ipsc860(4));
    let mut scope: VfScope<f64> = VfScope::new(machine);
    println!("$NP = {}", scope.num_procs());

    // REAL B(16,16) DYNAMIC, RANGE((BLOCK,BLOCK), (*,CYCLIC)), DIST(BLOCK,BLOCK)
    scope.declare_dynamic(
        DynamicDecl::new("B", IndexDomain::d2(16, 16))
            .range([
                DistPattern::dims(vec![DimPattern::Block, DimPattern::Block]),
                DistPattern::dims(vec![DimPattern::Star, DimPattern::Cyclic(1)]),
            ])
            .initial(DistType::blocks2d()),
    )?;
    // REAL A(16,16) DYNAMIC, CONNECT (=B)
    scope.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d2(16, 16), "B"))?;

    // Fill B through the global view (the programmer's single thread of
    // control).
    for point in IndexDomain::d2(16, 16).iter() {
        let value = (point.coord(0) * 100 + point.coord(1)) as f64;
        scope.array_mut("B")?.set(&point, value)?;
    }
    println!(
        "initial distribution of B: {}",
        scope.current_dist_type("B")?
    );
    println!("{}", scope.descriptor("B")?);

    // DISTRIBUTE B :: (:, CYCLIC)  — the secondary array A follows along.
    let report = scope.distribute(DistributeStmt::new(
        "B",
        DistType::new(vec![DimDist::NotDistributed, DimDist::Cyclic(1)]),
    ))?;
    println!(
        "redistributed B and {} connected array(s): {} elements moved, {} messages, {} bytes",
        report.per_array.len() - 1,
        report.moved_elements(),
        report.messages(),
        report.bytes()
    );
    println!("new distribution of B: {}", scope.current_dist_type("B")?);
    println!("new distribution of A: {}", scope.current_dist_type("A")?);

    // Data is preserved by the redistribution.
    let probe = Point::d2(7, 9);
    assert_eq!(scope.array("B")?.get(&probe)?, 709.0);

    // Query the distribution at run time with IDT / DCASE.
    let is_cyclic_cols = idt(
        &scope,
        "B",
        &DistPattern::dims(vec![DimPattern::Star, DimPattern::CyclicAny]),
    )?;
    println!("IDT(B, (*, CYCLIC(*))) = {is_cyclic_cols}");

    let dcase = Dcase::new(["B"])
        .when_positional([DistPattern::exact(&DistType::blocks2d())])
        .labelled("2-D block algorithm")
        .when_positional([DistPattern::dims(vec![
            DimPattern::Star,
            DimPattern::CyclicAny,
        ])])
        .labelled("cyclic-column algorithm")
        .default_case()
        .labelled("generic algorithm");
    let selected = dcase.select(&scope)?.expect("default always matches");
    println!(
        "DCASE selects clause {}: {}",
        selected,
        dcase.clauses()[selected].label.as_deref().unwrap_or("?")
    );

    vf_examples::print_phase("total communication", &scope.stats());
    Ok(())
}
