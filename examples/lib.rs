//! Shared helpers for the runnable examples.

use vf_core::prelude::CommStats;

/// Prints a one-line summary of a phase's communication statistics.
pub fn print_phase(name: &str, stats: &CommStats) {
    println!(
        "  {name:<28} {:>6} msgs  {:>10} bytes  modelled time {:>10.3e} s  imbalance {:.2}",
        stats.total_messages(),
        stats.total_bytes(),
        stats.critical_time(),
        stats.load_imbalance()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_phase_does_not_panic() {
        print_phase("phase", &CommStats::new(2));
    }
}
