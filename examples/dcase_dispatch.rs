//! Distribution-driven algorithm selection with DCASE (paper §2.5,
//! Example 4): a library routine picks its implementation based on how its
//! argument arrays happen to be distributed when it is called.
//!
//! Run with `cargo run -p vf-examples --bin dcase_dispatch`.

use vf_core::prelude::*;

/// A "library routine": sums an array with an algorithm chosen by the
/// current distributions of its operands, reporting which clause fired.
fn smart_sum(scope: &VfScope<f64>, name: &str) -> Result<(f64, String), CoreError> {
    let dcase = Dcase::new([name])
        .when_positional([DistPattern::dims(vec![DimPattern::Block])])
        .labelled("blocked: stride-1 local sums, tree combine")
        .when_positional([DistPattern::dims(vec![DimPattern::CyclicAny])])
        .labelled("cyclic: strided local sums, tree combine")
        .when_positional([DistPattern::dims(vec![DimPattern::GenBlockAny])])
        .labelled("general block: per-segment sums weighted by size")
        .default_case()
        .labelled("fallback: gather to one processor");
    let idx = dcase.select(scope)?.expect("default clause always matches");
    let label = dcase.clauses()[idx].label.clone().unwrap_or_default();
    // All variants compute the same value; the choice only affects how.
    let total = vf_runtime::reduce::sum(scope.array(name)?, scope.tracker());
    Ok((total, label))
}

fn main() -> Result<(), CoreError> {
    let machine = Machine::new(4, CostModel::ipsc860(4));
    let mut scope: VfScope<f64> = VfScope::new(machine);
    scope
        .declare_dynamic(DynamicDecl::new("X", IndexDomain::d1(64)).initial(DistType::block1d()))?;
    for i in 1..=64i64 {
        scope.array_mut("X")?.set(&Point::d1(i), i as f64)?;
    }
    let expected = (1..=64).sum::<i64>() as f64;

    for dist in [
        DistType::block1d(),
        DistType::cyclic1d(4),
        DistType::gen_block1d(vec![8, 8, 16, 32]),
    ] {
        scope.distribute(DistributeStmt::new("X", dist.clone()))?;
        let (total, label) = smart_sum(&scope, "X")?;
        println!("X distributed {dist}:");
        println!("  DCASE picked: {label}");
        println!("  sum = {total} (expected {expected})");
        assert_eq!(total, expected);
        // The compiler-side partial evaluation (paper section 3.1) can often
        // resolve these queries statically; show the verdicts.
        let plausible = [DistPattern::exact(&dist)];
        for query in [
            DistPattern::dims(vec![DimPattern::Block]),
            DistPattern::dims(vec![DimPattern::CyclicAny]),
            DistPattern::dims(vec![DimPattern::GenBlockAny]),
        ] {
            let outcome = vf_core::analysis::evaluate_query(&plausible, &query);
            println!("    partial evaluation of IDT(X, {query}) -> {outcome:?}");
        }
        println!();
    }
    Ok(())
}
