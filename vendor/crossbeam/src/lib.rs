//! Offline stand-in for the `crossbeam` channel API, backed by
//! `std::sync::mpsc`.
//!
//! The workspace only uses unbounded MPSC channels (`unbounded`, `Sender`,
//! `Receiver` with blocking `recv`), which std's channels provide directly.

/// Multi-producer single-consumer channels mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded channel, mirroring
    /// `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
