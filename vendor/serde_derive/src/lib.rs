//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors a minimal offline substitute (see `vendor/README.md`).
//! Nothing in this workspace serialises data at run time — the derives only
//! need to *parse*, so they expand to nothing.  Swapping in the real serde
//! is a one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
