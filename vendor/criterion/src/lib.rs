//! Offline stand-in for the slice of the `criterion` bench API this
//! workspace uses.
//!
//! Benches compile and run as plain timed smoke benchmarks: every
//! registered routine executes `sample_size` iterations (default 10) and
//! the mean wall-clock time is printed in criterion-like one-line form.
//! There is no statistical analysis, warm-up, or HTML report; the point is
//! that `cargo bench` exercises the same code paths with real timings and
//! stays CI-runnable without registry access.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Mirror of `criterion::black_box` — an identity function opaque to the
/// optimiser.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A bench identifier combining a function name and a parameter, mirror of
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id for `name` parameterised by `param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// The per-routine measurement handle, mirror of `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks, mirror of `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per routine.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs `routine` with `input`, reporting under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        routine(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs `routine` without an input parameter, reporting under `name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        self.report(&name.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
        println!(
            "{}/{}: {} iterations, mean {:.3e} s/iter",
            self.name, id, b.iterations, mean
        );
        record(format!("{}/{}", self.name, id), mean);
        let _ = &self.criterion;
    }

    /// Ends the group (mirror of `BenchmarkGroup::finish`).
    pub fn finish(&mut self) {}
}

/// The process-wide measurement log: `(bench id, mean seconds)` in run
/// order.  Real criterion persists its estimates to `target/criterion`;
/// this stand-in keeps them in memory so a bench `main` can export a
/// machine-readable artifact after its groups run (see
/// [`take_measurements`]).
fn measurements() -> &'static std::sync::Mutex<Vec<(String, f64)>> {
    static LOG: std::sync::OnceLock<std::sync::Mutex<Vec<(String, f64)>>> =
        std::sync::OnceLock::new();
    LOG.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

fn record(id: String, mean_seconds: f64) {
    measurements()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push((id, mean_seconds));
}

/// Drains every measurement reported so far: `(group/id, mean seconds)`
/// in run order.  Offline extension (not part of the real criterion API)
/// used by the bench mains to emit their `BENCH_e*.json` artifacts.
pub fn take_measurements() -> Vec<(String, f64)> {
    std::mem::take(
        &mut measurements()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// The bench context, mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }
}

/// Mirror of `criterion_group!`: defines a function running each listed
/// bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
