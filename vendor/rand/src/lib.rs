//! Offline stand-in for the slice of the `rand` API this workspace uses:
//! `SmallRng::seed_from_u64` plus `Rng::gen_range` over numeric ranges.
//!
//! The generator is a xorshift64* PRNG — deterministic for a given seed,
//! which is all the workload generators require (they never ask for
//! cryptographic quality).  Note the streams differ from the real
//! `SmallRng`, so seeds produce different (but equally reproducible)
//! workloads.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range — the subset
/// of `rand::distributions::uniform::SampleUniform` the workspace needs.
pub trait SampleUniform: Copy {
    /// Draws a uniform sample in `[low, high)` from `word`, a 64-bit
    /// uniform random value.
    fn sample_from(word: u64, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_from(word: u64, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_from(word: u64, low: Self, high: Self) -> Self {
        let unit = (word >> 40) as f32 / (1u64 << 24) as f32;
        low + unit * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(word: u64, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range requires a non-empty range");
                (low as i128 + (word as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32, isize);

/// The random-number-generator trait mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_from(self.next_u64(), range.start, range.end)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A small, fast, non-cryptographic PRNG (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            state ^= state >> 30;
            state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            state ^= state >> 27;
            state = state.wrapping_mul(0x94D0_49BB_1331_11EB);
            state ^= state >> 31;
            Self {
                state: state.max(1),
            }
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-1.0..1.0);
            assert_eq!(x, b.gen_range(-1.0..1.0));
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0.0..1.0), c.gen_range(0.0..1.0));
    }

    #[test]
    fn integer_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
