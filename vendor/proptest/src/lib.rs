//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Implements randomised property testing with a deterministic PRNG:
//! range strategies, `Just`, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, the `proptest!` macro with an optional
//! `proptest_config`, `prop_assert*`/`prop_assume!`, and the
//! `TestRunner`/`ValueTree` plumbing the integration tests drive manually.
//!
//! Unlike the real proptest there is **no shrinking** and no failure
//! persistence: a failing case panics with the sampled inputs visible in
//! the assertion message.  Runs are fully deterministic (fixed seed), so a
//! failure reproduces on every run.

/// Strategies: how to generate values of a type.
pub mod strategy {
    use crate::test_runner::{TestError, TestRng, TestRunner};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generated value, addressable through [`ValueTree`].  The offline
    /// stand-in never shrinks, so the tree is just the sampled value.
    #[derive(Debug, Clone)]
    pub struct Sampled<V>(pub(crate) V);

    /// Mirror of `proptest::strategy::ValueTree` (without shrinking).
    pub trait ValueTree {
        /// The type of the generated value.
        type Value;

        /// The current value of the tree.
        fn current(&self) -> Self::Value;
    }

    impl<V: Clone> ValueTree for Sampled<V> {
        type Value = V;

        fn current(&self) -> V {
            self.0.clone()
        }
    }

    /// Mirror of `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value: Clone;

        /// Draws one value using the runner's RNG.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Generates a new value tree from the runner.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Self::Value>, TestError> {
            Ok(Sampled(self.sample(runner.rng())))
        }

        /// Maps generated values through `f`.
        fn prop_map<T: Clone, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (mirror of `Strategy::boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Clone, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A boxed, type-erased strategy (mirror of `BoxedStrategy`).
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<V: Clone> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// A random choice between strategies of the same value type — the
    /// engine behind `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: Clone> Union<V> {
        /// Chooses uniformly among `options` (which must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V: Clone> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            self.start + unit * (self.end - self.start)
        }
    }

    /// Marker for `PhantomData`-based strategies (unused, kept for parity).
    #[derive(Debug, Clone)]
    pub struct NoopStrategy<T>(PhantomData<T>);
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{Sampled, Strategy};
    use crate::test_runner::{TestError, TestRng, TestRunner};
    use std::ops::Range;

    /// The number of elements a collection strategy may generate — mirror
    /// of `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy generating `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Vec<S::Value>>, TestError> {
            Ok(Sampled(self.sample(runner.rng())))
        }
    }
}

/// The test runner: configuration plus the deterministic RNG.
pub mod test_runner {
    /// Error type produced by strategy instantiation (never constructed by
    /// the offline stand-in, but present so `new_tree(..).unwrap()`
    /// compiles).
    #[derive(Debug, Clone)]
    pub struct TestError(pub String);

    /// Mirror of `proptest::test_runner::Config` under its prelude name.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the offline suite fast
            // while still exercising a meaningful sample.
            Self { cases: 64 }
        }
    }

    /// Deterministic xorshift64* RNG used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        fn from_seed(seed: u64) -> Self {
            Self {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Mirror of `proptest::test_runner::TestRunner`.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with the given configuration and the fixed seed.
        pub fn new(config: ProptestConfig) -> Self {
            Self {
                config,
                rng: TestRng::from_seed(0x5EED_CAFE),
            }
        }

        /// A runner with a deterministic RNG — mirror of
        /// `TestRunner::deterministic()`.
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        /// The runner's configuration.
        pub fn config(&self) -> &ProptestConfig {
            &self.config
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Runs the body of one property case; mirrors `proptest!`.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_prop(x in 0usize..10, ys in proptest::collection::vec(0i32..5, 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config.clone());
                for _case in 0..config.cases {
                    $(
                        let $arg = {
                            use $crate::strategy::{Strategy as _, ValueTree as _};
                            ($strat).new_tree(&mut runner).expect("strategy instantiation").current()
                        };
                    )*
                    // The closure gives `prop_assume!` an early `return`
                    // that skips just this case.  `mut` stays for bodies
                    // that mutate captured sampled values.
                    #[allow(unused_mut)]
                    let mut one_case = move || $body;
                    one_case();
                }
            }
        )*
    };
}

/// Mirror of `prop_assert!` — panics on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!` — panics on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `prop_assume!` — skips the current case when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Mirror of `prop_oneof!` — chooses uniformly among the arm strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                use $crate::strategy::Strategy as _;
                ($strat).boxed()
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn manual_runner_flow() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strat = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = strat.new_tree(&mut runner).unwrap().current();
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strat = prop_oneof![Just(1u32), Just(2u32), (10u32..20)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.new_tree(&mut runner).unwrap().current() {
                1 => seen[0] = true,
                2 => seen[1] = true,
                x if (10..20).contains(&x) => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 1usize..50, v in crate::collection::vec(0i32..5, 2..6)) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }
    }

    proptest! {
        #[test]
        fn default_config_form(y in -5i64..5) {
            prop_assert!((-5..5).contains(&y));
        }
    }
}
