//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach a crate registry, so this crate
//! provides just enough surface for the workspace to compile: the
//! `Serialize`/`Deserialize` derive macros (re-exported no-ops from the
//! vendored `serde_derive`) and empty marker traits of the same names.
//! No code in the workspace serialises values at run time; the derives and
//! bounds exist so the public types stay source-compatible with the real
//! serde, which can be swapped back in from the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the offline
/// stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the offline
/// stand-in).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
