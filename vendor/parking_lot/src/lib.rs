//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the small slice of the parking_lot API the workspace uses: a
//! [`Mutex`] whose `lock` returns the guard directly (no poison `Result`).
//! Poisoning is translated into a panic propagation, matching parking_lot's
//! behaviour of not poisoning at all for the purposes of this workspace
//! (a poisoned tracker mutex means a test already panicked).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.  Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error — a
    /// poisoned lock simply hands back the guard, as parking_lot would.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
