//! Communication and computation statistics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Statistics accumulated for a single simulated processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Number of point-to-point messages sent by the processor.
    pub messages_sent: usize,
    /// Number of point-to-point messages received by the processor.
    pub messages_received: usize,
    /// Bytes sent by the processor.
    pub bytes_sent: usize,
    /// Bytes received by the processor.
    pub bytes_received: usize,
    /// Modelled communication time spent by the processor in seconds.
    pub comm_time: f64,
    /// Modelled computation time spent by the processor in seconds.
    pub compute_time: f64,
}

impl ProcStats {
    /// Modelled total busy time of the processor.
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.compute_time
    }
}

impl AddAssign for ProcStats {
    fn add_assign(&mut self, rhs: Self) {
        self.messages_sent += rhs.messages_sent;
        self.messages_received += rhs.messages_received;
        self.bytes_sent += rhs.bytes_sent;
        self.bytes_received += rhs.bytes_received;
        self.comm_time += rhs.comm_time;
        self.compute_time += rhs.compute_time;
    }
}

/// Aggregated statistics for a whole operation or program phase.
///
/// The modelled *execution time* of an SPMD phase is the maximum over
/// processors of their busy time ([`CommStats::critical_time`]), which is
/// what the experiment harness reports alongside raw message and byte
/// counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    per_proc: Vec<ProcStats>,
    /// Modelled communication seconds hidden behind overlapped local work,
    /// summed over processors — the overlap *credit* the cost model grants
    /// at each wait (`Σ_p min(posted_time_p, overlap_p)`).
    credited_overlap_seconds: f64,
    /// Measured wall-clock seconds of real compute/communication overlap
    /// reported by split-phase executions (time the unpack workers were
    /// busy while the submitter ran interior work between post and wait).
    /// Zero on blocking paths; this is the measurement the overlap credit
    /// is validated against.
    measured_overlap_seconds: f64,
    /// Modelled message retransmissions performed by the recovery paths
    /// (transient send failures, detected wire corruption).  Always zero
    /// on fault-free runs.
    retries: usize,
    /// Faults the [`FaultInjector`](crate::FaultInjector) fired and the
    /// stack acted upon; chaos tests assert this matches the injector's
    /// own count.
    faults_injected: usize,
    /// Degraded-mode transitions taken (pooled → fresh-spawn/serial on a
    /// worker death, split-phase → blocking on a cancelled handle).
    fallbacks: usize,
    /// Messages *actually carried* over [`spmd`](crate::spmd) channels, as
    /// opposed to the modelled counts in `per_proc`.  On shared-memory
    /// executors this stays zero; the sharded backend records every real
    /// wire send here so the cost model can be cross-checked against
    /// counted traffic.
    #[serde(default)]
    channel_messages: usize,
    /// Payload bytes actually carried over spmd channels (framing headers
    /// excluded, so a correct wire path satisfies
    /// `channel_bytes == modelled wire bytes` exactly).
    #[serde(default)]
    channel_bytes: usize,
    /// Bytes written to checkpoint files (segments plus manifest framing),
    /// so persistence traffic shows up next to communication traffic and
    /// the byte-conservation guards can cover it.
    #[serde(default)]
    ckpt_bytes_written: usize,
    /// Bytes read back from checkpoint files during restore.
    #[serde(default)]
    ckpt_bytes_read: usize,
}

impl CommStats {
    /// Creates empty statistics for `num_procs` processors.
    pub fn new(num_procs: usize) -> Self {
        Self {
            per_proc: vec![ProcStats::default(); num_procs],
            credited_overlap_seconds: 0.0,
            measured_overlap_seconds: 0.0,
            retries: 0,
            faults_injected: 0,
            fallbacks: 0,
            channel_messages: 0,
            channel_bytes: 0,
            ckpt_bytes_written: 0,
            ckpt_bytes_read: 0,
        }
    }

    /// Number of processors tracked.
    pub fn num_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// The per-processor statistics.
    pub fn per_proc(&self) -> &[ProcStats] {
        &self.per_proc
    }

    /// Mutable access to one processor's statistics.
    pub fn proc_mut(&mut self, proc: usize) -> &mut ProcStats {
        &mut self.per_proc[proc]
    }

    /// Records a point-to-point message of `bytes` bytes from `src` to
    /// `dst` with modelled duration `time` (charged to both endpoints).
    pub fn record_message(&mut self, src: usize, dst: usize, bytes: usize, time: f64) {
        if src == dst {
            return; // local copies are free in the model
        }
        let s = &mut self.per_proc[src];
        s.messages_sent += 1;
        s.bytes_sent += bytes;
        s.comm_time += time;
        let d = &mut self.per_proc[dst];
        d.messages_received += 1;
        d.bytes_received += bytes;
        d.comm_time += time;
    }

    /// Records `flops` floating-point operations on `proc` with modelled
    /// duration `time`.
    pub fn record_compute(&mut self, proc: usize, time: f64) {
        self.per_proc[proc].compute_time += time;
    }

    /// Total number of point-to-point messages (counted once per message).
    pub fn total_messages(&self) -> usize {
        self.per_proc.iter().map(|p| p.messages_sent).sum()
    }

    /// Total bytes transferred (counted once per message).
    pub fn total_bytes(&self) -> usize {
        self.per_proc.iter().map(|p| p.bytes_sent).sum()
    }

    /// Total modelled compute time summed over processors.
    pub fn total_compute_time(&self) -> f64 {
        self.per_proc.iter().map(|p| p.compute_time).sum()
    }

    /// Total modelled communication time summed over processors.
    pub fn total_comm_time(&self) -> f64 {
        self.per_proc.iter().map(|p| p.comm_time).sum()
    }

    /// The modelled execution time of the phase: the maximum over
    /// processors of communication plus computation time.
    pub fn critical_time(&self) -> f64 {
        self.per_proc
            .iter()
            .map(|p| p.total_time())
            .fold(0.0, f64::max)
    }

    /// Maximum over processors of the modelled compute time — used together
    /// with [`CommStats::avg_compute_time`] to quantify load imbalance in
    /// the PIC experiment (E3).
    pub fn max_compute_time(&self) -> f64 {
        self.per_proc
            .iter()
            .map(|p| p.compute_time)
            .fold(0.0, f64::max)
    }

    /// Mean over processors of the modelled compute time.
    pub fn avg_compute_time(&self) -> f64 {
        if self.per_proc.is_empty() {
            return 0.0;
        }
        self.total_compute_time() / self.per_proc.len() as f64
    }

    /// Load imbalance factor: max/avg compute time (1.0 = perfectly
    /// balanced).  Returns 1.0 when there is no compute at all.
    pub fn load_imbalance(&self) -> f64 {
        let avg = self.avg_compute_time();
        if avg == 0.0 {
            1.0
        } else {
            self.max_compute_time() / avg
        }
    }

    /// Modelled communication seconds hidden behind overlapped local work
    /// (summed over processors and waits).
    pub fn credited_overlap_seconds(&self) -> f64 {
        self.credited_overlap_seconds
    }

    /// Measured wall-clock overlap seconds reported by split-phase
    /// executions (zero on blocking paths).
    pub fn measured_overlap_seconds(&self) -> f64 {
        self.measured_overlap_seconds
    }

    /// Accumulates modelled overlap credit (non-positive values dropped).
    pub fn record_credited_overlap(&mut self, seconds: f64) {
        if seconds > 0.0 {
            self.credited_overlap_seconds += seconds;
        }
    }

    /// Accumulates measured wall-clock overlap (non-positive values
    /// dropped).
    pub fn record_measured_overlap(&mut self, seconds: f64) {
        if seconds > 0.0 {
            self.measured_overlap_seconds += seconds;
        }
    }

    /// Modelled message retransmissions performed by the recovery paths.
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Injected faults the execution stack acted upon.
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }

    /// Degraded-mode transitions taken.
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// Counts `n` modelled retransmissions.  This is the single choke
    /// point every recovery path funnels through, so the matching trace
    /// events equal the counter by construction ([`merge`](CommStats::merge)
    /// aggregates already-counted stats and does not re-emit).
    pub fn record_retries(&mut self, n: usize) {
        self.retries += n;
        crate::trace::instant_n(crate::trace::Phase::Retry, n);
    }

    /// Counts `n` injected faults acted upon.
    pub fn record_faults(&mut self, n: usize) {
        self.faults_injected += n;
        crate::trace::instant_n(crate::trace::Phase::Fault, n);
    }

    /// Counts `n` degraded-mode transitions.
    pub fn record_fallbacks(&mut self, n: usize) {
        self.fallbacks += n;
        crate::trace::instant_n(crate::trace::Phase::Fallback, n);
    }

    /// Messages actually carried over spmd channels (zero on
    /// shared-memory executors).
    pub fn channel_messages(&self) -> usize {
        self.channel_messages
    }

    /// Payload bytes actually carried over spmd channels (framing headers
    /// excluded).
    pub fn channel_bytes(&self) -> usize {
        self.channel_bytes
    }

    /// Counts one real channel message of `bytes` payload bytes.
    pub fn record_channel_message(&mut self, bytes: usize) {
        self.channel_messages += 1;
        self.channel_bytes += bytes;
    }

    /// Bytes written to checkpoint files so far.
    pub fn ckpt_bytes_written(&self) -> usize {
        self.ckpt_bytes_written
    }

    /// Bytes read back from checkpoint files so far.
    pub fn ckpt_bytes_read(&self) -> usize {
        self.ckpt_bytes_read
    }

    /// Counts `bytes` written to a checkpoint file, emitting a matching
    /// trace instant so the drift guard sees persistence traffic.
    pub fn record_ckpt_write(&mut self, bytes: usize) {
        self.ckpt_bytes_written += bytes;
        crate::trace::instant_n(crate::trace::Phase::CkptWrite, bytes);
    }

    /// Counts `bytes` read back from a checkpoint file.
    pub fn record_ckpt_read(&mut self, bytes: usize) {
        self.ckpt_bytes_read += bytes;
        crate::trace::instant_n(crate::trace::Phase::CkptRead, bytes);
    }

    /// Merges another statistics object (same processor count) into this
    /// one.
    pub fn merge(&mut self, other: &CommStats) {
        assert_eq!(
            self.per_proc.len(),
            other.per_proc.len(),
            "cannot merge statistics for different processor counts"
        );
        for (a, b) in self.per_proc.iter_mut().zip(other.per_proc.iter()) {
            *a += *b;
        }
        self.credited_overlap_seconds += other.credited_overlap_seconds;
        self.measured_overlap_seconds += other.measured_overlap_seconds;
        self.retries += other.retries;
        self.faults_injected += other.faults_injected;
        self.fallbacks += other.fallbacks;
        self.channel_messages += other.channel_messages;
        self.channel_bytes += other.channel_bytes;
        self.ckpt_bytes_written += other.ckpt_bytes_written;
        self.ckpt_bytes_read += other.ckpt_bytes_read;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        for p in &mut self.per_proc {
            *p = ProcStats::default();
        }
        self.credited_overlap_seconds = 0.0;
        self.measured_overlap_seconds = 0.0;
        self.retries = 0;
        self.faults_injected = 0;
        self.fallbacks = 0;
        self.channel_messages = 0;
        self.channel_bytes = 0;
        self.ckpt_bytes_written = 0;
        self.ckpt_bytes_read = 0;
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} msgs, {} bytes, comm {:.3e}s, compute {:.3e}s, critical {:.3e}s, imbalance {:.2}",
            self.total_messages(),
            self.total_bytes(),
            self.total_comm_time(),
            self.total_compute_time(),
            self.critical_time(),
            self.load_imbalance()
        )?;
        if self.measured_overlap_seconds > 0.0 || self.credited_overlap_seconds > 0.0 {
            write!(
                f,
                ", overlap {:.3e}s measured / {:.3e}s credited",
                self.measured_overlap_seconds, self.credited_overlap_seconds
            )?;
        }
        if self.channel_messages > 0 {
            write!(
                f,
                ", {} channel msgs ({} bytes on the wire)",
                self.channel_messages, self.channel_bytes
            )?;
        }
        if self.faults_injected > 0 || self.retries > 0 || self.fallbacks > 0 {
            write!(
                f,
                ", {} faults ({} retries, {} fallbacks)",
                self.faults_injected, self.retries, self.fallbacks
            )?;
        }
        if self.ckpt_bytes_written > 0 || self.ckpt_bytes_read > 0 {
            write!(
                f,
                ", ckpt {} bytes written / {} bytes read",
                self.ckpt_bytes_written, self.ckpt_bytes_read
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut s = CommStats::new(4);
        s.record_message(0, 1, 100, 2.0);
        s.record_message(1, 2, 50, 1.0);
        s.record_compute(3, 5.0);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.per_proc()[0].messages_sent, 1);
        assert_eq!(s.per_proc()[1].messages_received, 1);
        assert_eq!(s.per_proc()[1].messages_sent, 1);
        assert_eq!(s.per_proc()[2].bytes_received, 50);
        assert!((s.total_comm_time() - 6.0).abs() < 1e-12);
        assert!((s.critical_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn self_messages_are_free() {
        let mut s = CommStats::new(2);
        s.record_message(1, 1, 1000, 9.0);
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.critical_time(), 0.0);
    }

    #[test]
    fn load_imbalance() {
        let mut s = CommStats::new(4);
        for p in 0..4 {
            s.record_compute(p, 1.0);
        }
        assert!((s.load_imbalance() - 1.0).abs() < 1e-12);
        s.record_compute(0, 3.0);
        // max = 4, avg = 7/4 = 1.75 → imbalance ≈ 2.2857
        assert!((s.load_imbalance() - 4.0 / 1.75).abs() < 1e-12);
        let empty = CommStats::new(4);
        assert_eq!(empty.load_imbalance(), 1.0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = CommStats::new(2);
        let mut b = CommStats::new(2);
        a.record_message(0, 1, 10, 1.0);
        b.record_message(1, 0, 20, 2.0);
        a.merge(&b);
        assert_eq!(a.total_messages(), 2);
        assert_eq!(a.total_bytes(), 30);
        a.reset();
        assert_eq!(a.total_messages(), 0);
        assert_eq!(a.critical_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different processor counts")]
    fn merge_requires_same_size() {
        let mut a = CommStats::new(2);
        let b = CommStats::new(3);
        a.merge(&b);
    }

    #[test]
    fn overlap_counters_merge_and_reset() {
        let mut a = CommStats::new(2);
        a.record_credited_overlap(0.25);
        a.record_credited_overlap(-1.0); // dropped
        a.record_measured_overlap(0.5);
        a.record_measured_overlap(0.0); // dropped
        let mut b = CommStats::new(2);
        b.record_credited_overlap(0.75);
        a.merge(&b);
        assert!((a.credited_overlap_seconds() - 1.0).abs() < 1e-12);
        assert!((a.measured_overlap_seconds() - 0.5).abs() < 1e-12);
        a.reset();
        assert_eq!(a.credited_overlap_seconds(), 0.0);
        assert_eq!(a.measured_overlap_seconds(), 0.0);
    }

    #[test]
    fn display_summarises() {
        let mut s = CommStats::new(2);
        s.record_message(0, 1, 8, 0.5);
        let txt = s.to_string();
        assert!(txt.contains("1 msgs"));
        assert!(txt.contains("8 bytes"));
        assert!(!txt.contains("faults"), "fault-free display stays terse");
        assert!(
            !txt.contains("overlap"),
            "no overlap line before any split run"
        );
        s.record_measured_overlap(0.5);
        s.record_credited_overlap(0.25);
        assert!(s
            .to_string()
            .contains("overlap 5.000e-1s measured / 2.500e-1s credited"));
        s.record_faults(2);
        s.record_retries(3);
        assert!(s.to_string().contains("2 faults (3 retries, 0 fallbacks)"));
        // Retries alone (no injected fault acted on) must render too.
        let mut r = CommStats::new(2);
        r.record_retries(1);
        assert!(r.to_string().contains("0 faults (1 retries, 0 fallbacks)"));
    }

    #[test]
    fn ckpt_counters_merge_reset_and_display() {
        let mut a = CommStats::new(2);
        assert!(!a.to_string().contains("ckpt"), "zero counters stay terse");
        a.record_ckpt_write(100);
        a.record_ckpt_write(20);
        a.record_ckpt_read(60);
        let mut b = CommStats::new(2);
        b.record_ckpt_read(40);
        a.merge(&b);
        assert_eq!(a.ckpt_bytes_written(), 120);
        assert_eq!(a.ckpt_bytes_read(), 100);
        assert!(a
            .to_string()
            .contains("ckpt 120 bytes written / 100 bytes read"));
        a.reset();
        assert_eq!((a.ckpt_bytes_written(), a.ckpt_bytes_read()), (0, 0));
    }

    #[test]
    fn fault_counters_merge_and_reset() {
        let mut a = CommStats::new(2);
        a.record_retries(2);
        a.record_faults(1);
        a.record_fallbacks(1);
        let mut b = CommStats::new(2);
        b.record_retries(1);
        b.record_faults(4);
        a.merge(&b);
        assert_eq!(a.retries(), 3);
        assert_eq!(a.faults_injected(), 5);
        assert_eq!(a.fallbacks(), 1);
        a.reset();
        assert_eq!((a.retries(), a.faults_injected(), a.fallbacks()), (0, 0, 0));
    }
}
