//! Seeded, deterministic fault injection for the simulated machine.
//!
//! Real transports lose, delay and corrupt messages, and real worker
//! processes die; the modelled machine historically assumed none of that
//! ever happens.  This module provides the failure model the execution
//! stack is chaos-tested against before any distributed backend exists:
//! a [`FaultPlan`] describes *which* faults may occur (kinds, probability,
//! budget, backoff schedule) and a [`FaultInjector`] draws them from a
//! seeded PRNG so that every run under the same plan sees the identical
//! fault schedule.
//!
//! Determinism contract: the injector must only be polled from the
//! *submitting* (caller) thread of an operation — never from pool workers,
//! whose interleaving is nondeterministic.  All decision methods
//! ([`FaultInjector::transient_send`], [`FaultInjector::corrupt_wire`],
//! [`FaultInjector::worker_death`], …) are therefore called at well-defined
//! points of the caller's control flow: message post, wire pack, pool job
//! submission and translation-page fetch.  Effects that must surface on
//! worker threads (a corrupted buffer, a dying rank) are *armed* here and
//! carried into the job as plain data.
//!
//! Every fired fault is counted per kind, and the retries it forces are
//! accumulated, so tests can assert that the [`CommStats`](crate::CommStats)
//! counters recorded by the recovery paths exactly match the injected
//! schedule.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A posted message fails transiently and must be retransmitted with
    /// exponential backoff (also used for translation-page fetches).
    TransientSend,
    /// A posted message is delivered late: extra modelled latency on one
    /// message of the batch.
    DelayedDelivery,
    /// One element of a fused wire buffer arrives with a flipped bit; the
    /// frame checksum must detect it and force a retransmission.
    CorruptWire,
    /// A pool worker dies: the executor must degrade (pooled →
    /// fresh-spawn → serial) and streaming unpack must recover the dead
    /// rank's abandoned items.
    WorkerDeath,
    /// A split-phase handle is cancelled before streaming can be made
    /// safe: the exchange falls back to blocking unpack.
    CancelHandle,
    /// A whole rank dies mid-region: its channel endpoints drop and the
    /// surviving ranks must surface a structured error instead of hanging.
    /// Unlike the other kinds this is *not* transparently recoverable
    /// in-exchange — recovery happens at the driver level by restoring a
    /// checkpoint — so it is opt-in and never part of the default plan.
    RankDeath,
}

impl FaultKind {
    /// All fault kinds, in a fixed order (the per-kind counter index).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TransientSend,
        FaultKind::DelayedDelivery,
        FaultKind::CorruptWire,
        FaultKind::WorkerDeath,
        FaultKind::CancelHandle,
        FaultKind::RankDeath,
    ];

    /// The kinds the recovery paths absorb without driver intervention —
    /// the default set for [`FaultPlan::new`].
    pub const RECOVERABLE: [FaultKind; 5] = [
        FaultKind::TransientSend,
        FaultKind::DelayedDelivery,
        FaultKind::CorruptWire,
        FaultKind::WorkerDeath,
        FaultKind::CancelHandle,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::TransientSend => 0,
            FaultKind::DelayedDelivery => 1,
            FaultKind::CorruptWire => 2,
            FaultKind::WorkerDeath => 3,
            FaultKind::CancelHandle => 4,
            FaultKind::RankDeath => 5,
        }
    }
}

/// A declarative, serialisable description of the faults to inject.
///
/// Attach a plan to a [`Machine`](crate::Machine) with
/// [`Machine::with_fault_plan`](crate::Machine::with_fault_plan); every
/// tracker the machine creates then carries a freshly seeded
/// [`FaultInjector`], so repeated runs of the same program see the same
/// fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// PRNG seed — same seed, same plan ⇒ same fault schedule.
    pub seed: u64,
    /// Per-poll probability in `[0, 1]` that an enabled fault fires.
    pub rate: f64,
    /// The fault kinds that may fire (others are never drawn).
    pub kinds: Vec<FaultKind>,
    /// Upper bound on the total number of faults injected (keeps chaos
    /// runs terminating with bounded retries).
    pub max_faults: usize,
    /// Base of the modelled exponential backoff charged per retry
    /// (seconds; retry `k` waits `base · 2^k`).
    pub backoff_base_seconds: f64,
    /// Maximum send attempts for a transiently failing message (the
    /// original plus up to `max_attempts - 1` retries).
    pub max_attempts: usize,
}

impl FaultPlan {
    /// A plan with every transparently recoverable fault kind enabled at
    /// a moderate rate.  [`FaultKind::RankDeath`] is opt-in via
    /// [`FaultPlan::with_kinds`] because it needs a driver-level restart.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rate: 0.05,
            kinds: FaultKind::RECOVERABLE.to_vec(),
            max_faults: 64,
            backoff_base_seconds: 5e-4,
            max_attempts: 4,
        }
    }

    /// Sets the per-poll fault probability (clamped to `[0, 1]`).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Restricts the plan to the given fault kinds.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets the total fault budget.
    pub fn with_max_faults(mut self, max_faults: usize) -> Self {
        self.max_faults = max_faults;
        self
    }

    /// Sets the backoff base and the maximum attempts per message.
    pub fn with_backoff(mut self, base_seconds: f64, max_attempts: usize) -> Self {
        self.backoff_base_seconds = base_seconds.max(0.0);
        self.max_attempts = max_attempts.max(2);
        self
    }

    /// Builds a plan from `VF_FAULT_SEED` / `VF_FAULT_RATE`.
    ///
    /// `VF_FAULT_SEED=<u64>` enables injection with the default plan at
    /// that seed; `VF_FAULT_RATE=<f64>` optionally overrides the rate.
    /// Unparseable values are ignored with a warning, mirroring
    /// `VF_EXEC_CUTOFF`.  Returns `None` when `VF_FAULT_SEED` is unset.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("VF_FAULT_SEED").ok()?;
        let seed = match raw.trim().parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("vf-machine: ignoring unparseable VF_FAULT_SEED={raw:?}");
                return None;
            }
        };
        let mut plan = Self::new(seed);
        if let Ok(raw) = std::env::var("VF_FAULT_RATE") {
            match raw.trim().parse::<f64>() {
                Ok(rate) if (0.0..=1.0).contains(&rate) => plan.rate = rate,
                _ => eprintln!("vf-machine: ignoring unparseable VF_FAULT_RATE={raw:?}"),
            }
        }
        Some(plan)
    }

    /// Total modelled backoff for `attempts` retries: `Σ base · 2^k` for
    /// `k` in `0..attempts` — bounded because attempts are bounded by
    /// [`FaultPlan::max_attempts`].
    pub fn backoff_seconds(&self, attempts: usize) -> f64 {
        let attempts = attempts.min(self.max_attempts) as u32;
        self.backoff_base_seconds * (2f64.powi(attempts as i32) - 1.0)
    }
}

/// Where a corrupted wire element lands: seeds the executor maps onto its
/// own pair/element counts, plus the bit to flip.
///
/// The spec is drawn on the caller thread at pack time; the executor
/// resolves `pair_seed % num_crossing_pairs` and `elem_seed % pair_len`
/// itself because only it knows those counts.
#[derive(Debug, Clone, Copy)]
pub struct CorruptSpec {
    /// Seed selecting which crossing pair's wire buffer is corrupted.
    pub pair_seed: u64,
    /// Seed selecting which element of that buffer is corrupted.
    pub elem_seed: u64,
    /// Which stored bit of the element to flip (taken modulo the element
    /// width).
    pub bit: u32,
}

/// The armed form of a [`FaultKind::RankDeath`]: which rank dies and how
/// many channel operations it completes first.
///
/// Drawn on the caller thread before a region launches (honouring the
/// caller-thread-only polling contract) and carried into the SPMD region
/// as plain data; the victim's context decrements the fuse on every
/// channel operation and drops dead when it reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDeathSpec {
    /// The rank whose channel endpoints are dropped.  Never rank 0, which
    /// carries the charging/settling duties of a region.
    pub victim: usize,
    /// Number of channel operations the victim completes before dying.
    pub after_ops: usize,
}

/// A seeded fault source shared by every layer of one tracker's execution
/// stack.
///
/// Cheap to share (`Arc`); all PRNG draws go through one mutex so the
/// schedule is a single deterministic sequence.  See the module docs for
/// the caller-thread-only polling contract.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<SmallRng>,
    fired: [AtomicUsize; 6],
    retries_caused: AtomicUsize,
    dead_workers: AtomicUsize,
}

impl FaultInjector {
    /// Creates an injector executing `plan` from its seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng: Mutex::new(rng),
            fired: Default::default(),
            retries_caused: AtomicUsize::new(0),
            dead_workers: AtomicUsize::new(0),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rolls for one enabled fault kind; counts it when it fires.
    fn roll(&self, kind: FaultKind) -> bool {
        if !self.plan.kinds.contains(&kind) || self.faults_injected() >= self.plan.max_faults {
            return false;
        }
        let hit = self.rng.lock().gen_range(0.0..1.0) < self.plan.rate;
        if hit {
            self.fired[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Polls for a transient send failure (message post and
    /// translation-page fetch injection points).  Returns the number of
    /// retries (1 to `max_attempts - 1`) the affected message needs; the
    /// caller charges them plus [`FaultPlan::backoff_seconds`].
    pub fn transient_send(&self) -> Option<usize> {
        if !self.roll(FaultKind::TransientSend) {
            return None;
        }
        let attempts = self.rng.lock().gen_range(1usize..self.plan.max_attempts);
        self.retries_caused.fetch_add(attempts, Ordering::Relaxed);
        Some(attempts)
    }

    /// Polls for a delayed delivery; returns the extra modelled seconds to
    /// add to one message of the posted batch.
    pub fn delayed_delivery(&self) -> Option<f64> {
        if !self.roll(FaultKind::DelayedDelivery) {
            return None;
        }
        let scale = self.rng.lock().gen_range(1.0..8.0);
        Some(scale * self.plan.backoff_base_seconds)
    }

    /// Polls for a wire-buffer corruption (pack-time injection point).
    /// One detected corruption forces exactly one modelled retransmission,
    /// which is pre-counted here.
    pub fn corrupt_wire(&self) -> Option<CorruptSpec> {
        if !self.roll(FaultKind::CorruptWire) {
            return None;
        }
        let mut rng = self.rng.lock();
        let spec = CorruptSpec {
            pair_seed: rng.next_u64(),
            elem_seed: rng.next_u64(),
            bit: rng.gen_range(0usize..64) as u32,
        };
        drop(rng);
        self.retries_caused.fetch_add(1, Ordering::Relaxed);
        Some(spec)
    }

    /// Polls for a worker death (pool job submission injection point).
    /// The caller is expected to [`FaultInjector::mark_worker_dead`] and
    /// degrade.
    pub fn worker_death(&self) -> bool {
        self.roll(FaultKind::WorkerDeath)
    }

    /// Polls for a handle cancellation at split-phase post: streaming is
    /// declared unsafe and the exchange must fall back to blocking unpack.
    pub fn cancel_streaming(&self) -> bool {
        self.roll(FaultKind::CancelHandle)
    }

    /// Polls for a rank death at region launch (caller-thread injection
    /// point).  Returns the armed spec — victim drawn from `1..num_ranks`
    /// (rank 0 is the charging rank and never dies) plus a small
    /// operation fuse — or `None` when the kind is disabled, the budget
    /// is spent, or there is no killable rank (`num_ranks < 2`).
    pub fn rank_death(&self, num_ranks: usize) -> Option<RankDeathSpec> {
        if num_ranks < 2 || !self.roll(FaultKind::RankDeath) {
            return None;
        }
        let mut rng = self.rng.lock();
        let victim = rng.gen_range(1..num_ranks);
        let after_ops = rng.gen_range(0usize..8);
        Some(RankDeathSpec { victim, after_ops })
    }

    /// Deterministically picks a victim index in `0..n` (`n > 0`).
    pub fn pick(&self, n: usize) -> usize {
        self.rng.lock().gen_range(0..n)
    }

    /// Marks one pool worker as dead; subsequent dispatches see a reduced
    /// healthy-worker count and degrade accordingly.  Dead-worker marks
    /// live here (not on the shared pool) so one chaos run cannot degrade
    /// unrelated executions.
    pub fn mark_worker_dead(&self) {
        self.dead_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of workers currently marked dead.
    pub fn dead_workers(&self) -> usize {
        self.dead_workers.load(Ordering::Relaxed)
    }

    /// Clears the dead-worker marks (a "restarted" pool; test aid).
    pub fn revive_workers(&self) {
        self.dead_workers.store(0, Ordering::Relaxed);
    }

    /// How many faults of `kind` have fired so far.
    pub fn fired_of(&self, kind: FaultKind) -> usize {
        self.fired[kind.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all kinds.
    pub fn faults_injected(&self) -> usize {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total retries the fired faults force on the recovery paths — the
    /// value the `CommStats` `retries` counter must end up at.
    pub fn expected_retries(&self) -> usize {
        self.retries_caused.load(Ordering::Relaxed)
    }

    /// Total degradations the fired faults force (worker deaths plus
    /// cancelled handles) — the value the `CommStats` `fallbacks` counter
    /// must end up at.
    pub fn expected_fallbacks(&self) -> usize {
        self.fired_of(FaultKind::WorkerDeath) + self.fired_of(FaultKind::CancelHandle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultInjector::new(FaultPlan::new(7).with_rate(0.5));
        let b = FaultInjector::new(FaultPlan::new(7).with_rate(0.5));
        for _ in 0..200 {
            assert_eq!(a.transient_send(), b.transient_send());
            assert_eq!(a.worker_death(), b.worker_death());
            assert_eq!(a.delayed_delivery(), b.delayed_delivery());
        }
        assert_eq!(a.faults_injected(), b.faults_injected());
        assert_eq!(a.expected_retries(), b.expected_retries());
        assert!(a.faults_injected() > 0, "rate 0.5 over 600 polls must fire");
    }

    #[test]
    fn disabled_kinds_never_fire() {
        let inj = FaultInjector::new(
            FaultPlan::new(3)
                .with_rate(1.0)
                .with_kinds(&[FaultKind::CorruptWire]),
        );
        assert!(inj.transient_send().is_none());
        assert!(!inj.worker_death());
        assert!(!inj.cancel_streaming());
        assert!(inj.delayed_delivery().is_none());
        assert!(inj.corrupt_wire().is_some());
        assert_eq!(inj.fired_of(FaultKind::CorruptWire), 1);
        assert_eq!(inj.faults_injected(), 1);
        assert_eq!(inj.expected_retries(), 1);
    }

    #[test]
    fn budget_bounds_total_faults() {
        let inj = FaultInjector::new(FaultPlan::new(1).with_rate(1.0).with_max_faults(3));
        for _ in 0..50 {
            let _ = inj.transient_send();
        }
        assert_eq!(inj.faults_injected(), 3);
    }

    #[test]
    fn transient_attempts_are_bounded() {
        let plan = FaultPlan::new(9)
            .with_rate(1.0)
            .with_max_faults(1000)
            .with_backoff(1e-3, 5);
        let inj = FaultInjector::new(plan.clone());
        for _ in 0..100 {
            let attempts = inj.transient_send().expect("rate 1.0 always fires");
            assert!((1..plan.max_attempts).contains(&attempts));
        }
        // Backoff grows geometrically and is monotone in attempts.
        assert!(plan.backoff_seconds(1) > 0.0);
        assert!(plan.backoff_seconds(3) > plan.backoff_seconds(2));
        assert!((plan.backoff_seconds(2) - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_is_silent() {
        let inj = FaultInjector::new(FaultPlan::new(5).with_rate(0.0));
        for _ in 0..100 {
            assert!(inj.transient_send().is_none());
            assert!(inj.corrupt_wire().is_none());
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.expected_retries(), 0);
        assert_eq!(inj.expected_fallbacks(), 0);
    }

    #[test]
    fn dead_worker_marks_accumulate_and_revive() {
        let inj = FaultInjector::new(FaultPlan::new(2));
        assert_eq!(inj.dead_workers(), 0);
        inj.mark_worker_dead();
        inj.mark_worker_dead();
        assert_eq!(inj.dead_workers(), 2);
        inj.revive_workers();
        assert_eq!(inj.dead_workers(), 0);
    }

    #[test]
    fn expected_fallbacks_counts_deaths_and_cancels() {
        let inj = FaultInjector::new(
            FaultPlan::new(11)
                .with_rate(1.0)
                .with_kinds(&[FaultKind::WorkerDeath, FaultKind::CancelHandle]),
        );
        assert!(inj.worker_death());
        assert!(inj.cancel_streaming());
        assert_eq!(inj.expected_fallbacks(), 2);
    }

    #[test]
    fn pick_is_in_range() {
        let inj = FaultInjector::new(FaultPlan::new(4));
        for n in 1..20 {
            assert!(inj.pick(n) < n);
        }
    }

    #[test]
    fn rank_death_is_opt_in_and_spares_rank_zero() {
        // The default plan never draws a rank death — and because roll()
        // returns before touching the RNG for disabled kinds, adding the
        // kind must not shift the schedule of a pre-existing seeded plan.
        let default = FaultInjector::new(FaultPlan::new(7).with_rate(1.0));
        assert!(default.rank_death(8).is_none());
        assert_eq!(default.fired_of(FaultKind::RankDeath), 0);

        let inj = FaultInjector::new(
            FaultPlan::new(13)
                .with_rate(1.0)
                .with_kinds(&[FaultKind::RankDeath]),
        );
        // No killable rank when fewer than two ranks exist.
        assert!(inj.rank_death(1).is_none());
        assert_eq!(inj.fired_of(FaultKind::RankDeath), 0);
        for _ in 0..32 {
            let spec = inj.rank_death(4).expect("rate 1.0 always fires");
            assert!((1..4).contains(&spec.victim), "victim must not be rank 0");
            assert!(spec.after_ops < 8);
        }
        assert_eq!(inj.fired_of(FaultKind::RankDeath), 32);
    }

    #[test]
    fn rank_death_schedule_is_deterministic() {
        let plan = FaultPlan::new(21)
            .with_rate(0.5)
            .with_kinds(&[FaultKind::RankDeath]);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..100 {
            assert_eq!(a.rank_death(6), b.rank_death(6));
        }
    }

    #[test]
    fn plan_builders_clamp() {
        let plan = FaultPlan::new(42).with_rate(3.0).with_backoff(-1.0, 0);
        assert_eq!(plan.rate, 1.0);
        assert_eq!(plan.backoff_base_seconds, 0.0);
        assert_eq!(plan.max_attempts, 2);
        assert_eq!(plan.backoff_seconds(5), 0.0);
    }
}
