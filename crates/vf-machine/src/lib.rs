//! A simulated distributed-memory machine for the Vienna Fortran
//! reproduction.
//!
//! The paper evaluates dynamic data distributions in terms of the messages
//! a distributed-memory machine must exchange: each message costs a fixed
//! *startup* overhead plus a *per-byte* transfer cost, and the best
//! distribution of an array depends on the resulting counts and sizes
//! (paper §4: "given the startup overhead and cost per byte of each message
//! of the target machine, the ratio N/p will determine the most appropriate
//! distribution").
//!
//! Because the original iPSC-class hardware (and an MPI binding) is not
//! available here, this crate provides a faithful *simulation substrate*:
//!
//! * [`CostModel`] — the linear α + β·bytes message cost model with a
//!   per-element compute cost and optional per-hop topology term,
//! * [`Topology`] — crossbar, ring and 2-D mesh hop counts,
//! * [`CommStats`] / [`CommTracker`] — full accounting of messages, bytes,
//!   communication time and compute time, per processor and in aggregate;
//!   all runtime operations (ghost exchange, redistribution, irregular
//!   gather/scatter) report their traffic here,
//! * [`Machine`] — the processor count plus cost model used by the runtime,
//! * [`spmd`] — a thread-backed SPMD executor (one OS thread per simulated
//!   processor, private state, explicit message passing over channels) used
//!   to demonstrate that the owner-computes execution really parallelises.
//!
//! The *shape* of every experiment in `EXPERIMENTS.md` (who wins, where the
//! crossover falls) is driven by the modelled cost; wall-clock time of the
//! simulation itself is not the reproduction target.

// `deny` rather than `forbid`: the persistent worker pool ([`pool`]) needs
// one well-documented lifetime erasure for its scoped job handoff; every
// other module remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cost;
pub mod fault;
mod machine;
pub mod pool;
pub mod spmd;
mod stats;
mod topology;
pub mod trace;
mod tracker;

pub use cost::CostModel;
pub use fault::{CorruptSpec, FaultInjector, FaultKind, FaultPlan, RankDeathSpec};
pub use machine::Machine;
pub use pool::{JobTicket, WorkerCtx, WorkerPool};
pub use spmd::{SpmdError, WireFrameMsg};
pub use stats::{CommStats, ProcStats};
pub use topology::Topology;
pub use trace::{DriftReport, MetricsReport, Phase, TraceSnapshot};
pub use tracker::{CollectiveKind, CommTracker, PendingSends};
