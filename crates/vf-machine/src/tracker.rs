//! Shared communication tracker used by the master-managed runtime.

use crate::fault::FaultInjector;
use crate::{CommStats, CostModel};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The kind of a collective operation, used for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Synchronisation barrier (payload-free tree exchange).
    Barrier,
    /// Reduction to a single root (tree).
    Reduce,
    /// Reduction followed by a broadcast (two trees).
    AllReduce,
    /// Broadcast from a root (tree).
    Broadcast,
}

/// A batch of *posted* (initiated but not yet completed) point-to-point
/// messages, returned by [`CommTracker::post_many`].
///
/// Posting computes the modelled duration of every message under the cost
/// model but records nothing; the batch is charged when it is passed to
/// [`CommTracker::wait`].  This split mirrors non-blocking communication on
/// a real machine: an executor posts its sends, performs the local copy
/// work of the transfer, and waits for completion — any local work done
/// between post and wait can be credited as overlap at the wait.
#[derive(Debug)]
#[must_use = "posted messages are only charged when passed to CommTracker::wait"]
pub struct PendingSends {
    /// `(src, dst, bytes, modelled_time)` per message.
    messages: Vec<(usize, usize, usize, f64)>,
}

impl PendingSends {
    /// Number of posted messages (messages to self excluded — they are
    /// free, as in [`CommTracker::send`]).
    pub fn num_messages(&self) -> usize {
        self.messages.iter().filter(|m| m.0 != m.1).count()
    }

    /// Total posted bytes (messages to self excluded).
    pub fn total_bytes(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.0 != m.1)
            .map(|m| m.2)
            .sum()
    }
}

/// A thread-safe accumulator of communication and computation events,
/// evaluated against a [`CostModel`].
///
/// The Vienna Fortran Engine's runtime operations (ghost-area exchange,
/// `DISTRIBUTE` data motion, inspector/executor gathers, reductions) report
/// every simulated message here; the experiment harness then reads the
/// resulting [`CommStats`].  The tracker is cheaply cloneable (an `Arc`
/// around a mutex-protected interior) so that the runtime, applications and
/// benches can all hold handles to the same accounting state.
#[derive(Debug, Clone)]
pub struct CommTracker {
    cost: CostModel,
    stats: Arc<Mutex<CommStats>>,
    injector: Option<Arc<FaultInjector>>,
}

impl CommTracker {
    /// Creates a tracker for `num_procs` processors under `cost`.
    pub fn new(num_procs: usize, cost: CostModel) -> Self {
        Self {
            cost,
            stats: Arc::new(Mutex::new(CommStats::new(num_procs))),
            injector: None,
        }
    }

    /// Attaches a [`FaultInjector`]: posted batches and page fetches may
    /// then suffer injected transient failures and delays, and the
    /// executors holding this tracker poll the injector for corruption,
    /// worker-death and cancellation faults.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of processors being tracked.
    pub fn num_procs(&self) -> usize {
        self.stats.lock().num_procs()
    }

    /// Records a point-to-point message of `bytes` bytes from `src` to
    /// `dst`; messages to self are free.
    pub fn send(&self, src: usize, dst: usize, bytes: usize) {
        if src == dst {
            return;
        }
        let t = self.cost.message_time_between(bytes, src, dst);
        self.stats.lock().record_message(src, dst, bytes, t);
    }

    /// Counts one message of `bytes` payload bytes *actually carried* over
    /// an spmd channel.  This is the real-traffic side of the modelled
    /// ledger: shared-memory executors never call it, the sharded backend
    /// calls it once per wire send, and differential tests assert the two
    /// sides agree (`channel_bytes == modelled wire bytes`).
    pub fn record_channel_message(&self, bytes: usize) {
        self.stats.lock().record_channel_message(bytes);
    }

    /// Counts `bytes` written to a checkpoint file (segments plus manifest
    /// framing) — the persistence side of the traffic ledger.
    pub fn record_ckpt_write(&self, bytes: usize) {
        self.stats.lock().record_ckpt_write(bytes);
    }

    /// Counts `bytes` read back from a checkpoint file during restore.
    pub fn record_ckpt_read(&self, bytes: usize) {
        self.stats.lock().record_ckpt_read(bytes);
    }

    /// Records a batch of point-to-point messages `(src, dst, bytes)` under
    /// a single lock acquisition — the aggregated charge a communication
    /// plan makes after executing all of its transfers.  Messages to self
    /// are free, as in [`CommTracker::send`].
    pub fn send_many<I>(&self, messages: I)
    where
        I: IntoIterator<Item = (usize, usize, usize)>,
    {
        let mut stats = self.stats.lock();
        for (src, dst, bytes) in messages {
            if src == dst {
                continue;
            }
            let t = self.cost.message_time_between(bytes, src, dst);
            stats.record_message(src, dst, bytes, t);
        }
    }

    /// Posts a batch of point-to-point messages `(src, dst, bytes)` without
    /// recording them: the modelled duration of each message is computed
    /// now (against the current cost model), the charge happens when the
    /// returned [`PendingSends`] is passed to [`CommTracker::wait`].
    ///
    /// `post_many` + `wait(.., 0.0)` charges exactly what
    /// [`CommTracker::send_many`] charges for the same batch.
    /// With a fault injector attached, posting is also the *message post*
    /// injection point: a transient send failure adds the modelled
    /// retransmissions plus exponential backoff to one message's duration
    /// (and counts the retries), a delayed delivery adds extra latency.
    /// Message and byte counts stay those of the logical batch.
    pub fn post_many<I>(&self, messages: I) -> PendingSends
    where
        I: IntoIterator<Item = (usize, usize, usize)>,
    {
        let mut messages: Vec<_> = messages
            .into_iter()
            .map(|(src, dst, bytes)| {
                (
                    src,
                    dst,
                    bytes,
                    self.cost.message_time_between(bytes, src, dst),
                )
            })
            .collect();
        if let Some(inj) = &self.injector {
            self.inject_post_faults(inj, &mut messages);
        }
        PendingSends { messages }
    }

    /// Applies message-post faults to a freshly posted batch (self
    /// messages are never victims — they are free and carry no wire).
    fn inject_post_faults(&self, inj: &FaultInjector, messages: &mut [(usize, usize, usize, f64)]) {
        let crossing: Vec<usize> = messages
            .iter()
            .enumerate()
            .filter(|(_, m)| m.0 != m.1)
            .map(|(i, _)| i)
            .collect();
        if crossing.is_empty() {
            return;
        }
        let mut faults = 0;
        let mut retries = 0;
        if let Some(attempts) = inj.transient_send() {
            let k = crossing[inj.pick(crossing.len())];
            let base = messages[k].3;
            messages[k].3 += attempts as f64 * base + inj.plan().backoff_seconds(attempts);
            faults += 1;
            retries += attempts;
        }
        if let Some(delay) = inj.delayed_delivery() {
            let k = crossing[inj.pick(crossing.len())];
            messages[k].3 += delay;
            faults += 1;
        }
        if faults > 0 {
            let mut stats = self.stats.lock();
            stats.record_faults(faults);
            stats.record_retries(retries);
        }
    }

    /// [`CommTracker::send_many`] for translation-page fetches — the
    /// *page fetch* injection point.  With an injector attached, one fetch
    /// of the batch may fail transiently: its modelled retransmissions
    /// plus backoff are charged to both endpoints and the retries
    /// counted.
    pub fn send_page_fetches<I>(&self, messages: I)
    where
        I: IntoIterator<Item = (usize, usize, usize)>,
    {
        let messages: Vec<_> = messages.into_iter().collect();
        crate::trace::instant_n(
            crate::trace::Phase::PageFetch,
            messages.iter().filter(|m| m.0 != m.1).count(),
        );
        let fault = self.injector.as_ref().and_then(|inj| {
            let crossing: Vec<usize> = messages
                .iter()
                .enumerate()
                .filter(|(_, m)| m.0 != m.1)
                .map(|(i, _)| i)
                .collect();
            if crossing.is_empty() {
                return None;
            }
            inj.transient_send().map(|attempts| {
                (
                    crossing[inj.pick(crossing.len())],
                    attempts,
                    inj.plan().backoff_seconds(attempts),
                )
            })
        });
        let mut stats = self.stats.lock();
        for (i, &(src, dst, bytes)) in messages.iter().enumerate() {
            if src == dst {
                continue;
            }
            let t = self.cost.message_time_between(bytes, src, dst);
            stats.record_message(src, dst, bytes, t);
            if let Some((k, attempts, backoff)) = fault {
                if k == i {
                    let extra = attempts as f64 * t + backoff;
                    stats.proc_mut(src).comm_time += extra;
                    stats.proc_mut(dst).comm_time += extra;
                }
            }
        }
        if let Some((_, attempts, _)) = fault {
            stats.record_faults(1);
            stats.record_retries(attempts);
        }
    }

    /// Charges `attempts` modelled retransmissions of a `(src → dst,
    /// bytes)` message plus exponential backoff as communication time on
    /// both endpoints, and counts the retries — what the wire executors
    /// charge when a frame checksum detects corruption and the payload is
    /// resent.
    pub fn charge_retransmissions(&self, src: usize, dst: usize, bytes: usize, attempts: usize) {
        if attempts == 0 || src == dst {
            return;
        }
        let backoff = self
            .injector
            .as_ref()
            .map(|i| i.plan().backoff_seconds(attempts))
            .unwrap_or(0.0);
        let t = attempts as f64 * self.cost.message_time_between(bytes, src, dst) + backoff;
        let mut stats = self.stats.lock();
        stats.proc_mut(src).comm_time += t;
        stats.proc_mut(dst).comm_time += t;
        stats.record_retries(attempts);
    }

    /// Counts one injected fault acted upon by the execution stack.
    pub fn record_fault(&self) {
        self.stats.lock().record_faults(1);
    }

    /// Counts one degraded-mode transition (pooled → fresh-spawn/serial,
    /// split-phase → blocking).
    pub fn record_fallback(&self) {
        self.stats.lock().record_fallbacks(1);
    }

    /// Flushes fault counters accumulated off-thread (e.g. by streaming
    /// unpack workers) into the statistics in one lock acquisition.
    pub fn record_fault_counters(&self, faults: usize, retries: usize, fallbacks: usize) {
        if faults == 0 && retries == 0 && fallbacks == 0 {
            return;
        }
        let mut stats = self.stats.lock();
        stats.record_faults(faults);
        stats.record_retries(retries);
        stats.record_fallbacks(fallbacks);
    }

    /// Completes a posted batch: message and byte counts are recorded in
    /// full, and each processor's communication time is charged only for
    /// the portion not hidden behind `overlap_seconds` of local work
    /// performed between the post and the wait (the overlap credit is
    /// applied per processor, not per message).  Messages to self are
    /// free, as everywhere else.
    pub fn wait(&self, pending: PendingSends, overlap_seconds: f64) {
        self.wait_with(pending, |_| overlap_seconds)
    }

    /// [`CommTracker::wait`] with a *per-processor* overlap credit:
    /// `overlap[p]` seconds of local work performed by processor `p`
    /// between the post and the wait (processors beyond the slice get no
    /// credit).  The executors use this to credit each destination's copy
    /// (packing) time against its own communication, the way non-blocking
    /// receives hide transfer time behind unpacking on a real machine.
    pub fn wait_overlapped(&self, pending: PendingSends, overlap: &[f64]) {
        self.wait_with(pending, |p| overlap.get(p).copied().unwrap_or(0.0))
    }

    fn wait_with(&self, pending: PendingSends, overlap_of: impl Fn(usize) -> f64) {
        let mut stats = self.stats.lock();
        let mut per_proc_time = vec![0.0f64; stats.num_procs()];
        for (src, dst, bytes, t) in pending.messages {
            if src == dst {
                continue;
            }
            let s = stats.proc_mut(src);
            s.messages_sent += 1;
            s.bytes_sent += bytes;
            let d = stats.proc_mut(dst);
            d.messages_received += 1;
            d.bytes_received += bytes;
            per_proc_time[src] += t;
            per_proc_time[dst] += t;
        }
        let mut credited = 0.0;
        for (p, t) in per_proc_time.into_iter().enumerate() {
            if t > 0.0 {
                let overlap = overlap_of(p);
                stats.proc_mut(p).comm_time += (t - overlap).max(0.0);
                credited += t.min(overlap.max(0.0));
            }
        }
        stats.record_credited_overlap(credited);
    }

    /// Records `seconds` of *measured* wall-clock compute/communication
    /// overlap — real time unpack workers were busy between a split-phase
    /// post and its wait.  This is the measurement the modelled overlap
    /// credit (accumulated by the waits) is validated against; blocking
    /// paths never report any.
    pub fn record_measured_overlap(&self, seconds: f64) {
        self.stats.lock().record_measured_overlap(seconds);
    }

    /// Records `flops` floating-point operations on `proc`.
    pub fn compute(&self, proc: usize, flops: usize) {
        if flops == 0 {
            return;
        }
        let t = self.cost.compute_time(flops);
        self.stats.lock().record_compute(proc, t);
    }

    /// Records `seconds` of local (non-flop) work on `proc` — memory
    /// copies, packing, directory maintenance.  Zero-duration charges are
    /// dropped.
    pub fn compute_seconds(&self, proc: usize, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        self.stats.lock().record_compute(proc, seconds);
    }

    /// Records a collective operation over all processors with per-stage
    /// payload `bytes`; the modelled cost is charged as communication time
    /// to every participant (log₂ P stages of one message each).
    pub fn collective(&self, kind: CollectiveKind, bytes: usize) {
        let mut stats = self.stats.lock();
        let n = stats.num_procs();
        if n <= 1 {
            return;
        }
        let stages = match kind {
            CollectiveKind::AllReduce => 2.0,
            _ => 1.0,
        } * (n as f64).log2().ceil();
        let per_proc_time = stages * self.cost.message_time(bytes);
        let per_proc_msgs = stages as usize;
        for p in 0..n {
            let s = stats.proc_mut(p);
            s.messages_sent += per_proc_msgs;
            s.messages_received += per_proc_msgs;
            s.bytes_sent += per_proc_msgs * bytes;
            s.bytes_received += per_proc_msgs * bytes;
            s.comm_time += per_proc_time;
        }
    }

    /// A snapshot of the accumulated statistics.
    pub fn snapshot(&self) -> CommStats {
        self.stats.lock().clone()
    }

    /// Resets the accumulated statistics to zero and returns the previous
    /// values — convenient for per-phase accounting.
    pub fn take(&self) -> CommStats {
        let mut stats = self.stats.lock();
        let out = stats.clone();
        stats.reset();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates_messages() {
        let t = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        t.send(0, 1, 10);
        t.send(0, 0, 10); // free
        t.send(2, 3, 4);
        let s = t.snapshot();
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 14);
        assert!((s.per_proc()[0].comm_time - 6.0).abs() < 1e-12);
    }

    #[test]
    fn send_many_matches_individual_sends() {
        let batch = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let single = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let messages = [(0usize, 1usize, 10usize), (2, 3, 4), (1, 1, 99), (3, 0, 7)];
        batch.send_many(messages);
        for (s, d, b) in messages {
            single.send(s, d, b);
        }
        assert_eq!(batch.snapshot(), single.snapshot());
        assert_eq!(batch.snapshot().total_messages(), 3); // self-send is free
    }

    #[test]
    fn post_wait_without_overlap_matches_send_many() {
        let posted = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let direct = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let messages = [(0usize, 1usize, 10usize), (2, 3, 4), (1, 1, 99), (3, 0, 7)];
        let pending = posted.post_many(messages);
        assert_eq!(pending.num_messages(), 3);
        assert_eq!(pending.total_bytes(), 21);
        // Nothing is recorded until the wait.
        assert_eq!(posted.snapshot().total_messages(), 0);
        posted.wait(pending, 0.0);
        direct.send_many(messages);
        assert_eq!(posted.snapshot(), direct.snapshot());
    }

    #[test]
    fn wait_overlap_hides_communication_behind_local_work() {
        let t = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0));
        let pending = t.post_many([(0usize, 1usize, 8usize)]);
        // One message of modelled time 1.0 on each endpoint; half of it is
        // hidden behind 0.5 s of overlapped local work.
        t.wait(pending, 0.5);
        let s = t.snapshot();
        assert_eq!(s.total_messages(), 1);
        assert_eq!(s.total_bytes(), 8);
        assert!((s.per_proc()[0].comm_time - 0.5).abs() < 1e-12);
        assert!((s.per_proc()[1].comm_time - 0.5).abs() < 1e-12);
        // Overlap can hide communication entirely, but never goes negative.
        let pending = t.post_many([(1usize, 0usize, 8usize)]);
        t.wait(pending, 10.0);
        let s = t.snapshot();
        assert_eq!(s.total_messages(), 2);
        assert!((s.per_proc()[0].comm_time - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_proc_overlap_credits_each_endpoint_separately() {
        let t = CommTracker::new(3, CostModel::from_alpha_beta(1.0, 0.0));
        let pending = t.post_many([(0usize, 1usize, 8usize), (0, 2, 8)]);
        // P0 posted two messages (2.0 s), P1 and P2 one each (1.0 s).  P1
        // overlapped 0.75 s of packing, P2 more than its whole wait.
        t.wait_overlapped(pending, &[0.0, 0.75, 5.0]);
        let s = t.snapshot();
        assert!((s.per_proc()[0].comm_time - 2.0).abs() < 1e-12);
        assert!((s.per_proc()[1].comm_time - 0.25).abs() < 1e-12);
        assert_eq!(s.per_proc()[2].comm_time, 0.0);
        // A short credit slice defaults the missing processors to zero.
        let pending = t.post_many([(2usize, 0usize, 8usize)]);
        t.wait_overlapped(pending, &[]);
        assert!((t.snapshot().per_proc()[0].comm_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn waits_accumulate_the_overlap_credit() {
        let t = CommTracker::new(3, CostModel::from_alpha_beta(1.0, 0.0));
        let pending = t.post_many([(0usize, 1usize, 8usize), (0, 2, 8)]);
        // P0 posted 2.0 s but only 0.5 s is overlapped; P1 fully hides its
        // 1.0 s; P2 gets no credit (see wait_overlapped semantics).
        t.wait_overlapped(pending, &[0.5, 5.0, 0.0]);
        let s = t.snapshot();
        assert!((s.credited_overlap_seconds() - 1.5).abs() < 1e-12);
        assert_eq!(s.measured_overlap_seconds(), 0.0);
        t.record_measured_overlap(0.25);
        t.record_measured_overlap(-1.0); // dropped
        assert!((t.snapshot().measured_overlap_seconds() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn compute_seconds_records_directly() {
        let t = CommTracker::new(2, CostModel::zero());
        t.compute_seconds(1, 0.5);
        t.compute_seconds(1, 0.0);
        t.compute_seconds(0, -1.0);
        let s = t.snapshot();
        assert_eq!(s.per_proc()[1].compute_time, 0.5);
        assert_eq!(s.per_proc()[0].compute_time, 0.0);
    }

    #[test]
    fn clones_share_state() {
        let t = CommTracker::new(2, CostModel::zero());
        let t2 = t.clone();
        t2.send(0, 1, 100);
        assert_eq!(t.snapshot().total_bytes(), 100);
        assert_eq!(t.num_procs(), 2);
    }

    #[test]
    fn compute_charges_flops() {
        let mut cost = CostModel::zero();
        cost.compute_per_flop = 2.0;
        let t = CommTracker::new(2, cost);
        t.compute(1, 5);
        t.compute(1, 0);
        let s = t.snapshot();
        assert!((s.per_proc()[1].compute_time - 10.0).abs() < 1e-12);
        assert_eq!(s.per_proc()[0].compute_time, 0.0);
    }

    #[test]
    fn collective_charges_every_processor() {
        let t = CommTracker::new(8, CostModel::from_alpha_beta(1.0, 0.0));
        t.collective(CollectiveKind::Reduce, 8);
        let s = t.snapshot();
        // log2(8) = 3 stages of one message on each processor.
        for p in s.per_proc() {
            assert_eq!(p.messages_sent, 3);
            assert!((p.comm_time - 3.0).abs() < 1e-12);
        }
        let t1 = CommTracker::new(1, CostModel::from_alpha_beta(1.0, 0.0));
        t1.collective(CollectiveKind::Barrier, 0);
        assert_eq!(t1.snapshot().total_messages(), 0);
    }

    #[test]
    fn allreduce_is_two_trees() {
        let t = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        t.collective(CollectiveKind::AllReduce, 0);
        let s = t.snapshot();
        assert_eq!(s.per_proc()[0].messages_sent, 4); // 2 * log2(4)
    }

    #[test]
    fn injected_transient_send_charges_retries() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        let plan = FaultPlan::new(1)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::TransientSend]);
        let inj = Arc::new(FaultInjector::new(plan));
        let t = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0))
            .with_fault_injector(Arc::clone(&inj));
        let pending = t.post_many([(0usize, 1usize, 8usize)]);
        t.wait(pending, 0.0);
        let s = t.snapshot();
        assert_eq!(s.faults_injected(), inj.faults_injected());
        assert_eq!(s.retries(), inj.expected_retries());
        assert!(s.retries() >= 1);
        // The logical message count is unchanged; only time grows.
        assert_eq!(s.total_messages(), 1);
        assert!(s.per_proc()[0].comm_time > 1.0);
    }

    #[test]
    fn self_only_batches_are_never_fault_victims() {
        use crate::fault::{FaultInjector, FaultPlan};
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(2).with_rate(1.0)));
        let t = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0)).with_fault_injector(inj);
        let pending = t.post_many([(1usize, 1usize, 8usize)]);
        t.wait(pending, 0.0);
        let s = t.snapshot();
        assert_eq!(s.faults_injected(), 0);
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn page_fetches_match_send_many_without_injector() {
        let a = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let b = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let messages = [(0usize, 1usize, 10usize), (2, 3, 4), (1, 1, 99)];
        a.send_page_fetches(messages);
        b.send_many(messages);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn page_fetch_faults_add_time_and_retries() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        let plan = FaultPlan::new(6)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::TransientSend]);
        let inj = Arc::new(FaultInjector::new(plan));
        let t = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0))
            .with_fault_injector(Arc::clone(&inj));
        t.send_page_fetches([(0usize, 1usize, 8usize)]);
        let s = t.snapshot();
        assert_eq!(s.faults_injected(), 1);
        assert_eq!(s.retries(), inj.expected_retries());
        assert!(s.per_proc()[1].comm_time > 1.0);
    }

    #[test]
    fn charge_retransmissions_counts_and_charges() {
        let t = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0));
        t.charge_retransmissions(0, 1, 8, 2);
        let s = t.snapshot();
        assert_eq!(s.retries(), 2);
        assert!((s.per_proc()[0].comm_time - 2.0).abs() < 1e-12);
        assert!((s.per_proc()[1].comm_time - 2.0).abs() < 1e-12);
        // Self messages and zero attempts are no-ops.
        t.charge_retransmissions(1, 1, 8, 3);
        t.charge_retransmissions(0, 1, 8, 0);
        assert_eq!(t.snapshot().retries(), 2);
    }

    #[test]
    fn fault_counter_records_accumulate() {
        let t = CommTracker::new(2, CostModel::zero());
        t.record_fault();
        t.record_fallback();
        t.record_fault_counters(2, 3, 1);
        t.record_fault_counters(0, 0, 0); // no-op
        let s = t.snapshot();
        assert_eq!(s.faults_injected(), 3);
        assert_eq!(s.retries(), 3);
        assert_eq!(s.fallbacks(), 2);
    }

    #[test]
    fn take_resets() {
        let t = CommTracker::new(2, CostModel::zero());
        t.send(0, 1, 7);
        let first = t.take();
        assert_eq!(first.total_bytes(), 7);
        assert_eq!(t.snapshot().total_bytes(), 0);
    }
}
