//! Linear message cost model.

use crate::Topology;
use serde::{Deserialize, Serialize};

/// The machine cost model used to evaluate communication decisions.
///
/// A point-to-point message of `b` bytes between processors `s` and `d`
/// costs
///
/// ```text
///   alpha + beta * b + hop_latency * (hops(s, d) - 1)
/// ```
///
/// seconds, where `hops` comes from the configured [`Topology`].  Local
/// computation is charged at `compute_per_flop` seconds per floating-point
/// operation.  These are exactly the "startup overhead and cost per byte"
/// parameters the paper's §4 analysis is phrased in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Message startup latency in seconds (α).
    pub alpha: f64,
    /// Per-byte transfer cost in seconds (β).
    pub beta: f64,
    /// Additional latency per extra network hop in seconds.
    pub hop_latency: f64,
    /// Cost of one floating-point operation in seconds.
    pub compute_per_flop: f64,
    /// Cost of copying one byte through local memory in seconds — the
    /// packing/unpacking work of a communication plan's copy phase.  The
    /// executors charge the copy phase as per-processor compute time *and*
    /// credit it as overlap against the posted messages, so a non-zero
    /// rate makes the simulated machine show communication hidden behind
    /// packing.  Zero (the default of every preset) reproduces the
    /// previous behaviour bit-for-bit.
    pub copy_per_byte: f64,
    /// Interconnect topology used for hop counting.
    pub topology: Topology,
}

impl CostModel {
    /// A cost model resembling the Intel iPSC/860 hypercube generation the
    /// paper's contemporaries reported on: ~75 µs startup, ~0.36 µs/byte
    /// (≈2.8 MB/s), ~60 ns per flop.
    pub fn ipsc860(num_procs: usize) -> Self {
        Self {
            alpha: 75e-6,
            beta: 0.36e-6,
            hop_latency: 10e-6,
            compute_per_flop: 60e-9,
            copy_per_byte: 0.0,
            topology: Topology::hypercube_like(num_procs),
        }
    }

    /// A cost model resembling a 1990s Paragon-class mesh machine:
    /// ~40 µs startup, ~0.02 µs/byte, ~25 ns per flop.
    pub fn paragon(rows: usize, cols: usize) -> Self {
        Self {
            alpha: 40e-6,
            beta: 0.02e-6,
            hop_latency: 1e-6,
            compute_per_flop: 25e-9,
            copy_per_byte: 0.0,
            topology: Topology::Mesh2D { rows, cols },
        }
    }

    /// A modern commodity cluster: ~2 µs startup, 10 GB/s links, 1 ns/flop.
    pub fn modern_cluster() -> Self {
        Self {
            alpha: 2e-6,
            beta: 1e-10,
            hop_latency: 0.0,
            compute_per_flop: 1e-9,
            copy_per_byte: 0.0,
            topology: Topology::Crossbar,
        }
    }

    /// A latency-dominated machine (large α relative to β) — the regime in
    /// which fewer, larger messages win (column distributions in E1).
    pub fn latency_bound() -> Self {
        Self {
            alpha: 500e-6,
            beta: 0.01e-6,
            hop_latency: 0.0,
            compute_per_flop: 10e-9,
            copy_per_byte: 0.0,
            topology: Topology::Crossbar,
        }
    }

    /// A bandwidth-dominated machine (negligible α) — the regime in which
    /// smaller messages (2-D block distributions in E1) win.
    pub fn bandwidth_bound() -> Self {
        Self {
            alpha: 1e-6,
            beta: 1.0e-6,
            hop_latency: 0.0,
            compute_per_flop: 10e-9,
            copy_per_byte: 0.0,
            topology: Topology::Crossbar,
        }
    }

    /// A zero-cost model: useful in unit tests that only check counts.
    pub fn zero() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            hop_latency: 0.0,
            compute_per_flop: 0.0,
            copy_per_byte: 0.0,
            topology: Topology::Crossbar,
        }
    }

    /// Builds a model from explicit α and β with everything else zero.
    pub fn from_alpha_beta(alpha: f64, beta: f64) -> Self {
        Self {
            alpha,
            beta,
            hop_latency: 0.0,
            compute_per_flop: 0.0,
            copy_per_byte: 0.0,
            topology: Topology::Crossbar,
        }
    }

    /// Time in seconds for a `bytes`-byte message from `src` to `dst`.
    pub fn message_time_between(&self, bytes: usize, src: usize, dst: usize) -> f64 {
        let hops = self.topology.hops(src, dst).max(1);
        self.alpha + self.beta * bytes as f64 + self.hop_latency * (hops - 1) as f64
    }

    /// Time in seconds for a `bytes`-byte message between adjacent
    /// processors.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Time in seconds for `flops` floating-point operations on one
    /// processor.
    pub fn compute_time(&self, flops: usize) -> f64 {
        self.compute_per_flop * flops as f64
    }

    /// Returns the model with the local-memory copy rate set from a
    /// bandwidth in bytes per second (0 disables copy-phase modelling).
    pub fn with_copy_bandwidth(mut self, bytes_per_second: f64) -> Self {
        self.copy_per_byte = if bytes_per_second > 0.0 {
            1.0 / bytes_per_second
        } else {
            0.0
        };
        self
    }

    /// Time in seconds to copy `bytes` bytes through local memory.
    pub fn copy_time(&self, bytes: usize) -> f64 {
        self.copy_per_byte * bytes as f64
    }

    /// Time for a binary-tree collective (reduce/broadcast) over `nprocs`
    /// processors with per-stage payload `bytes`.
    pub fn tree_collective_time(&self, nprocs: usize, bytes: usize) -> f64 {
        if nprocs <= 1 {
            return 0.0;
        }
        let stages = (nprocs as f64).log2().ceil();
        stages * self.message_time(bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ipsc860(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine() {
        let m = CostModel::from_alpha_beta(10.0, 2.0);
        assert_eq!(m.message_time(0), 10.0);
        assert_eq!(m.message_time(5), 20.0);
    }

    #[test]
    fn presets_are_positive_and_ordered() {
        let ipsc = CostModel::ipsc860(16);
        let modern = CostModel::modern_cluster();
        assert!(ipsc.alpha > modern.alpha);
        assert!(ipsc.beta > modern.beta);
        assert!(ipsc.message_time(1024) > modern.message_time(1024));
        assert!(CostModel::latency_bound().alpha > CostModel::bandwidth_bound().alpha);
        assert!(CostModel::bandwidth_bound().beta > CostModel::latency_bound().beta);
    }

    #[test]
    fn hop_latency_counts_extra_hops() {
        let mut m = CostModel::from_alpha_beta(1.0, 0.0);
        m.hop_latency = 0.5;
        m.topology = Topology::Ring { size: 8 };
        // Adjacent processors: 1 hop, no extra latency.
        assert_eq!(m.message_time_between(0, 0, 1), 1.0);
        // Opposite side of the ring: 4 hops, 3 extra.
        assert_eq!(m.message_time_between(0, 0, 4), 2.5);
    }

    #[test]
    fn compute_and_collective_times() {
        let m = CostModel::from_alpha_beta(1.0, 0.0);
        assert_eq!(m.compute_time(100), 0.0);
        let mut m2 = m.clone();
        m2.compute_per_flop = 2.0;
        assert_eq!(m2.compute_time(3), 6.0);
        assert_eq!(m.tree_collective_time(1, 8), 0.0);
        assert_eq!(m.tree_collective_time(8, 0), 3.0);
        assert_eq!(m.tree_collective_time(5, 0), 3.0); // ceil(log2 5) = 3
    }

    #[test]
    fn default_is_ipsc() {
        let d = CostModel::default();
        assert_eq!(d.alpha, 75e-6);
    }
}
