//! The simulated machine description.

use crate::fault::{FaultInjector, FaultPlan};
use crate::{CommTracker, CostModel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A simulated distributed-memory machine: a number of processors plus a
/// [`CostModel`].
///
/// The paper's `$NP` intrinsic (the number of executing processors, used to
/// choose distributions at run time in §4) corresponds to
/// [`Machine::num_procs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    num_procs: usize,
    cost: CostModel,
    fault_plan: Option<FaultPlan>,
}

impl Machine {
    /// Creates a machine with `num_procs` processors and the given cost
    /// model.
    pub fn new(num_procs: usize, cost: CostModel) -> Self {
        assert!(num_procs > 0, "a machine needs at least one processor");
        Self {
            num_procs,
            cost,
            fault_plan: None,
        }
    }

    /// A machine with `num_procs` processors and the default (iPSC-like)
    /// cost model.
    pub fn with_procs(num_procs: usize) -> Self {
        Self::new(num_procs, CostModel::ipsc860(num_procs))
    }

    /// Number of processors — the `$NP` intrinsic.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Arms the machine with a fault plan: every tracker it creates
    /// carries a freshly seeded [`FaultInjector`], so applications run
    /// their whole communication stack under the plan's deterministic
    /// fault schedule without further plumbing.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The fault plan trackers are armed with, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Creates a fresh communication tracker for this machine.
    ///
    /// When a fault plan is set — or `VF_FAULT_SEED` is in the
    /// environment ([`FaultPlan::from_env`]) — the tracker carries a new
    /// injector seeded from the plan, so each tracker sees the same
    /// schedule on repeated runs.
    pub fn tracker(&self) -> CommTracker {
        let tracker = CommTracker::new(self.num_procs, self.cost.clone());
        match self.fault_plan.clone().or_else(FaultPlan::from_env) {
            Some(plan) => tracker.with_fault_injector(Arc::new(FaultInjector::new(plan))),
            None => tracker,
        }
    }

    /// The machine-readable metrics summary: per-phase measured counts,
    /// totals and latency percentiles from the global
    /// [`trace`](crate::trace) registry, plus the `drift` section
    /// comparing them against the modelled seconds in `stats`.  Empty
    /// (all-zero) when tracing is disabled.
    pub fn metrics_report(&self, stats: &crate::CommStats) -> crate::trace::MetricsReport {
        crate::trace::MetricsReport::new(self.num_procs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_construction() {
        let m = Machine::with_procs(8);
        assert_eq!(m.num_procs(), 8);
        assert!(m.cost().alpha > 0.0);
        let t = m.tracker();
        assert_eq!(t.num_procs(), 8);
    }

    #[test]
    fn custom_cost_model() {
        let m = Machine::new(4, CostModel::zero());
        assert_eq!(m.cost().alpha, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Machine::with_procs(0);
    }

    #[test]
    fn fault_plan_arms_trackers() {
        use crate::fault::FaultPlan;
        let m = Machine::with_procs(4);
        assert!(m.fault_plan().is_none());
        assert!(m.tracker().fault_injector().is_none());
        let armed = m.with_fault_plan(FaultPlan::new(9));
        assert_eq!(armed.fault_plan().unwrap().seed, 9);
        let t = armed.tracker();
        let inj = t.fault_injector().expect("tracker carries an injector");
        assert_eq!(inj.plan().seed, 9);
        // Each tracker gets a fresh injector at the same seed.
        let t2 = armed.tracker();
        assert_eq!(t2.fault_injector().unwrap().plan().seed, 9);
    }
}
