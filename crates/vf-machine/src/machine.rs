//! The simulated machine description.

use crate::{CommTracker, CostModel};
use serde::{Deserialize, Serialize};

/// A simulated distributed-memory machine: a number of processors plus a
/// [`CostModel`].
///
/// The paper's `$NP` intrinsic (the number of executing processors, used to
/// choose distributions at run time in §4) corresponds to
/// [`Machine::num_procs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    num_procs: usize,
    cost: CostModel,
}

impl Machine {
    /// Creates a machine with `num_procs` processors and the given cost
    /// model.
    pub fn new(num_procs: usize, cost: CostModel) -> Self {
        assert!(num_procs > 0, "a machine needs at least one processor");
        Self { num_procs, cost }
    }

    /// A machine with `num_procs` processors and the default (iPSC-like)
    /// cost model.
    pub fn with_procs(num_procs: usize) -> Self {
        Self::new(num_procs, CostModel::ipsc860(num_procs))
    }

    /// Number of processors — the `$NP` intrinsic.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Creates a fresh communication tracker for this machine.
    pub fn tracker(&self) -> CommTracker {
        CommTracker::new(self.num_procs, self.cost.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_construction() {
        let m = Machine::with_procs(8);
        assert_eq!(m.num_procs(), 8);
        assert!(m.cost().alpha > 0.0);
        let t = m.tracker();
        assert_eq!(t.num_procs(), 8);
    }

    #[test]
    fn custom_cost_model() {
        let m = Machine::new(4, CostModel::zero());
        assert_eq!(m.cost().alpha, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Machine::with_procs(0);
    }
}
