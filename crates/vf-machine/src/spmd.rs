//! A thread-backed SPMD executor.
//!
//! The Vienna Fortran compilation system generates SPMD code: "each
//! processor executes essentially the same code, but on a local data set"
//! (paper §1).  This module realises that execution model with one OS
//! thread per simulated processor, private per-processor state, and
//! explicit message passing over channels; every message is also charged to
//! the shared [`CommTracker`] so the modelled cost of a threaded run matches
//! the master-managed simulation.

use crate::CommTracker;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A message exchanged between simulated processors.
#[derive(Debug, Clone)]
struct Msg {
    src: usize,
    tag: u64,
    payload: Vec<u8>,
}

/// Per-processor execution context handed to the SPMD body.
pub struct ProcCtx {
    rank: usize,
    num_procs: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    pending: Vec<Msg>,
    barrier: Arc<Barrier>,
    tracker: CommTracker,
}

impl ProcCtx {
    /// This processor's rank (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors participating in the SPMD region.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// The shared communication tracker.
    pub fn tracker(&self) -> &CommTracker {
        &self.tracker
    }

    /// Sends `payload` to processor `dst` under message tag `tag`.
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        self.tracker.send(self.rank, dst, payload.len());
        self.senders[dst]
            .send(Msg {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver thread alive for the duration of the SPMD region");
    }

    /// Sends a slice of `f64` values to `dst` (little-endian encoding).
    pub fn send_f64s(&self, dst: usize, tag: u64, values: &[f64]) {
        self.send(dst, tag, f64s_to_bytes(values));
    }

    /// Receives the next message with tag `tag`, optionally from a specific
    /// source, blocking until it arrives.  Returns the source rank and the
    /// payload.
    pub fn recv(&mut self, src: Option<usize>, tag: u64) -> (usize, Vec<u8>) {
        // First look in the pending queue for an already-delivered match.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.tag == tag && src.map(|s| s == m.src).unwrap_or(true))
        {
            let m = self.pending.remove(pos);
            return (m.src, m.payload);
        }
        loop {
            let m = self
                .receiver
                .recv()
                .expect("senders alive for the duration of the SPMD region");
            if m.tag == tag && src.map(|s| s == m.src).unwrap_or(true) {
                return (m.src, m.payload);
            }
            self.pending.push(m);
        }
    }

    /// Receives a slice of `f64` values (see [`ProcCtx::send_f64s`]).
    pub fn recv_f64s(&mut self, src: Option<usize>, tag: u64) -> (usize, Vec<f64>) {
        let (s, bytes) = self.recv(src, tag);
        (s, bytes_to_f64s(&bytes))
    }

    /// Synchronises all processors.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Charges `flops` floating-point operations of local work to this
    /// processor in the cost model.
    pub fn charge_compute(&self, flops: usize) {
        self.tracker.compute(self.rank, flops);
    }

    /// Global sum of one value per processor; every processor receives the
    /// result (gather to rank 0, then broadcast).
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.num_procs == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut acc = value;
            for _ in 1..self.num_procs {
                let (_, v) = self.recv_f64s(None, TAG_GATHER);
                acc += v[0];
            }
            for dst in 1..self.num_procs {
                self.send_f64s(dst, TAG_BCAST, &[acc]);
            }
            acc
        } else {
            self.send_f64s(0, TAG_GATHER, &[value]);
            let (_, v) = self.recv_f64s(Some(0), TAG_BCAST);
            v[0]
        }
    }

    /// Global maximum of one value per processor.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        const TAG_GATHER: u64 = u64::MAX - 3;
        const TAG_BCAST: u64 = u64::MAX - 4;
        if self.num_procs == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut acc = value;
            for _ in 1..self.num_procs {
                let (_, v) = self.recv_f64s(None, TAG_GATHER);
                acc = acc.max(v[0]);
            }
            for dst in 1..self.num_procs {
                self.send_f64s(dst, TAG_BCAST, &[acc]);
            }
            acc
        } else {
            self.send_f64s(0, TAG_GATHER, &[value]);
            let (_, v) = self.recv_f64s(Some(0), TAG_BCAST);
            v[0]
        }
    }

    /// Gathers one `f64` slice from every processor onto rank 0; rank 0
    /// receives all slices ordered by rank, other ranks receive an empty
    /// vector.
    pub fn gather_to_root(&mut self, values: &[f64]) -> Vec<Vec<f64>> {
        const TAG: u64 = u64::MAX - 5;
        if self.rank == 0 {
            let mut out = vec![Vec::new(); self.num_procs];
            out[0] = values.to_vec();
            for _ in 1..self.num_procs {
                let (src, v) = self.recv_f64s(None, TAG);
                out[src] = v;
            }
            out
        } else {
            self.send_f64s(0, TAG, values);
            Vec::new()
        }
    }
}

/// Encodes a slice of `f64` as little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian byte buffer into `f64` values.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8 bytes")))
        .collect()
}

/// Runs `body` as an SPMD region over `num_procs` simulated processors,
/// one OS thread per processor, and returns the per-processor results in
/// rank order.
///
/// Deadlocks in the body (e.g. mismatched sends/receives) will hang the
/// call, exactly as they would on a real message-passing machine.
pub fn run<R, F>(num_procs: usize, tracker: &CommTracker, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx) -> R + Sync,
{
    assert!(num_procs > 0, "SPMD region needs at least one processor");
    let mut senders = Vec::with_capacity(num_procs);
    let mut receivers = Vec::with_capacity(num_procs);
    for _ in 0..num_procs {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(num_procs));
    let body = &body;

    let mut contexts: Vec<ProcCtx> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ProcCtx {
            rank,
            num_procs,
            senders: senders.clone(),
            receiver,
            pending: Vec::new(),
            barrier: Arc::clone(&barrier),
            tracker: tracker.clone(),
        })
        .collect();
    // Drop the original sender handles so channels close when contexts drop.
    drop(senders);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_procs);
        for mut ctx in contexts.drain(..) {
            handles.push(scope.spawn(move || body(&mut ctx)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD processor thread panicked"))
            .collect()
    })
}

/// Runs `num_items` independent work items over up to `workers` SPMD worker
/// threads (round-robin partition by item index) and returns the results in
/// item order.
///
/// Each work item is one destination processor's share of a communication
/// plan, and the items are embarrassingly parallel (every destination
/// buffer is written by exactly one item).  The worker count is clamped to
/// the item count so no idle threads are spawned.
///
/// Every call pays the full harness setup — fresh OS threads, channels, a
/// barrier — even though copy closures never message each other; this is
/// the *fresh-spawn baseline* the plan executor only uses when no
/// [`crate::pool::WorkerPool`] is attached.  Iterative codes should submit
/// through a pool instead ([`crate::pool::WorkerPool::run_partitioned`],
/// same closure shape), which parks its workers between jobs.
pub fn run_partitioned<R, F>(
    workers: usize,
    tracker: &CommTracker,
    num_items: usize,
    work: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx, usize) -> R + Sync,
{
    if num_items == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, num_items);
    let per_rank: Vec<Vec<(usize, R)>> = run(workers, tracker, |ctx| {
        let mut out = Vec::new();
        let mut item = ctx.rank();
        while item < num_items {
            out.push((item, work(ctx, item)));
            item += ctx.num_procs();
        }
        out
    });
    let mut slots: Vec<Option<R>> = (0..num_items).map(|_| None).collect();
    for rank_items in per_rank {
        for (item, result) in rank_items {
            slots[item] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item is assigned to exactly one rank"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    #[test]
    fn ring_shift() {
        let tracker = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let results = run(4, &tracker, |ctx| {
            let right = (ctx.rank() + 1) % ctx.num_procs();
            ctx.send_f64s(right, 7, &[ctx.rank() as f64]);
            let (src, v) = ctx.recv_f64s(None, 7);
            (src, v[0])
        });
        for (rank, (src, v)) in results.iter().enumerate() {
            let left = (rank + 4 - 1) % 4;
            assert_eq!(*src, left);
            assert_eq!(*v, left as f64);
        }
        let stats = tracker.snapshot();
        assert_eq!(stats.total_messages(), 4);
        assert_eq!(stats.total_bytes(), 4 * 8);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let tracker = CommTracker::new(5, CostModel::zero());
        let sums = run(5, &tracker, |ctx| {
            ctx.allreduce_sum((ctx.rank() + 1) as f64)
        });
        assert!(sums.iter().all(|&s| s == 15.0));
        let maxes = run(5, &tracker, |ctx| ctx.allreduce_max(ctx.rank() as f64));
        assert!(maxes.iter().all(|&m| m == 4.0));
    }

    #[test]
    fn single_processor_allreduce_is_identity() {
        let tracker = CommTracker::new(1, CostModel::zero());
        let r = run(1, &tracker, |ctx| ctx.allreduce_sum(42.0));
        assert_eq!(r, vec![42.0]);
        assert_eq!(tracker.snapshot().total_messages(), 0);
    }

    #[test]
    fn gather_to_root_collects_in_rank_order() {
        let tracker = CommTracker::new(3, CostModel::zero());
        let results = run(3, &tracker, |ctx| {
            let data = vec![ctx.rank() as f64; ctx.rank() + 1];
            ctx.gather_to_root(&data)
        });
        let root = &results[0];
        assert_eq!(root.len(), 3);
        assert_eq!(root[0], vec![0.0]);
        assert_eq!(root[1], vec![1.0, 1.0]);
        assert_eq!(root[2], vec![2.0, 2.0, 2.0]);
        assert!(results[1].is_empty());
    }

    #[test]
    fn tagged_receives_are_matched_out_of_order() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let results = run(2, &tracker, |ctx| {
            if ctx.rank() == 0 {
                ctx.send_f64s(1, 1, &[1.0]);
                ctx.send_f64s(1, 2, &[2.0]);
                0.0
            } else {
                // Receive tag 2 first even though tag 1 was sent first.
                let (_, b) = ctx.recv_f64s(Some(0), 2);
                let (_, a) = ctx.recv_f64s(Some(0), 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn barrier_and_compute_charging() {
        let mut cost = CostModel::zero();
        cost.compute_per_flop = 1.0;
        let tracker = CommTracker::new(3, cost);
        run(3, &tracker, |ctx| {
            ctx.charge_compute(ctx.rank() * 10);
            ctx.barrier();
        });
        let s = tracker.snapshot();
        assert_eq!(s.max_compute_time(), 20.0);
        assert_eq!(s.total_compute_time(), 30.0);
    }

    #[test]
    fn run_partitioned_returns_items_in_order() {
        let tracker = CommTracker::new(4, CostModel::zero());
        let results = run_partitioned(3, &tracker, 10, |ctx, item| {
            assert!(ctx.rank() < 3);
            item * item
        });
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate shapes: no items, and more workers than items.
        let empty: Vec<usize> = run_partitioned(4, &tracker, 0, |_, item| item);
        assert!(empty.is_empty());
        let single = run_partitioned(8, &tracker, 2, |ctx, item| (ctx.num_procs(), item));
        assert_eq!(single, vec![(2, 0), (2, 1)]);
    }

    #[test]
    fn f64_byte_round_trip() {
        let values = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&values)), values);
        assert!(bytes_to_f64s(&[]).is_empty());
    }
}
