//! A thread-backed SPMD executor.
//!
//! The Vienna Fortran compilation system generates SPMD code: "each
//! processor executes essentially the same code, but on a local data set"
//! (paper §1).  This module realises that execution model with one OS
//! thread per simulated processor, private per-processor state, and
//! explicit message passing over channels; every message is also charged to
//! the shared [`CommTracker`] so the modelled cost of a threaded run matches
//! the master-managed simulation.
//!
//! Messaging calls return [`SpmdError`] instead of panicking: a peer that
//! has left the region (its thread returned or died) surfaces as
//! [`SpmdError::PeerDead`] / [`SpmdError::RecvTimeout`], so a rank failure
//! degrades into the fault taxonomy instead of aborting the process.

use crate::fault::RankDeathSpec;
use crate::CommTracker;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Message tag reserved for fused wire-buffer exchanges
/// ([`ProcCtx::send_wire`] / [`ProcCtx::recv_wire`]).  Each processor pair
/// carries at most one wire buffer per exchange, so a single tag suffices;
/// it sits below the collective tags (`u64::MAX - 1 ..= u64::MAX - 5`).
pub const WIRE_TAG: u64 = u64::MAX - 6;

/// Pseudo-tag reported by [`SpmdError::RecvTimeout`] when the wait that
/// timed out was a [`ProcCtx::barrier_checked`] rather than a receive.
pub const BARRIER_TAG: u64 = u64::MAX - 7;

/// Size of the [`WireFrameMsg`] header prefix on a wire message.
pub const WIRE_FRAME_BYTES: usize = 24;

/// Structured failure of an SPMD messaging call.
///
/// These are the message-layer members of the fault taxonomy: the runtime
/// maps them into its own error type so injected rank death degrades a
/// region instead of aborting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpmdError {
    /// A send failed because the destination rank's receiver is gone (its
    /// thread returned or died mid-region).
    PeerDead {
        /// Rank the send was issued from.
        rank: usize,
        /// Destination rank whose receiver is gone.
        peer: usize,
        /// Message tag of the failed send.
        tag: u64,
    },
    /// A receive failed because every sender handle is gone.
    ChannelClosed {
        /// Rank the receive was issued from.
        rank: usize,
        /// Message tag being waited for.
        tag: u64,
    },
    /// A bounded receive gave up before a matching message arrived —
    /// the liveness-preserving signal for a dead or wedged peer.
    RecvTimeout {
        /// Rank the receive was issued from.
        rank: usize,
        /// Specific source being waited for, if any.
        src: Option<usize>,
        /// Message tag being waited for.
        tag: u64,
        /// How long the receive waited before giving up.
        waited_ms: u64,
    },
    /// A payload's length is not a whole number of elements — a truncated
    /// or corrupt message that must not silently decode to fewer values.
    TruncatedPayload {
        /// Actual payload length in bytes.
        len: usize,
        /// Element size the payload failed to divide into.
        elem_bytes: usize,
    },
    /// A wire message is shorter than its mandatory frame header.
    MalformedFrame {
        /// Actual message length in bytes.
        len: usize,
    },
    /// This rank's injected death fuse expired: the operation is refused
    /// and the rank is expected to leave the region, dropping its channel
    /// endpoints so peers observe [`SpmdError::PeerDead`] /
    /// [`SpmdError::RecvTimeout`].
    RankKilled {
        /// The rank that was killed.
        rank: usize,
    },
    /// A barrier wait was abandoned because a participant left the region
    /// (its context dropped) before arriving.
    BarrierBroken {
        /// Rank whose barrier wait was abandoned.
        rank: usize,
    },
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmdError::PeerDead { rank, peer, tag } => write!(
                f,
                "rank {rank}: send to peer {peer} (tag {tag}) failed: receiver is gone"
            ),
            SpmdError::ChannelClosed { rank, tag } => {
                write!(f, "rank {rank}: channel closed while receiving (tag {tag})")
            }
            SpmdError::RecvTimeout {
                rank,
                src,
                tag,
                waited_ms,
            } => match src {
                Some(s) => write!(
                    f,
                    "rank {rank}: receive from {s} (tag {tag}) timed out after {waited_ms} ms"
                ),
                None => write!(
                    f,
                    "rank {rank}: receive (tag {tag}) timed out after {waited_ms} ms"
                ),
            },
            SpmdError::TruncatedPayload { len, elem_bytes } => write!(
                f,
                "payload of {len} bytes is not a whole number of {elem_bytes}-byte elements"
            ),
            SpmdError::MalformedFrame { len } => write!(
                f,
                "wire message of {len} bytes is shorter than the {WIRE_FRAME_BYTES}-byte frame header"
            ),
            SpmdError::RankKilled { rank } => {
                write!(f, "rank {rank}: killed by injected rank death")
            }
            SpmdError::BarrierBroken { rank } => write!(
                f,
                "rank {rank}: barrier broken: a participant left the region"
            ),
        }
    }
}

impl std::error::Error for SpmdError {}

/// Frame header carried in front of every fused wire buffer sent over a
/// channel: the sequence number, element count, and GF(2)-linear checksum
/// the receiver validates before unpacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFrameMsg {
    /// Globally unique sequence number of this wire buffer.
    pub seq: u64,
    /// Number of elements packed in the payload.
    pub elements: u64,
    /// Checksum over the packed payload bits.
    pub checksum: u64,
}

impl WireFrameMsg {
    /// Encodes the frame as a fixed-size little-endian header.
    pub fn to_bytes(&self) -> [u8; WIRE_FRAME_BYTES] {
        let mut out = [0u8; WIRE_FRAME_BYTES];
        out[0..8].copy_from_slice(&self.seq.to_le_bytes());
        out[8..16].copy_from_slice(&self.elements.to_le_bytes());
        out[16..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Decodes a frame from the first [`WIRE_FRAME_BYTES`] of `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SpmdError> {
        if bytes.len() < WIRE_FRAME_BYTES {
            return Err(SpmdError::MalformedFrame { len: bytes.len() });
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8-byte slice"))
        };
        Ok(Self {
            seq: word(0),
            elements: word(1),
            checksum: word(2),
        })
    }
}

/// A message exchanged between simulated processors.
#[derive(Debug, Clone)]
struct Msg {
    src: usize,
    tag: u64,
    payload: Vec<u8>,
}

/// A generation barrier that survives rank death.
///
/// `std::sync::Barrier` blocks forever when a participant never arrives; a
/// killed rank would wedge every survivor at the next synchronisation
/// point.  This barrier lets a departing rank *defect* (called from
/// [`ProcCtx`]'s `Drop`), which permanently breaks the barrier and wakes
/// all waiters so they surface [`SpmdError::BarrierBroken`] instead of
/// hanging.  Well-formed SPMD bodies execute matching barrier counts on
/// every rank, so a defect at normal region exit never wakes a real
/// waiter.
#[derive(Debug)]
struct RegionBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    participants: usize,
    waiting: usize,
    generation: u64,
    broken: bool,
}

impl RegionBarrier {
    fn new(participants: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState {
                participants,
                waiting: 0,
                generation: 0,
                broken: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until every live participant arrives.  Fails once the
    /// barrier is broken (a participant dropped out) or, when a `timeout`
    /// is given, after waiting that long — the liveness backstop against a
    /// wedged-but-alive peer.
    fn wait_checked(&self, rank: usize, timeout: Option<Duration>) -> Result<(), SpmdError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.broken {
            return Err(SpmdError::BarrierBroken { rank });
        }
        state.waiting += 1;
        if state.waiting == state.participants {
            state.waiting = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let generation = state.generation;
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let timed_out = match deadline {
                None => {
                    state = self
                        .cvar
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                    false
                }
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    let (next, res) = self
                        .cvar
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = next;
                    res.timed_out()
                }
            };
            if state.generation != generation {
                return Ok(());
            }
            if state.broken {
                state.waiting = state.waiting.saturating_sub(1);
                return Err(SpmdError::BarrierBroken { rank });
            }
            if timed_out {
                state.waiting = state.waiting.saturating_sub(1);
                return Err(SpmdError::RecvTimeout {
                    rank,
                    src: None,
                    tag: BARRIER_TAG,
                    waited_ms: timeout.map(|t| t.as_millis() as u64).unwrap_or(0),
                });
            }
        }
    }

    /// Marks this barrier broken: one participant has left the region.
    /// Every current and future wait fails fast instead of blocking on a
    /// rank that will never arrive.
    fn defect(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.broken = true;
        state.participants = state.participants.saturating_sub(1);
        self.cvar.notify_all();
    }
}

/// Per-processor execution context handed to the SPMD body.
pub struct ProcCtx {
    rank: usize,
    num_procs: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Already-delivered messages that did not match a receive, indexed by
    /// tag with per-tag FIFO order.  Receives that skip messages are O(1)
    /// per skipped message (one push) and a matching receive is O(1) for
    /// wildcard-source / front-of-queue matches, instead of the former
    /// O(pending) scan plus O(pending) `Vec::remove` shift per receive.
    pending: HashMap<u64, VecDeque<Msg>>,
    barrier: Arc<RegionBarrier>,
    tracker: CommTracker,
    /// Armed rank-death fuse: remaining channel operations before this
    /// rank dies ([`SpmdError::RankKilled`]).  `None` on healthy ranks.
    doom: Option<Cell<usize>>,
}

impl Drop for ProcCtx {
    fn drop(&mut self) {
        // A departing rank (normal exit, error return or injected death)
        // defects from the region barrier so survivors waiting on it fail
        // fast instead of hanging forever.
        self.barrier.defect();
    }
}

impl ProcCtx {
    /// This processor's rank (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors participating in the SPMD region.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// The shared communication tracker.
    pub fn tracker(&self) -> &CommTracker {
        &self.tracker
    }

    /// Burns one unit of an armed death fuse; once it is spent every
    /// channel operation on this rank is refused with
    /// [`SpmdError::RankKilled`] so the body returns and the context (and
    /// with it this rank's channel endpoints) drops.
    fn check_doom(&self) -> Result<(), SpmdError> {
        if let Some(fuse) = &self.doom {
            let left = fuse.get();
            if left == 0 {
                return Err(SpmdError::RankKilled { rank: self.rank });
            }
            fuse.set(left - 1);
        }
        Ok(())
    }

    /// Sends `payload` to processor `dst` under message tag `tag`,
    /// charging the modelled message cost and counting the real channel
    /// traffic.
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) -> Result<(), SpmdError> {
        self.check_doom()?;
        self.tracker.send(self.rank, dst, payload.len());
        self.tracker.record_channel_message(payload.len());
        self.senders[dst]
            .send(Msg {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| SpmdError::PeerDead {
                rank: self.rank,
                peer: dst,
                tag,
            })
    }

    /// Sends a slice of `f64` values to `dst` (little-endian encoding).
    pub fn send_f64s(&self, dst: usize, tag: u64, values: &[f64]) -> Result<(), SpmdError> {
        self.send(dst, tag, f64s_to_bytes(values))
    }

    /// Sends a framed wire buffer to `dst`: the frame header is prepended
    /// to `payload` and only the payload bytes are counted as channel
    /// traffic (the header is envelope metadata), so a correct wire path
    /// reconciles exactly with the modelled byte count.  Unlike
    /// [`ProcCtx::send`] this does **not** charge the modelled cost — the
    /// executor posts the whole exchange's batch through the tracker, and
    /// charging per send as well would double-count it.
    pub fn send_wire(
        &self,
        dst: usize,
        tag: u64,
        frame: WireFrameMsg,
        payload: &[u8],
    ) -> Result<(), SpmdError> {
        self.check_doom()?;
        let _span = crate::span!(
            crate::trace::Phase::Post,
            "wire send {}B p{} -> p{dst}",
            payload.len(),
            self.rank
        );
        let mut buf = Vec::with_capacity(WIRE_FRAME_BYTES + payload.len());
        buf.extend_from_slice(&frame.to_bytes());
        buf.extend_from_slice(payload);
        self.tracker.record_channel_message(payload.len());
        self.senders[dst]
            .send(Msg {
                src: self.rank,
                tag,
                payload: buf,
            })
            .map_err(|_| SpmdError::PeerDead {
                rank: self.rank,
                peer: dst,
                tag,
            })
    }

    /// Receives a framed wire buffer (see [`ProcCtx::send_wire`]), waiting
    /// at most `timeout` so a dead sender degrades into
    /// [`SpmdError::RecvTimeout`] instead of wedging the region.  Returns
    /// the source rank, the decoded frame, and the payload.
    pub fn recv_wire(
        &mut self,
        src: Option<usize>,
        tag: u64,
        timeout: Duration,
    ) -> Result<(usize, WireFrameMsg, Vec<u8>), SpmdError> {
        let _span = crate::span!(crate::trace::Phase::Wait, "wire recv p{}", self.rank);
        let (s, mut bytes) = self.recv_timeout(src, tag, timeout)?;
        let frame = WireFrameMsg::from_bytes(&bytes)?;
        let payload = bytes.split_off(WIRE_FRAME_BYTES);
        Ok((s, frame, payload))
    }

    /// Pops the first pending message matching `src`/`tag`, if any.
    fn take_pending(&mut self, src: Option<usize>, tag: u64) -> Option<Msg> {
        let queue = self.pending.get_mut(&tag)?;
        let msg = match src {
            None => queue.pop_front(),
            Some(s) => {
                let pos = queue.iter().position(|m| m.src == s)?;
                queue.remove(pos)
            }
        };
        if queue.is_empty() {
            self.pending.remove(&tag);
        }
        msg
    }

    /// Receives the next message with tag `tag`, optionally from a specific
    /// source, blocking until it arrives.  Returns the source rank and the
    /// payload.  Matching order is pinned: among messages with the same
    /// tag (and source, when one is given), receives complete in arrival
    /// order.
    pub fn recv(&mut self, src: Option<usize>, tag: u64) -> Result<(usize, Vec<u8>), SpmdError> {
        self.check_doom()?;
        if let Some(m) = self.take_pending(src, tag) {
            return Ok((m.src, m.payload));
        }
        loop {
            let m = self.receiver.recv().map_err(|_| SpmdError::ChannelClosed {
                rank: self.rank,
                tag,
            })?;
            if m.tag == tag && src.map(|s| s == m.src).unwrap_or(true) {
                return Ok((m.src, m.payload));
            }
            self.pending.entry(m.tag).or_default().push_back(m);
        }
    }

    /// [`ProcCtx::recv`] with a deadline: gives up with
    /// [`SpmdError::RecvTimeout`] if no matching message arrives within
    /// `timeout`, so a dead peer is detected instead of deadlocking.
    pub fn recv_timeout(
        &mut self,
        src: Option<usize>,
        tag: u64,
        timeout: Duration,
    ) -> Result<(usize, Vec<u8>), SpmdError> {
        self.check_doom()?;
        if let Some(m) = self.take_pending(src, tag) {
            return Ok((m.src, m.payload));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.receiver.recv_timeout(remaining) {
                Ok(m) => {
                    if m.tag == tag && src.map(|s| s == m.src).unwrap_or(true) {
                        return Ok((m.src, m.payload));
                    }
                    self.pending.entry(m.tag).or_default().push_back(m);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(SpmdError::RecvTimeout {
                        rank: self.rank,
                        src,
                        tag,
                        waited_ms: timeout.as_millis() as u64,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(SpmdError::ChannelClosed {
                        rank: self.rank,
                        tag,
                    })
                }
            }
        }
    }

    /// Receives a slice of `f64` values (see [`ProcCtx::send_f64s`]).
    pub fn recv_f64s(
        &mut self,
        src: Option<usize>,
        tag: u64,
    ) -> Result<(usize, Vec<f64>), SpmdError> {
        let (s, bytes) = self.recv(src, tag)?;
        Ok((s, bytes_to_f64s(&bytes)?))
    }

    /// Synchronises all processors.
    ///
    /// If a participant has left the region (dropped its context) the
    /// barrier is broken and this returns immediately instead of hanging;
    /// use [`ProcCtx::barrier_checked`] where that breakage must surface
    /// as a structured error.
    pub fn barrier(&self) {
        let _ = self.barrier.wait_checked(self.rank, None);
    }

    /// [`ProcCtx::barrier`] with failure reporting and a deadline: fails
    /// with [`SpmdError::BarrierBroken`] when a participant has left the
    /// region, [`SpmdError::RecvTimeout`] (tag [`BARRIER_TAG`]) when
    /// `timeout` elapses first, or [`SpmdError::RankKilled`] when this
    /// rank's own death fuse expires at the synchronisation point.
    pub fn barrier_checked(&self, timeout: Duration) -> Result<(), SpmdError> {
        self.check_doom()?;
        self.barrier.wait_checked(self.rank, Some(timeout))
    }

    /// Charges `flops` floating-point operations of local work to this
    /// processor in the cost model.
    pub fn charge_compute(&self, flops: usize) {
        self.tracker.compute(self.rank, flops);
    }

    /// Global sum of one value per processor; every processor receives the
    /// result (gather to rank 0, then broadcast).
    pub fn allreduce_sum(&mut self, value: f64) -> Result<f64, SpmdError> {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.num_procs == 1 {
            return Ok(value);
        }
        if self.rank == 0 {
            let mut acc = value;
            for _ in 1..self.num_procs {
                let (_, v) = self.recv_f64s(None, TAG_GATHER)?;
                acc += v[0];
            }
            for dst in 1..self.num_procs {
                self.send_f64s(dst, TAG_BCAST, &[acc])?;
            }
            Ok(acc)
        } else {
            self.send_f64s(0, TAG_GATHER, &[value])?;
            let (_, v) = self.recv_f64s(Some(0), TAG_BCAST)?;
            Ok(v[0])
        }
    }

    /// Global maximum of one value per processor.
    pub fn allreduce_max(&mut self, value: f64) -> Result<f64, SpmdError> {
        const TAG_GATHER: u64 = u64::MAX - 3;
        const TAG_BCAST: u64 = u64::MAX - 4;
        if self.num_procs == 1 {
            return Ok(value);
        }
        if self.rank == 0 {
            let mut acc = value;
            for _ in 1..self.num_procs {
                let (_, v) = self.recv_f64s(None, TAG_GATHER)?;
                acc = acc.max(v[0]);
            }
            for dst in 1..self.num_procs {
                self.send_f64s(dst, TAG_BCAST, &[acc])?;
            }
            Ok(acc)
        } else {
            self.send_f64s(0, TAG_GATHER, &[value])?;
            let (_, v) = self.recv_f64s(Some(0), TAG_BCAST)?;
            Ok(v[0])
        }
    }

    /// Gathers one `f64` slice from every processor onto rank 0; rank 0
    /// receives all slices ordered by rank, other ranks receive an empty
    /// vector.
    pub fn gather_to_root(&mut self, values: &[f64]) -> Result<Vec<Vec<f64>>, SpmdError> {
        const TAG: u64 = u64::MAX - 5;
        if self.rank == 0 {
            let mut out = vec![Vec::new(); self.num_procs];
            out[0] = values.to_vec();
            for _ in 1..self.num_procs {
                let (src, v) = self.recv_f64s(None, TAG)?;
                out[src] = v;
            }
            Ok(out)
        } else {
            self.send_f64s(0, TAG, values)?;
            Ok(Vec::new())
        }
    }
}

/// Encodes a slice of `f64` as little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian byte buffer into `f64` values.
///
/// A length that is not a multiple of 8 is a truncated or corrupt payload
/// and is rejected with [`SpmdError::TruncatedPayload`] rather than
/// silently dropping the trailing partial value.
pub fn bytes_to_f64s(bytes: &[u8]) -> Result<Vec<f64>, SpmdError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SpmdError::TruncatedPayload {
            len: bytes.len(),
            elem_bytes: 8,
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8 bytes")))
        .collect())
}

/// Builds the per-rank contexts for an SPMD region over `num_procs`
/// processors sharing `tracker`.  When a death spec is armed, the victim
/// rank's context carries the operation fuse.
fn make_contexts(
    num_procs: usize,
    tracker: &CommTracker,
    death: Option<RankDeathSpec>,
) -> Vec<ProcCtx> {
    let mut senders = Vec::with_capacity(num_procs);
    let mut receivers = Vec::with_capacity(num_procs);
    for _ in 0..num_procs {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(RegionBarrier::new(num_procs));
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ProcCtx {
            rank,
            num_procs,
            senders: senders.clone(),
            receiver,
            pending: HashMap::new(),
            barrier: Arc::clone(&barrier),
            tracker: tracker.clone(),
            doom: death
                .filter(|d| d.victim == rank)
                .map(|d| Cell::new(d.after_ops)),
        })
        .collect()
    // The original sender handles drop here, so each rank's channel closes
    // once every surviving context drops its clones.
}

/// Runs `body` as an SPMD region over `num_procs` simulated processors,
/// one OS thread per processor, and returns the per-processor results in
/// rank order.
///
/// Deadlocks in the body (e.g. mismatched sends/receives) will hang the
/// call, exactly as they would on a real message-passing machine; use
/// [`ProcCtx::recv_timeout`] / [`ProcCtx::recv_wire`] where a peer death
/// must degrade instead.
pub fn run<R, F>(num_procs: usize, tracker: &CommTracker, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx) -> R + Sync,
{
    run_with_death(num_procs, tracker, None, body)
}

/// [`run`] with an optional armed rank death: the victim rank's context
/// carries the spec's operation fuse, so after `after_ops` channel
/// operations every further one fails with [`SpmdError::RankKilled`] and
/// the victim leaves the region, dropping its endpoints.  Survivors then
/// observe [`SpmdError::PeerDead`] on sends to the victim,
/// [`SpmdError::RecvTimeout`] on bounded receives from it, and
/// [`SpmdError::BarrierBroken`] at checked barriers.
pub fn run_with_death<R, F>(
    num_procs: usize,
    tracker: &CommTracker,
    death: Option<RankDeathSpec>,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx) -> R + Sync,
{
    assert!(num_procs > 0, "SPMD region needs at least one processor");
    let mut contexts = make_contexts(num_procs, tracker, death);
    let body = &body;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_procs);
        for mut ctx in contexts.drain(..) {
            handles.push(scope.spawn(move || body(&mut ctx)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD processor thread panicked"))
            .collect()
    })
}

/// Runs an SPMD region on the parked threads of a [`WorkerPool`] instead
/// of spawning fresh OS threads: the submitting thread hosts rank 0 and
/// `num_procs - 1` pool workers host the remaining ranks.
///
/// Every rank must be hosted concurrently (ranks block in receives waiting
/// for each other), so when the pool is narrower than `num_procs` this
/// falls back to the fresh-spawn [`run`] rather than deadlocking on a
/// clamped dispatch.
pub fn run_on_pool<R, F>(
    pool: &crate::pool::WorkerPool,
    num_procs: usize,
    tracker: &CommTracker,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx) -> R + Sync,
{
    run_on_pool_with_death(pool, num_procs, tracker, None, body)
}

/// [`run_on_pool`] with an optional armed rank death (see
/// [`run_with_death`]).
pub fn run_on_pool_with_death<R, F>(
    pool: &crate::pool::WorkerPool,
    num_procs: usize,
    tracker: &CommTracker,
    death: Option<RankDeathSpec>,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx) -> R + Sync,
{
    assert!(num_procs > 0, "SPMD region needs at least one processor");
    if pool.workers() < num_procs {
        return run_with_death(num_procs, tracker, death, body);
    }
    let slots: Vec<Mutex<Option<ProcCtx>>> = make_contexts(num_procs, tracker, death)
        .into_iter()
        .map(|ctx| Mutex::new(Some(ctx)))
        .collect();
    let results: Vec<Mutex<Option<R>>> = (0..num_procs).map(|_| Mutex::new(None)).collect();
    pool.run_limited(num_procs, &|rank| {
        let mut ctx = slots[rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("each rank is hosted exactly once");
        let r = body(&mut ctx);
        *results[rank].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
        // `ctx` drops here, closing this rank's sender clones.
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every rank ran")
        })
        .collect()
}

/// Runs `num_items` independent work items over up to `workers` SPMD worker
/// threads (round-robin partition by item index) and returns the results in
/// item order.
///
/// Each work item is one destination processor's share of a communication
/// plan, and the items are embarrassingly parallel (every destination
/// buffer is written by exactly one item).  The worker count is clamped to
/// the item count so no idle threads are spawned.
///
/// Every call pays the full harness setup — fresh OS threads, channels, a
/// barrier — even though copy closures never message each other; this is
/// the *fresh-spawn baseline* the plan executor only uses when no
/// [`crate::pool::WorkerPool`] is attached.  Iterative codes should submit
/// through a pool instead ([`crate::pool::WorkerPool::run_partitioned`],
/// same closure shape), which parks its workers between jobs.
pub fn run_partitioned<R, F>(
    workers: usize,
    tracker: &CommTracker,
    num_items: usize,
    work: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ProcCtx, usize) -> R + Sync,
{
    if num_items == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, num_items);
    let per_rank: Vec<Vec<(usize, R)>> = run(workers, tracker, |ctx| {
        let mut out = Vec::new();
        let mut item = ctx.rank();
        while item < num_items {
            out.push((item, work(ctx, item)));
            item += ctx.num_procs();
        }
        out
    });
    let mut slots: Vec<Option<R>> = (0..num_items).map(|_| None).collect();
    for rank_items in per_rank {
        for (item, result) in rank_items {
            slots[item] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item is assigned to exactly one rank"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    #[test]
    fn ring_shift() {
        let tracker = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let results = run(4, &tracker, |ctx| {
            let right = (ctx.rank() + 1) % ctx.num_procs();
            ctx.send_f64s(right, 7, &[ctx.rank() as f64]).unwrap();
            let (src, v) = ctx.recv_f64s(None, 7).unwrap();
            (src, v[0])
        });
        for (rank, (src, v)) in results.iter().enumerate() {
            let left = (rank + 4 - 1) % 4;
            assert_eq!(*src, left);
            assert_eq!(*v, left as f64);
        }
        let stats = tracker.snapshot();
        assert_eq!(stats.total_messages(), 4);
        assert_eq!(stats.total_bytes(), 4 * 8);
        // Real channel traffic reconciles with the modelled counts.
        assert_eq!(stats.channel_messages(), 4);
        assert_eq!(stats.channel_bytes(), 4 * 8);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let tracker = CommTracker::new(5, CostModel::zero());
        let sums = run(5, &tracker, |ctx| {
            ctx.allreduce_sum((ctx.rank() + 1) as f64).unwrap()
        });
        assert!(sums.iter().all(|&s| s == 15.0));
        let maxes = run(5, &tracker, |ctx| {
            ctx.allreduce_max(ctx.rank() as f64).unwrap()
        });
        assert!(maxes.iter().all(|&m| m == 4.0));
    }

    #[test]
    fn single_processor_allreduce_is_identity() {
        let tracker = CommTracker::new(1, CostModel::zero());
        let r = run(1, &tracker, |ctx| ctx.allreduce_sum(42.0).unwrap());
        assert_eq!(r, vec![42.0]);
        assert_eq!(tracker.snapshot().total_messages(), 0);
    }

    #[test]
    fn gather_to_root_collects_in_rank_order() {
        let tracker = CommTracker::new(3, CostModel::zero());
        let results = run(3, &tracker, |ctx| {
            let data = vec![ctx.rank() as f64; ctx.rank() + 1];
            ctx.gather_to_root(&data).unwrap()
        });
        let root = &results[0];
        assert_eq!(root.len(), 3);
        assert_eq!(root[0], vec![0.0]);
        assert_eq!(root[1], vec![1.0, 1.0]);
        assert_eq!(root[2], vec![2.0, 2.0, 2.0]);
        assert!(results[1].is_empty());
    }

    #[test]
    fn tagged_receives_are_matched_out_of_order() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let results = run(2, &tracker, |ctx| {
            if ctx.rank() == 0 {
                ctx.send_f64s(1, 1, &[1.0]).unwrap();
                ctx.send_f64s(1, 2, &[2.0]).unwrap();
                0.0
            } else {
                // Receive tag 2 first even though tag 1 was sent first.
                let (_, b) = ctx.recv_f64s(Some(0), 2).unwrap();
                let (_, a) = ctx.recv_f64s(Some(0), 1).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn pending_messages_complete_in_arrival_order() {
        // Same-tag messages forced through the pending queue must come
        // back in send (= arrival) order, for both wildcard and
        // specific-source receives.
        let tracker = CommTracker::new(2, CostModel::zero());
        let results = run(2, &tracker, |ctx| {
            if ctx.rank() == 0 {
                for v in [10.0, 11.0, 12.0] {
                    ctx.send_f64s(1, 1, &[v]).unwrap();
                }
                ctx.send_f64s(1, 2, &[99.0]).unwrap();
                Vec::new()
            } else {
                // Receiving tag 2 first drains all three tag-1 messages
                // into the pending queue.
                let (_, sentinel) = ctx.recv_f64s(Some(0), 2).unwrap();
                assert_eq!(sentinel, vec![99.0]);
                let a = ctx.recv_f64s(None, 1).unwrap().1[0];
                let b = ctx.recv_f64s(Some(0), 1).unwrap().1[0];
                let c = ctx.recv_f64s(None, 1).unwrap().1[0];
                vec![a, b, c]
            }
        });
        assert_eq!(results[1], vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn many_pending_out_of_order_receives() {
        // Receive in reverse tag order so all but one message is matched
        // out of the pending index; formerly an O(n^2) scan over one
        // flat vector.
        const N: usize = 2000;
        let tracker = CommTracker::new(2, CostModel::zero());
        run(2, &tracker, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..N {
                    ctx.send_f64s(1, i as u64, &[i as f64]).unwrap();
                }
            } else {
                for i in (0..N).rev() {
                    let (_, v) = ctx.recv_f64s(Some(0), i as u64).unwrap();
                    assert_eq!(v, vec![i as f64]);
                }
            }
        });
        let stats = tracker.snapshot();
        assert_eq!(stats.total_messages(), N);
        assert_eq!(stats.channel_messages(), N);
    }

    #[test]
    fn send_to_finished_rank_is_structured_error() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let results = run(2, &tracker, |ctx| {
            if ctx.rank() == 1 {
                // Rank 1 leaves the region immediately; its context (and
                // receiver) drop.
                return Ok(());
            }
            // Rank 0 keeps sending until the peer's channel disconnects.
            loop {
                ctx.send(1, 9, vec![0u8; 8])?;
                std::thread::yield_now();
            }
        });
        assert_eq!(
            results[0],
            Err(SpmdError::PeerDead {
                rank: 0,
                peer: 1,
                tag: 9
            })
        );
    }

    #[test]
    fn recv_timeout_detects_dead_peer() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let results = run(2, &tracker, |ctx| {
            if ctx.rank() == 1 {
                return None; // dies without sending
            }
            Some(ctx.recv_timeout(Some(1), 3, Duration::from_millis(20)))
        });
        match &results[0] {
            Some(Err(SpmdError::RecvTimeout {
                rank: 0,
                src: Some(1),
                tag: 3,
                ..
            })) => {}
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
    }

    #[test]
    fn truncated_f64_payload_is_an_error() {
        let bytes = f64s_to_bytes(&[1.0, 2.0]);
        assert_eq!(bytes_to_f64s(&bytes).unwrap(), vec![1.0, 2.0]);
        assert!(bytes_to_f64s(&[]).unwrap().is_empty());
        assert_eq!(
            bytes_to_f64s(&bytes[..15]),
            Err(SpmdError::TruncatedPayload {
                len: 15,
                elem_bytes: 8
            })
        );
    }

    #[test]
    fn wire_frames_round_trip_with_channel_accounting() {
        let tracker = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0));
        let frame = WireFrameMsg {
            seq: 7,
            elements: 2,
            checksum: 0xDEAD_BEEF,
        };
        let results = run(2, &tracker, |ctx| {
            if ctx.rank() == 0 {
                let payload = f64s_to_bytes(&[3.5, -4.25]);
                ctx.send_wire(1, WIRE_TAG, frame, &payload).unwrap();
                None
            } else {
                Some(
                    ctx.recv_wire(Some(0), WIRE_TAG, Duration::from_secs(5))
                        .unwrap(),
                )
            }
        });
        let (src, got_frame, payload) = results[1].clone().unwrap();
        assert_eq!(src, 0);
        assert_eq!(got_frame, frame);
        assert_eq!(bytes_to_f64s(&payload).unwrap(), vec![3.5, -4.25]);
        let stats = tracker.snapshot();
        // Wire sends count real traffic (payload only) but leave modelled
        // charging to the executor's posted batch.
        assert_eq!(stats.channel_messages(), 1);
        assert_eq!(stats.channel_bytes(), 16);
        assert_eq!(stats.total_messages(), 0);
    }

    #[test]
    fn malformed_wire_frame_is_rejected() {
        assert_eq!(
            WireFrameMsg::from_bytes(&[0u8; 10]),
            Err(SpmdError::MalformedFrame { len: 10 })
        );
        let frame = WireFrameMsg {
            seq: u64::MAX,
            elements: 0,
            checksum: 1,
        };
        assert_eq!(WireFrameMsg::from_bytes(&frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn barrier_and_compute_charging() {
        let mut cost = CostModel::zero();
        cost.compute_per_flop = 1.0;
        let tracker = CommTracker::new(3, cost);
        run(3, &tracker, |ctx| {
            ctx.charge_compute(ctx.rank() * 10);
            ctx.barrier();
        });
        let s = tracker.snapshot();
        assert_eq!(s.max_compute_time(), 20.0);
        assert_eq!(s.total_compute_time(), 30.0);
    }

    #[test]
    fn run_on_pool_matches_fresh_spawn() {
        let pool = crate::pool::WorkerPool::new(4);
        let tracker = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let results = run_on_pool(&pool, 4, &tracker, |ctx| {
            let right = (ctx.rank() + 1) % ctx.num_procs();
            ctx.send_f64s(right, 7, &[ctx.rank() as f64]).unwrap();
            let (src, v) = ctx.recv_f64s(None, 7).unwrap();
            (src, v[0])
        });
        for (rank, (src, v)) in results.iter().enumerate() {
            let left = (rank + 4 - 1) % 4;
            assert_eq!(*src, left);
            assert_eq!(*v, left as f64);
        }
        // A region wider than the pool falls back to fresh spawns rather
        // than deadlocking on a clamped dispatch.
        let wide_tracker = CommTracker::new(6, CostModel::zero());
        let sums = run_on_pool(&pool, 6, &wide_tracker, |ctx| {
            ctx.allreduce_sum(1.0).unwrap()
        });
        assert_eq!(sums, vec![6.0; 6]);
    }

    #[test]
    fn run_partitioned_returns_items_in_order() {
        let tracker = CommTracker::new(4, CostModel::zero());
        let results = run_partitioned(3, &tracker, 10, |ctx, item| {
            assert!(ctx.rank() < 3);
            item * item
        });
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate shapes: no items, and more workers than items.
        let empty: Vec<usize> = run_partitioned(4, &tracker, 0, |_, item| item);
        assert!(empty.is_empty());
        let single = run_partitioned(8, &tracker, 2, |ctx, item| (ctx.num_procs(), item));
        assert_eq!(single, vec![(2, 0), (2, 1)]);
    }

    #[test]
    fn armed_rank_death_kills_victim_and_survivors_degrade() {
        // 4-rank ring under an armed death of rank 2 with a zero-op fuse:
        // the victim's first channel operation is refused, it leaves the
        // region, and every survivor must get a structured error (never a
        // hang) within a small multiple of the timeout.
        let timeout = Duration::from_millis(100);
        let tracker = CommTracker::new(4, CostModel::zero());
        let death = Some(RankDeathSpec {
            victim: 2,
            after_ops: 0,
        });
        let started = Instant::now();
        let results = run_with_death(4, &tracker, death, |ctx| match ctx.rank() {
            // Victim: its very first channel operation is refused.
            2 => ctx.send_f64s(3, 7, &[2.0]).map(|_| 0.0),
            // Waits on the message the victim never sent.
            3 => ctx.recv_timeout(Some(2), 7, timeout).map(|(_, v)| {
                let vals = bytes_to_f64s(&v).unwrap();
                vals[0]
            }),
            // Keeps sending into the victim's channel until it closes.
            1 => loop {
                ctx.send(2, 8, vec![0u8; 8])?;
                std::thread::yield_now();
            },
            _ => Ok(0.0),
        });
        assert!(
            started.elapsed() < 8 * timeout,
            "dead rank must not wedge the region"
        );
        assert_eq!(results[0], Ok(0.0));
        assert_eq!(results[2], Err(SpmdError::RankKilled { rank: 2 }));
        assert_eq!(
            results[1],
            Err(SpmdError::PeerDead {
                rank: 1,
                peer: 2,
                tag: 8
            })
        );
        assert!(matches!(
            results[3],
            Err(SpmdError::RecvTimeout { rank: 3, .. })
        ));
    }

    #[test]
    fn death_fuse_counts_operations_before_firing() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let death = Some(RankDeathSpec {
            victim: 1,
            after_ops: 2,
        });
        let results = run_with_death(2, &tracker, death, |ctx| {
            if ctx.rank() == 0 {
                // Receive the two messages the victim gets out before
                // dying, then observe its death via timeout.
                let a = ctx.recv_timeout(Some(1), 1, Duration::from_secs(5))?;
                let b = ctx.recv_timeout(Some(1), 2, Duration::from_secs(5))?;
                let dead = ctx.recv_timeout(Some(1), 3, Duration::from_millis(50));
                assert!(matches!(dead, Err(SpmdError::RecvTimeout { .. })));
                Ok((a.1.len() + b.1.len()) as f64)
            } else {
                ctx.send(0, 1, vec![1u8; 8])?;
                ctx.send(0, 2, vec![2u8; 8])?;
                ctx.send(0, 3, vec![3u8; 8])?;
                Ok(0.0)
            }
        });
        assert_eq!(results[0], Ok(16.0));
        assert_eq!(results[1], Err(SpmdError::RankKilled { rank: 1 }));
    }

    #[test]
    fn broken_barrier_releases_survivors() {
        // Rank 1 dies before its barrier; survivors at barrier_checked
        // must fail fast with BarrierBroken, long before the timeout.
        let timeout = Duration::from_secs(30);
        let tracker = CommTracker::new(3, CostModel::zero());
        let death = Some(RankDeathSpec {
            victim: 1,
            after_ops: 0,
        });
        let started = Instant::now();
        let results = run_with_death(3, &tracker, death, |ctx| {
            if ctx.rank() == 1 {
                // The victim's fuse fires at its own checked barrier.
                ctx.barrier_checked(timeout)
            } else {
                ctx.barrier_checked(timeout)
            }
        });
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(results[1], Err(SpmdError::RankKilled { rank: 1 }));
        for rank in [0, 2] {
            assert_eq!(results[rank], Err(SpmdError::BarrierBroken { rank }));
        }
    }

    #[test]
    fn barrier_checked_succeeds_and_times_out() {
        let tracker = CommTracker::new(3, CostModel::zero());
        let oks = run(3, &tracker, |ctx| {
            ctx.barrier_checked(Duration::from_secs(5)).is_ok()
        });
        assert_eq!(oks, vec![true; 3]);
        // A lone late rank times out with the barrier pseudo-tag.
        let tracker2 = CommTracker::new(2, CostModel::zero());
        let results = run(2, &tracker2, |ctx| {
            if ctx.rank() == 0 {
                ctx.barrier_checked(Duration::from_millis(30))
            } else {
                // Rank 1 stays busy (no barrier, no exit) past the
                // deadline so the barrier is late but not broken.
                std::thread::sleep(Duration::from_millis(300));
                Ok(())
            }
        });
        assert!(matches!(
            results[0],
            Err(SpmdError::RecvTimeout {
                rank: 0,
                src: None,
                tag: BARRIER_TAG,
                ..
            })
        ));
    }

    #[test]
    fn f64_byte_round_trip() {
        let values = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&values)).unwrap(), values);
        assert!(bytes_to_f64s(&[]).unwrap().is_empty());
    }
}
