//! Interconnect topologies for hop counting.

use serde::{Deserialize, Serialize};

/// The interconnect topology of the simulated machine, used only to count
/// network hops for the optional per-hop latency term of the cost model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of processors is one hop apart (an idealised crossbar).
    Crossbar,
    /// A bidirectional ring of `size` processors.
    Ring {
        /// Number of processors on the ring.
        size: usize,
    },
    /// A 2-D mesh of `rows × cols` processors with Manhattan routing.
    Mesh2D {
        /// Number of mesh rows.
        rows: usize,
        /// Number of mesh columns.
        cols: usize,
    },
    /// A hypercube of `dims` dimensions (2^dims processors); the hop count
    /// is the Hamming distance of the processor ids.
    Hypercube {
        /// Number of hypercube dimensions.
        dims: u32,
    },
}

impl Topology {
    /// A hypercube just large enough for `num_procs` processors — the
    /// iPSC-style default.
    pub fn hypercube_like(num_procs: usize) -> Self {
        let dims = (num_procs.max(1) as f64).log2().ceil() as u32;
        Topology::Hypercube { dims }
    }

    /// Number of network hops between processors `src` and `dst`
    /// (0 when `src == dst`).
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        if src == dst {
            return 0;
        }
        match self {
            Topology::Crossbar => 1,
            Topology::Ring { size } => {
                let size = (*size).max(1);
                let a = src % size;
                let b = dst % size;
                let d = a.abs_diff(b);
                d.min(size - d).max(1)
            }
            Topology::Mesh2D { rows, cols } => {
                let rows = (*rows).max(1);
                let cols = (*cols).max(1);
                let (r1, c1) = (src % rows, (src / rows) % cols);
                let (r2, c2) = (dst % rows, (dst / rows) % cols);
                (r1.abs_diff(r2) + c1.abs_diff(c2)).max(1)
            }
            Topology::Hypercube { .. } => ((src ^ dst).count_ones() as usize).max(1),
        }
    }

    /// The maximum hop count between any two processors of an `n`-processor
    /// machine under this topology.
    pub fn diameter(&self, n: usize) -> usize {
        (0..n)
            .flat_map(|s| (0..n).map(move |d| (s, d)))
            .map(|(s, d)| self.hops(s, d))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_is_single_hop() {
        let t = Topology::Crossbar;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 5), 1);
        assert_eq!(t.diameter(8), 1);
    }

    #[test]
    fn ring_wraps_around() {
        let t = Topology::Ring { size: 8 };
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.diameter(8), 4);
    }

    #[test]
    fn mesh_uses_manhattan_distance() {
        let t = Topology::Mesh2D { rows: 4, cols: 4 };
        // Column-major ids: proc 0 = (0,0), proc 5 = (1,1), proc 15 = (3,3).
        assert_eq!(t.hops(0, 5), 2);
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.diameter(16), 6);
    }

    #[test]
    fn hypercube_uses_hamming_distance() {
        let t = Topology::Hypercube { dims: 4 };
        assert_eq!(t.hops(0b0000, 0b0001), 1);
        assert_eq!(t.hops(0b0000, 0b1111), 4);
        assert_eq!(t.hops(0b1010, 0b1010), 0);
        assert_eq!(
            Topology::hypercube_like(16),
            Topology::Hypercube { dims: 4 }
        );
        assert_eq!(Topology::hypercube_like(9), Topology::Hypercube { dims: 4 });
        assert_eq!(Topology::hypercube_like(1), Topology::Hypercube { dims: 0 });
    }
}
