//! Runtime tracing and metrics: phase spans, monotonic counters, log-scaled
//! latency histograms, Chrome-trace export, and a measured-vs-modelled
//! drift report.
//!
//! The modelled accounting layer ([`CommStats`](crate::CommStats)) says what
//! the simulated machine *charged*; this module says where wall-clock time
//! actually *went*.  Every phase the runtime distinguishes — plan /
//! cache-hit / cache-miss, fuse, wire pack, post, interior compute, unpack
//! stream per destination, wait, retry / fallback / corruption-repair, pool
//! dispatch, translation page fetch, per-statement scope work — can open a
//! [`Phase`]-typed span; spans land in per-lane buffers (one lane per pool
//! rank plus the caller) and feed a metrics registry of counters and
//! power-of-two latency histograms.
//!
//! # Zero cost when disabled
//!
//! Tracing is **off** by default.  Every instrumentation site first checks
//! [`enabled`], a relaxed atomic load; when disabled no label is formatted,
//! no clock is read, and no allocation happens — [`OpenSpan::begin`]
//! returns an inert guard.  Enable with `VF_TRACE=1` in the environment
//! (checked once per process) or programmatically with [`set_enabled`].
//!
//! # Spans
//!
//! ```
//! use vf_machine::trace::{self, Phase};
//! trace::set_enabled(true);
//! {
//!     let _span = vf_machine::span!(Phase::Post, "batch of {} messages", 3);
//!     // ... work ...
//! } // span ends when the guard drops
//! let open = trace::OpenSpan::begin(Phase::Wait); // explicit begin ...
//! open.end(); // ... and end, for split-phase handles
//! assert_eq!(trace::open_spans(), 0);
//! trace::set_enabled(false);
//! trace::reset();
//! ```
//!
//! Dropping a guard without calling [`OpenSpan::end`] still closes the
//! span, so cancelled and fault-degraded paths stay balanced.
//!
//! # Exporters
//!
//! [`TraceSnapshot::to_chrome_json`] renders the Chrome `trace_event`
//! format (loadable in Perfetto / `chrome://tracing`);
//! [`parse_chrome_trace`] parses it back (the vendored `serde` is a no-op
//! marker stub, so serialisation here is hand-rolled and round-trips
//! through its own parser).  [`MetricsReport`] is the machine-readable
//! summary (same style as the `BENCH_*.json` artifacts) and carries the
//! [`DriftReport`] comparing measured span seconds against the modelled
//! seconds in a [`CommStats`](crate::CommStats).

use crate::stats::CommStats;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// The phase kinds the runtime distinguishes.  Each span and counter event
/// is typed by one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Planning a communication schedule from scratch (a plan-cache miss
    /// pays this).
    Plan,
    /// A plan-cache lookup that found a resident plan.
    PlanCacheHit,
    /// A plan-cache lookup that had to plan fresh.
    PlanCacheMiss,
    /// A plan evicted by the cache's byte-budget LRU sweep.
    PlanEvict,
    /// Fusing per-array plans into one message per processor pair.
    Fuse,
    /// Packing a fused wire buffer for one destination.
    WirePack,
    /// Posting a message batch to the tracker.
    Post,
    /// Caller-side interior compute between a split-phase post and wait.
    InteriorCompute,
    /// One destination's copy stream: unpacking its wire buffer(s) or
    /// running plan copies.  In the blocking wire path the span covers the
    /// destination's whole pack → verify → unpack stream; the split
    /// streaming path records one span per arriving pair instead.
    Unpack,
    /// Blocking on in-flight communication.
    Wait,
    /// One retransmission of a faulted send (matches
    /// [`CommStats::retries`](crate::CommStats::retries)).
    Retry,
    /// One injected fault (matches
    /// [`CommStats::faults_injected`](crate::CommStats::faults_injected)).
    Fault,
    /// One degradation-ladder fallback (matches
    /// [`CommStats::fallbacks`](crate::CommStats::fallbacks)).
    Fallback,
    /// Repairing a corrupted wire buffer from the source array.
    CorruptionRepair,
    /// A worker-pool job dispatch (publish → all ranks complete).
    PoolDispatch,
    /// Translation-table page fetches charged to the owner directory.
    PageFetch,
    /// A translation-table invalidation.
    Invalidate,
    /// A whole redistribute operation.
    Redistribute,
    /// A whole gather operation.
    Gather,
    /// A whole scatter operation.
    Scatter,
    /// A whole PARTI-style irregular halo execution.
    HaloExchange,
    /// A whole (possibly fused / wire-packed) ghost exchange.
    GhostExchange,
    /// A language-level statement executed by a `VfScope`.
    Statement,
    /// One application time step.
    Step,
    /// A split-phase handle's in-flight window: post until the unpack is
    /// settled (at the wait or at a cancelling drop).  Caller compute
    /// overlaps this span; its duration bounds the achievable overlap.
    SplitPending,
    /// Writing a checkpoint generation to disk (spans cover the file I/O;
    /// instants carry the byte counts, matching
    /// [`CommStats::ckpt_bytes_written`](crate::CommStats::ckpt_bytes_written)).
    CkptWrite,
    /// Reading a checkpoint generation back during restore (matching
    /// [`CommStats::ckpt_bytes_read`](crate::CommStats::ckpt_bytes_read)).
    CkptRead,
}

/// Number of [`Phase`] kinds.
pub const NUM_PHASES: usize = 27;

impl Phase {
    /// Every phase kind, in declaration order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Plan,
        Phase::PlanCacheHit,
        Phase::PlanCacheMiss,
        Phase::PlanEvict,
        Phase::Fuse,
        Phase::WirePack,
        Phase::Post,
        Phase::InteriorCompute,
        Phase::Unpack,
        Phase::Wait,
        Phase::Retry,
        Phase::Fault,
        Phase::Fallback,
        Phase::CorruptionRepair,
        Phase::PoolDispatch,
        Phase::PageFetch,
        Phase::Invalidate,
        Phase::Redistribute,
        Phase::Gather,
        Phase::Scatter,
        Phase::HaloExchange,
        Phase::GhostExchange,
        Phase::Statement,
        Phase::Step,
        Phase::SplitPending,
        Phase::CkptWrite,
        Phase::CkptRead,
    ];

    /// The stable kebab-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::PlanCacheHit => "plan-cache-hit",
            Phase::PlanCacheMiss => "plan-cache-miss",
            Phase::PlanEvict => "plan-evict",
            Phase::Fuse => "fuse",
            Phase::WirePack => "wire-pack",
            Phase::Post => "post",
            Phase::InteriorCompute => "interior-compute",
            Phase::Unpack => "unpack",
            Phase::Wait => "wait",
            Phase::Retry => "retry",
            Phase::Fault => "fault",
            Phase::Fallback => "fallback",
            Phase::CorruptionRepair => "corruption-repair",
            Phase::PoolDispatch => "pool-dispatch",
            Phase::PageFetch => "page-fetch",
            Phase::Invalidate => "invalidate",
            Phase::Redistribute => "redistribute",
            Phase::Gather => "gather",
            Phase::Scatter => "scatter",
            Phase::HaloExchange => "halo-exchange",
            Phase::GhostExchange => "ghost-exchange",
            Phase::Statement => "statement",
            Phase::Step => "step",
            Phase::SplitPending => "split-pending",
            Phase::CkptWrite => "ckpt-write",
            Phase::CkptRead => "ckpt-read",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).expect("in ALL")
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span (or zero-duration counter event).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The phase kind.
    pub phase: Phase,
    /// Free-form label (empty for unlabelled spans).
    pub label: String,
    /// The lane (Chrome-trace `tid`) the span ran on: lane `0` is the
    /// caller, lanes `1..W` the pool worker ranks, `1000+` other threads.
    pub lane: u32,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for counter events).
    pub dur_ns: u64,
}

/// A span label in its unrendered form.  The hot recording path stores
/// this instead of a formatted `String` so per-pair wire spans cost no
/// allocation or `fmt` machinery at record time; [`snapshot`] renders the
/// text once at export.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Label {
    None,
    Static(&'static str),
    /// Rendered as `"{src}->{dst}"` — the per-pair wire pack/unpack label.
    Pair(u32, u32),
    /// Rendered as `"dest {d}"` — the per-destination wire-copy label.
    Dest(u32),
    Owned(String),
}

impl Label {
    fn render(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Static(s) => (*s).to_string(),
            Label::Pair(s, d) => format!("{s}->{d}"),
            Label::Dest(d) => format!("dest {d}"),
            Label::Owned(s) => s.clone(),
        }
    }
}

/// The compact in-buffer event representation ([`TraceEvent`] minus the
/// rendered label and the lane id, which the owning [`Lane`] carries).
#[derive(Debug)]
struct RawEvent {
    phase: Phase,
    label: Label,
    start_ns: u64,
    dur_ns: u64,
}

// ---------------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// Auxiliary (non-pool, non-caller) threads get lanes starting here.
const AUX_LANE_BASE: u32 = 1000;

struct Lane {
    id: u32,
    events: Mutex<Vec<RawEvent>>,
    // Spans begun-but-not-ended through this lane.  Per-lane so the hot
    // path never touches a shared cacheline; [`open_spans`] sums the
    // lanes (a span ended on a different thread decrements the lane it
    // began on, so individual lanes may transiently read negative — only
    // the sum is meaningful).
    open: AtomicI64,
}

struct Collector {
    epoch: Instant,
    // Leaked (`Box::leak`) so lanes are `&'static` and the recording hot
    // path moves a plain pointer instead of bumping an `Arc` refcount.
    // Bounded: one lane per pool rank, the caller, and each auxiliary
    // thread that ever records — a handful per process lifetime.
    lanes: Mutex<Vec<&'static Lane>>,
    caller_claimed: AtomicBool,
    next_aux: AtomicU32,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
            caller_claimed: AtomicBool::new(false),
            next_aux: AtomicU32::new(0),
        }
    }

    fn lane(&self, id: u32) -> &'static Lane {
        let mut lanes = self.lanes.lock().unwrap();
        if let Some(l) = lanes.iter().find(|l| l.id == id) {
            return l;
        }
        let lane: &'static Lane = Box::leak(Box::new(Lane {
            id,
            events: Mutex::new(Vec::new()),
            open: AtomicI64::new(0),
        }));
        lanes.push(lane);
        lane
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

thread_local! {
    static WANTED_LANE: Cell<Option<u32>> = const { Cell::new(None) };
    static CACHED_LANE: Cell<Option<&'static Lane>> = const { Cell::new(None) };
}

/// Pins the current thread to a trace lane.  The worker pool calls this
/// with the worker's rank so the Chrome export shows one lane per rank;
/// unpinned threads auto-assign (the first becomes lane `0`, the caller).
pub fn set_thread_lane(lane: u32) {
    WANTED_LANE.with(|w| w.set(Some(lane)));
    CACHED_LANE.with(|c| c.set(None));
}

/// The lane id the current thread records to (registers the thread on
/// first use).  Tests use this to filter a snapshot down to their own
/// thread's events.
pub fn current_lane() -> u32 {
    thread_lane().id
}

fn thread_lane() -> &'static Lane {
    CACHED_LANE.with(|c| {
        if let Some(l) = c.get() {
            return l;
        }
        let id = WANTED_LANE.with(|w| w.get()).unwrap_or_else(|| {
            let col = collector();
            if !col.caller_claimed.swap(true, Ordering::Relaxed) {
                0
            } else {
                AUX_LANE_BASE + col.next_aux.fetch_add(1, Ordering::Relaxed)
            }
        });
        let lane = collector().lane(id);
        c.set(Some(lane));
        lane
    })
}

/// Whether tracing is enabled.  The first call per process also honours
/// `VF_TRACE=1` from the environment; afterwards this is a relaxed atomic
/// load — the entire cost of a disabled instrumentation site.
pub fn enabled() -> bool {
    static ENV: Once = Once::new();
    ENV.call_once(|| {
        if let Ok(v) = std::env::var("VF_TRACE") {
            if !v.is_empty() && v != "0" {
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off programmatically (tests and benches prefer this
/// over mutating the process environment, which races parallel tests).
pub fn set_enabled(on: bool) {
    enabled(); // settle the one-time env read first so it cannot overwrite
    ENABLED.store(on, Ordering::Relaxed);
}

/// Number of spans currently begun but not yet ended — zero whenever the
/// instrumented runtime is quiescent, on every path including cancel,
/// drop, and fault degradation.
pub fn open_spans() -> i64 {
    let col = collector();
    let lanes = col.lanes.lock().unwrap();
    lanes.iter().map(|l| l.open.load(Ordering::Relaxed)).sum()
}

/// Clears all recorded events and metrics (tracing stays in its current
/// enabled/disabled state).
pub fn reset() {
    let col = collector();
    for lane in col.lanes.lock().unwrap().iter() {
        lane.events.lock().unwrap().clear();
        lane.open.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Spans and counter events
// ---------------------------------------------------------------------------

/// An in-flight span.  Used both as an RAII guard (the [`span!`](crate::span)
/// macro) and as an explicit begin/end handle carried inside split-phase
/// exchange handles.  Dropping an unended span ends it, so cancelled and
/// fault-degraded paths stay balanced.
#[must_use = "a span measures the scope it lives in"]
#[derive(Default)]
pub struct OpenSpan(Option<OpenInner>);

struct OpenInner {
    phase: Phase,
    label: Label,
    // The lane the span began on — cached so ending needs no TLS lookup
    // and the event lands on the beginning thread's lane even when the
    // guard is carried to (and dropped on) another thread.
    lane: &'static Lane,
    start_ns: u64,
}

impl fmt::Debug for OpenSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("OpenSpan(inert)"),
            Some(i) => write!(f, "OpenSpan({} on lane {})", i.phase, i.lane.id),
        }
    }
}

impl OpenSpan {
    /// Begins an unlabelled span (inert when tracing is disabled).
    pub fn begin(phase: Phase) -> OpenSpan {
        Self::begin_label(phase, || Label::None)
    }

    /// Begins a span whose label is built by `label` — the closure only
    /// runs when tracing is enabled, so disabled sites never format.
    pub fn begin_with(phase: Phase, label: impl FnOnce() -> String) -> OpenSpan {
        Self::begin_label(phase, || Label::Owned(label()))
    }

    /// Begins a span labelled `"{src}->{dst}"` without formatting anything
    /// at record time — the label renders at [`snapshot`].  For the
    /// per-pair wire pack/unpack sites, which are hot enough that `format!`
    /// would dominate the span's own cost.
    pub fn begin_pair(phase: Phase, src: usize, dst: usize) -> OpenSpan {
        Self::begin_label(phase, || Label::Pair(src as u32, dst as u32))
    }

    /// Begins a span with a fixed label, allocation-free at record time.
    pub fn begin_static(phase: Phase, label: &'static str) -> OpenSpan {
        Self::begin_label(phase, || Label::Static(label))
    }

    /// Begins a span labelled `"dest {d}"` without formatting at record
    /// time — the per-destination wire-copy and wait label.
    pub fn begin_dest(phase: Phase, dest: usize) -> OpenSpan {
        Self::begin_label(phase, || Label::Dest(dest as u32))
    }

    fn begin_label(phase: Phase, label: impl FnOnce() -> Label) -> OpenSpan {
        if !enabled() {
            return OpenSpan(None);
        }
        let lane = thread_lane();
        lane.open.fetch_add(1, Ordering::Relaxed);
        OpenSpan(Some(OpenInner {
            phase,
            label: label(),
            lane,
            start_ns: collector().now_ns(),
        }))
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Ends the span explicitly (equivalent to dropping it).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(inner) = self.0.take() {
            let dur_ns = collector().now_ns().saturating_sub(inner.start_ns);
            inner.lane.events.lock().unwrap().push(RawEvent {
                phase: inner.phase,
                label: inner.label,
                start_ns: inner.start_ns,
                dur_ns,
            });
            inner.lane.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for OpenSpan {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Records one zero-duration counter event.
pub fn instant(phase: Phase) {
    instant_n(phase, 1);
}

/// Records `n` zero-duration counter events (used where the runtime counts
/// in batches, e.g. `record_retries(n)` — one trace event per counted
/// retry keeps trace counts equal to [`CommStats`](crate::CommStats)
/// counters by construction).
pub fn instant_n(phase: Phase, n: usize) {
    if n == 0 || !enabled() {
        return;
    }
    let col = collector();
    let lane = thread_lane();
    let start_ns = col.now_ns();
    let mut events = lane.events.lock().unwrap();
    for _ in 0..n {
        events.push(RawEvent {
            phase,
            label: Label::None,
            start_ns,
            dur_ns: 0,
        });
    }
}

/// Opens a span.  `span!(phase)` or `span!(phase, "fmt {}", args)`; the
/// format arguments are only evaluated when tracing is enabled.  Returns
/// an [`OpenSpan`](crate::trace::OpenSpan) guard.
#[macro_export]
macro_rules! span {
    ($phase:expr) => {
        $crate::trace::OpenSpan::begin($phase)
    };
    ($phase:expr, $($fmt:tt)+) => {
        $crate::trace::OpenSpan::begin_with($phase, || format!($($fmt)+))
    };
}

// ---------------------------------------------------------------------------
// Histograms and metrics
// ---------------------------------------------------------------------------

/// Number of power-of-two latency buckets (bucket `i > 0` covers
/// `[2^(i-1), 2^i)` nanoseconds; bucket 0 is exactly zero).
pub const HIST_BUCKETS: usize = 48;

/// A log-scaled (power-of-two bucket) latency histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
    }

    /// Total number of recorded durations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`).  The estimate is the
    /// geometric midpoint of the bucket holding the target rank, so it is
    /// within a factor of two of the exact order statistic.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    lo + lo / 2
                };
            }
        }
        0
    }
}

/// Aggregated metrics for one phase kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// The phase.
    pub phase: Phase,
    /// Number of spans / counter events recorded.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Estimated median latency (ns).
    pub p50_ns: u64,
    /// Estimated 95th-percentile latency (ns).
    pub p95_ns: u64,
    /// Estimated 99th-percentile latency (ns).
    pub p99_ns: u64,
}

impl PhaseMetrics {
    /// Total measured seconds in this phase.
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// A point-in-time copy of the metrics registry (non-empty phases only).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-phase aggregates, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseMetrics>,
}

impl MetricsSnapshot {
    /// The aggregate row for `phase`, if it recorded anything.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|m| m.phase == phase)
    }

    /// Event/span count for `phase` (zero when absent).
    pub fn count(&self, phase: Phase) -> u64 {
        self.phase(phase).map(|m| m.count).unwrap_or(0)
    }

    /// Total measured seconds for `phase` (zero when absent).
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.phase(phase).map(|m| m.seconds()).unwrap_or(0.0)
    }
}

/// Aggregates the metrics from the recorded events (cheaper than
/// [`snapshot`]: no label rendering).  Aggregation happens here, at
/// report time, rather than as per-event atomic tallies on the recording
/// hot path.
pub fn metrics() -> MetricsSnapshot {
    let col = collector();
    let mut counts = [0u64; NUM_PHASES];
    let mut total_ns = [0u64; NUM_PHASES];
    let mut hists: Vec<Histogram> = vec![Histogram::new(); NUM_PHASES];
    for lane in col.lanes.lock().unwrap().iter() {
        for ev in lane.events.lock().unwrap().iter() {
            let i = ev.phase.index();
            counts[i] += 1;
            total_ns[i] += ev.dur_ns;
            hists[i].record(ev.dur_ns);
        }
    }
    let mut phases = Vec::new();
    for (i, &phase) in Phase::ALL.iter().enumerate() {
        if counts[i] == 0 {
            continue;
        }
        phases.push(PhaseMetrics {
            phase,
            count: counts[i],
            total_ns: total_ns[i],
            p50_ns: hists[i].percentile(0.50),
            p95_ns: hists[i].percentile(0.95),
            p99_ns: hists[i].percentile(0.99),
        });
    }
    MetricsSnapshot { phases }
}

// ---------------------------------------------------------------------------
// Snapshots and Chrome-trace export
// ---------------------------------------------------------------------------

/// All recorded events plus the metrics registry, at one point in time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// Every recorded span / counter event, ordered by start time.
    pub events: Vec<TraceEvent>,
    /// The aggregated metrics.
    pub metrics: MetricsSnapshot,
}

impl TraceSnapshot {
    /// Number of events of the given phase.
    pub fn count(&self, phase: Phase) -> usize {
        self.events.iter().filter(|e| e.phase == phase).count()
    }

    /// The multiset of `(phase, label)` pairs, sorted — timestamp-free, so
    /// two runs of a deterministic workload compare equal.
    pub fn shape(&self) -> Vec<(Phase, String)> {
        let mut shape: Vec<(Phase, String)> = self
            .events
            .iter()
            .map(|e| (e.phase, e.label.clone()))
            .collect();
        shape.sort();
        shape
    }

    /// Renders the Chrome `trace_event` JSON format: open the file in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.  One
    /// `tid` lane per pool rank plus the caller (lane 0).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // ts/dur are microseconds; three decimals keep exact ns.
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"vf\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"label\":\"{}\"}}}}",
                ev.phase.name(),
                ev.start_ns / 1000,
                ev.start_ns % 1000,
                ev.dur_ns / 1000,
                ev.dur_ns % 1000,
                ev.lane,
                escape_json(&ev.label),
            ));
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Copies out all recorded events (sorted by start time) and metrics.
/// Labels recorded in deferred form (e.g. [`OpenSpan::begin_pair`]) are
/// rendered to text here.
pub fn snapshot() -> TraceSnapshot {
    let col = collector();
    let mut events = Vec::new();
    for lane in col.lanes.lock().unwrap().iter() {
        events.extend(lane.events.lock().unwrap().iter().map(|ev| TraceEvent {
            phase: ev.phase,
            label: ev.label.render(),
            lane: lane.id,
            start_ns: ev.start_ns,
            dur_ns: ev.dur_ns,
        }));
    }
    events.sort_by(|a, b| {
        (a.start_ns, a.lane, a.phase)
            .partial_cmp(&(b.start_ns, b.lane, b.phase))
            .unwrap()
    });
    TraceSnapshot {
        events,
        metrics: metrics(),
    }
}

/// [`snapshot`] followed by [`reset`].
pub fn take() -> TraceSnapshot {
    let snap = snapshot();
    reset();
    snap
}

/// Writes the current snapshot as Chrome-trace JSON to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_chrome_json())
}

/// When tracing is enabled, writes the Chrome trace to `VF_TRACE_OUT`
/// (default `trace.json`) and returns the path written.  Call this at the
/// end of a program that wants `VF_TRACE=1` runs to leave a trace behind.
pub fn write_chrome_trace_if_env() -> std::io::Result<Option<String>> {
    if !enabled() {
        return Ok(None);
    }
    let path = std::env::var("VF_TRACE_OUT").unwrap_or_else(|_| "trace.json".into());
    write_chrome_trace(std::path::Path::new(&path))?;
    Ok(Some(path))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON parsing (round-trip)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses Chrome `trace_event` JSON (as produced by
/// [`TraceSnapshot::to_chrome_json`]) back into events.  Returns an error
/// if the text is not valid JSON, is missing the `traceEvents` array, or
/// names a phase this build does not know.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut parser = JsonParser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    let events = root.get("traceEvents").ok_or("missing traceEvents array")?;
    let Json::Arr(items) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event without name")?;
        let phase = Phase::from_name(name).ok_or_else(|| format!("unknown phase '{name}'"))?;
        // A missing or non-numeric `ts`/`dur` is a corrupt event; mapping
        // it to 0 would round-trip the corruption "successfully" as a
        // zeroed span, so reject it instead.
        let us_to_ns = |field: &str| -> Result<u64, String> {
            let v = item
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event '{name}' has a missing or non-numeric '{field}'"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("event '{name}' has an invalid '{field}' ({v})"));
            }
            Ok((v * 1000.0).round() as u64)
        };
        out.push(TraceEvent {
            phase,
            label: item
                .get("args")
                .and_then(|a| a.get("label"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            lane: item.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            start_ns: us_to_ns("ts")?,
            dur_ns: us_to_ns("dur")?,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Drift report and metrics report
// ---------------------------------------------------------------------------

/// One measured-vs-modelled comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftRow {
    /// What is being compared.
    pub name: String,
    /// Wall-clock seconds measured by trace spans (or the tracker's
    /// measured overlap).
    pub measured_seconds: f64,
    /// Seconds the cost model charged (credited) for the same work.
    pub modelled_seconds: f64,
}

impl DriftRow {
    /// `measured / modelled` (infinite when nothing was modelled but
    /// something was measured; 1.0 when both are zero).
    pub fn ratio(&self) -> f64 {
        if self.modelled_seconds == 0.0 {
            if self.measured_seconds == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured_seconds / self.modelled_seconds
        }
    }
}

/// Measured span seconds per phase next to the modelled (credited) seconds
/// in a [`CommStats`](crate::CommStats) — PR 6's measured-vs-credited
/// overlap idea as a stack-wide invariant.  The modelled side simulates
/// the configured machine (e.g. an iPSC/860), so the *ratio* is the
/// interesting signal: it should be stable across runs of the same
/// workload, and a jump flags either a runtime regression or a cost-model
/// drift.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Comparison rows.
    pub rows: Vec<DriftRow>,
}

impl DriftReport {
    /// Builds the report from a metrics snapshot and the modelled stats.
    pub fn compare(metrics: &MetricsSnapshot, stats: &CommStats) -> DriftReport {
        let rows = vec![
            DriftRow {
                name: "comm (post+wait)".into(),
                measured_seconds: metrics.seconds(Phase::Post) + metrics.seconds(Phase::Wait),
                modelled_seconds: stats.total_comm_time(),
            },
            DriftRow {
                name: "compute (interior)".into(),
                measured_seconds: metrics.seconds(Phase::InteriorCompute),
                modelled_seconds: stats.total_compute_time(),
            },
            DriftRow {
                name: "copy (pack+unpack)".into(),
                measured_seconds: metrics.seconds(Phase::WirePack) + metrics.seconds(Phase::Unpack),
                modelled_seconds: 0.0,
            },
            DriftRow {
                name: "overlap (measured/credited)".into(),
                measured_seconds: stats.measured_overlap_seconds(),
                modelled_seconds: stats.credited_overlap_seconds(),
            },
            DriftRow {
                name: "ckpt io (write+read)".into(),
                measured_seconds: metrics.seconds(Phase::CkptWrite)
                    + metrics.seconds(Phase::CkptRead),
                modelled_seconds: 0.0,
            },
        ];
        DriftReport { rows }
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>14} {:>14} {:>8}",
            "drift", "measured", "modelled", "ratio"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<28} {:>12.3e}s {:>12.3e}s {:>8.3}",
                row.name,
                row.measured_seconds,
                row.modelled_seconds,
                row.ratio()
            )?;
        }
        Ok(())
    }
}

/// The machine-readable metrics summary: per-phase counts, totals and
/// percentiles plus the [`DriftReport`] — same spirit as the
/// `BENCH_*.json` artifacts.  Render with [`MetricsReport::to_json`] or
/// `{}` (a human-readable profile table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Number of simulated processors of the machine that produced the
    /// modelled side.
    pub num_procs: usize,
    /// Per-phase aggregates (non-empty phases only).
    pub phases: Vec<PhaseMetrics>,
    /// Measured-vs-modelled comparison.
    pub drift: DriftReport,
}

impl MetricsReport {
    /// Builds the report from the global trace metrics and modelled stats.
    pub fn new(num_procs: usize, stats: &CommStats) -> MetricsReport {
        let snapshot = metrics();
        let drift = DriftReport::compare(&snapshot, stats);
        MetricsReport {
            num_procs,
            phases: snapshot.phases,
            drift,
        }
    }

    /// Renders the report as JSON (`phase name → count/total_ns/p50/…`,
    /// plus a `drift` section).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"num_procs\": {},\n", self.num_procs));
        out.push_str("  \"phases\": {\n");
        for (i, m) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{ \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {} }}{}\n",
                m.phase.name(),
                m.count,
                m.total_ns,
                m.p50_ns,
                m.p95_ns,
                m.p99_ns,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"drift\": {\n");
        for (i, row) in self.drift.rows.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{ \"measured_seconds\": {:e}, \"modelled_seconds\": {:e}, \"ratio\": {:e} }}{}\n",
                escape_json(&row.name),
                row.measured_seconds,
                row.modelled_seconds,
                row.ratio(),
                if i + 1 < self.drift.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "phase", "count", "total", "p50", "p95", "p99"
        )?;
        for m in &self.phases {
            writeln!(
                f,
                "{:<18} {:>8} {:>10.3}ms {:>8.1}us {:>8.1}us {:>8.1}us",
                m.phase.name(),
                m.count,
                m.total_ns as f64 / 1e6,
                m.p50_ns as f64 / 1e3,
                m.p95_ns as f64 / 1e3,
                m.p99_ns as f64 / 1e3,
            )?;
        }
        writeln!(f)?;
        self.drift.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The collector is process-global: tests that enable tracing must not
    // interleave.
    static GUARD: StdMutex<()> = StdMutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = exclusive();
        set_enabled(false);
        reset();
        let span = OpenSpan::begin(Phase::Post);
        assert!(!span.is_recording());
        span.end();
        instant_n(Phase::Retry, 5);
        let snap = snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.metrics.phases.is_empty());
        assert_eq!(open_spans(), 0);
    }

    #[test]
    fn chrome_json_round_trips() {
        // Constructed events (no global state): live-span round-trips are
        // covered by the integration suite, which owns the collector.
        let events = vec![
            TraceEvent {
                phase: Phase::WirePack,
                label: "dst 3 \"quoted\"\n\ttab".into(),
                lane: 0,
                start_ns: 1_234_567,
                dur_ns: 89_001,
            },
            TraceEvent {
                phase: Phase::Retry,
                label: String::new(),
                lane: 1003,
                start_ns: 2_000_000_001,
                dur_ns: 0,
            },
        ];
        let snap = TraceSnapshot {
            events: events.clone(),
            metrics: MetricsSnapshot::default(),
        };
        let parsed = parse_chrome_trace(&snap.to_chrome_json()).expect("round trip parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"no-such-phase\",\"ts\":0,\"dur\":0,\"tid\":0}]}"
        )
        .is_err());
    }

    #[test]
    fn parse_rejects_malformed_timestamps() {
        // Corrupt events must not round-trip "successfully" as zeroed
        // spans: missing ts, missing dur, and non-numeric values are all
        // parse errors.
        let make = |ts_dur: &str| {
            format!("{{\"traceEvents\":[{{\"name\":\"retry\",{ts_dur}\"tid\":0}}]}}")
        };
        let missing_ts = make("\"dur\":1,");
        let err = parse_chrome_trace(&missing_ts).unwrap_err();
        assert!(err.contains("'ts'"), "unexpected error: {err}");
        let missing_dur = make("\"ts\":1,");
        let err = parse_chrome_trace(&missing_dur).unwrap_err();
        assert!(err.contains("'dur'"), "unexpected error: {err}");
        let non_numeric = make("\"ts\":\"soon\",\"dur\":1,");
        assert!(parse_chrome_trace(&non_numeric).is_err());
        let negative = make("\"ts\":-5,\"dur\":1,");
        assert!(parse_chrome_trace(&negative).is_err());
        // A well-formed event with the same shape still parses.
        let good = make("\"ts\":1.5,\"dur\":0.001,");
        let parsed = parse_chrome_trace(&good).expect("well-formed event parses");
        assert_eq!(parsed[0].start_ns, 1_500);
        assert_eq!(parsed[0].dur_ns, 1);
    }

    #[test]
    fn histogram_percentiles_match_naive_oracle() {
        let mut hist = Histogram::new();
        let mut values: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            // A deterministic spread over five decades.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            let v = (x >> 33) % 100_000_000;
            values.push(v);
            hist.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1].max(1) as f64;
            let est = hist.percentile(q).max(1) as f64;
            let ratio = est / exact;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "p{q}: est {est} vs exact {exact} (ratio {ratio})"
            );
        }
        assert_eq!(hist.count(), 1000);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("bogus"), None);
        assert_eq!(Phase::ALL.len(), NUM_PHASES);
    }

    #[test]
    fn drift_report_compares_measured_and_modelled() {
        let mut stats = CommStats::new(2);
        stats.record_measured_overlap(0.5);
        stats.record_credited_overlap(0.25);
        let snap = MetricsSnapshot::default();
        let report = DriftReport::compare(&snap, &stats);
        let overlap = report
            .rows
            .iter()
            .find(|r| r.name.starts_with("overlap"))
            .unwrap();
        assert_eq!(overlap.measured_seconds, 0.5);
        assert_eq!(overlap.modelled_seconds, 0.25);
        assert_eq!(overlap.ratio(), 2.0);
        let text = format!("{report}");
        assert!(text.contains("measured") && text.contains("modelled"));
    }
}
