//! A persistent pool of parked SPMD worker threads.
//!
//! [`spmd::run_partitioned`](crate::spmd::run_partitioned) pays a full
//! harness setup — fresh OS threads, channels, a barrier — on *every* call,
//! even though the plan-executor copy closures it drives never touch a
//! channel.  For plans near the serial cutoff that setup costs as much as
//! the memcpy work itself, which is why the threaded executor needed a
//! large serial cutoff at all.  A [`WorkerPool`] keeps the workers alive
//! across calls instead: threads are spawned once, park between jobs, and
//! a job submission is an epoch bump plus one unpark per spawned worker —
//! no spawn, no channel allocation, no join.  The submitting thread
//! itself is logical rank 0 and runs its own share of every job instead
//! of parking idle (caller participation), so a `W`-wide pool wakes only
//! `W - 1` threads.
//!
//! ## Job handoff (seqlock-style epoch publication)
//!
//! Submission is lock-free on the hot path: the submitting thread writes a
//! type-erased borrow of the job closure into the shared job cell, then
//! *publishes* it by bumping an atomic epoch with `Release` ordering and
//! unparking every worker.  A worker observes the new epoch with `Acquire`
//! (the seqlock read side: epoch first, payload after), runs the job once,
//! and decrements the outstanding-worker count; the last finisher unparks
//! the submitter.  The submitting thread **blocks until every worker has
//! reported completion**, so handing the workers a *borrowed*
//! (non-`'static`) closure is sound — the same scoped-borrow argument
//! `std::thread::scope` makes, applied to pre-existing threads.  The
//! `unsafe` in this module is confined to that argument: the lifetime
//! erasure of the job borrow and the job cell it is published through.
//!
//! ## Right-sized wakes and split-phase submission
//!
//! Dispatches carry a *width*: [`WorkerPool::run_limited`] (and
//! [`WorkerPool::run_partitioned`], which sizes the width to
//! `min(workers, items)`) wakes only the threads whose rank participates,
//! so a job with two items on an eight-wide pool pays one unpark, not
//! seven.  [`WorkerPool::submit`] additionally decouples posting a job
//! from completing it: the woken workers stream through the job while the
//! submitting thread runs unrelated local work, and the returned
//! [`JobTicket`] runs rank 0's share and blocks only when the results are
//! actually needed — the mechanism behind split-phase (post → interior
//! compute → wait) plan execution.
//!
//! ## Panics and shutdown
//!
//! A panicking job closure never kills a worker: panics are caught on the
//! worker, counted, and re-raised on the *submitting* thread once the job
//! completes on the remaining workers — the pool itself stays usable for
//! subsequent jobs.  Dropping the last handle to a pool wakes the workers
//! with a shutdown flag and joins them.

#![allow(unsafe_code)] // scoped job handoff: lifetime erasure + job cell, see above

use crate::CommTracker;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::{JoinHandle, Thread};

/// The type-erased job borrow workers execute: called once per worker with
/// the worker's rank.  The `'static` bound is a lie told to the type
/// system; see the module docs for why it is sound.
type Job = &'static (dyn Fn(usize) + Sync);

/// The published-job cell of the seqlock handoff.  Only the submitting
/// thread writes it (serialised by the submit mutex, and only while no
/// worker is running — `remaining == 0`); workers read it only after
/// observing the epoch bump that happens-after the write.
struct JobCell(UnsafeCell<Option<Job>>);

// SAFETY: the epoch protocol (write → `Release` epoch bump → `Acquire`
// epoch read → read) orders every read after the write it observes, and
// writes never overlap reads (the submitter waits for `remaining == 0`
// before writing again).
unsafe impl Sync for JobCell {}

struct Inner {
    /// Bumped once per submitted job (`Release`); workers re-run nothing
    /// for an epoch they have already seen.
    epoch: AtomicU64,
    /// Logical width of the current job: only ranks `0..width` run it.
    /// Written before the epoch bump that publishes the job, so any worker
    /// that observes the new epoch also observes the width and can re-park
    /// without touching `remaining` when its rank is outside the job.
    width: AtomicUsize,
    /// The current job, published by the epoch bump.
    job: JobCell,
    /// Workers that have not yet finished the current job.
    remaining: AtomicUsize,
    /// Workers whose job closure panicked during the current job.
    panicked: AtomicUsize,
    /// The first caught panic payload of the current job, re-raised on the
    /// submitting thread so the original message and location survive.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Set once, on drop: workers exit instead of parking.
    shutdown: AtomicBool,
    /// The submitting thread, unparked by the last finisher.
    submitter: Mutex<Option<Thread>>,
}

/// A fixed-size pool of parked SPMD worker threads executing one job at a
/// time (see the module docs for the handoff protocol).
///
/// The pool is shared by cloning an `Arc<WorkerPool>`; the process-wide
/// default pool is [`global`].  One pool runs one job at a time —
/// concurrent submitters queue on an internal mutex — and a job must never
/// submit to its own pool (that would deadlock, exactly like joining a
/// thread from itself).
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: usize,
    /// Parked worker thread handles, for the wake-up unparks.
    threads: Vec<Thread>,
    /// Jobs dispatched so far (pool-reuse diagnostics for tests/benches).
    jobs: AtomicU64,
    /// Serialises submissions: one job owns the epoch protocol at a time.
    submit: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("jobs", &self.jobs.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `workers` logical workers (`workers` is clamped
    /// to at least 1).  Rank 0 is the **submitting thread itself** —
    /// [`WorkerPool::run`] executes rank 0's share inline instead of
    /// parking idle, so only `workers - 1` OS threads are spawned and a
    /// dispatch wakes one thread fewer than the logical width (a
    /// single-worker pool spawns no threads at all and degrades to an
    /// inline call).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            epoch: AtomicU64::new(0),
            width: AtomicUsize::new(0),
            job: JobCell(UnsafeCell::new(None)),
            remaining: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            panic_payload: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            submitter: Mutex::new(None),
        });
        let handles: Vec<JoinHandle<()>> = (1..workers)
            .map(|rank| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("vf-pool-{rank}"))
                    .spawn(move || worker_loop(&inner, rank))
                    .expect("spawn pool worker thread")
            })
            .collect();
        let threads = handles.iter().map(|h| h.thread().clone()).collect();
        Self {
            inner,
            workers,
            threads,
            jobs: AtomicU64::new(0),
            submit: Mutex::new(()),
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs dispatched since the pool was created — lets tests and benches
    /// assert that repeated executes reuse one pool instead of spawning.
    pub fn jobs_dispatched(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Runs `job` once on every worker (argument: the worker's rank,
    /// `0..workers`), blocking until all workers have finished.
    ///
    /// If any worker's closure panics the panic is re-raised here after the
    /// job completes on the remaining workers; the pool stays usable.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        self.run_limited(self.workers, job);
    }

    /// Runs `job` once on ranks `0..min(width, workers)` only, waking only
    /// the `width - 1` threads that participate — right-sized wakes, so a
    /// job with few independent items on a wide pool does not pay a
    /// full-pool wake (and full-pool contention) for ranks that would find
    /// nothing to do.
    ///
    /// Panic semantics match [`WorkerPool::run`].
    pub fn run_limited(&self, width: usize, job: &(dyn Fn(usize) + Sync)) {
        let width = width.clamp(1, self.workers);
        let _span = crate::span!(crate::trace::Phase::PoolDispatch, "run w{width}");
        let _turn = self.submit.lock().unwrap_or_else(PoisonError::into_inner);
        // SAFETY: `run_limited` blocks below until every participating
        // worker has decremented `remaining`, i.e. until no worker can
        // dereference the erased borrow again (a worker only picks a job
        // up together with a *new* epoch).  The borrow therefore outlives
        // every use, exactly as with scoped threads; only the type-system
        // lifetime is erased.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        self.publish(width, job);
        // Caller participation: the submitting thread is rank 0 and runs
        // its share while the woken workers run theirs.
        let inline = catch_unwind(AssertUnwindSafe(|| job(0)));
        self.complete(inline);
    }

    /// Publishes `job` to ranks `1..width` (the submitting thread is rank
    /// 0 and is not woken).  Requires the submit mutex to be held and no
    /// job outstanding.
    fn publish(&self, width: usize, job: Job) {
        assert!(
            !self.inner.shutdown.load(Ordering::Acquire),
            "worker pool already shut down"
        );
        debug_assert_eq!(self.inner.remaining.load(Ordering::Acquire), 0);
        *self
            .inner
            .submitter
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(std::thread::current());
        self.inner.panicked.store(0, Ordering::Relaxed);
        self.inner.remaining.store(width - 1, Ordering::Relaxed);
        self.inner.width.store(width, Ordering::Relaxed);
        if width == 1 {
            // Rank 0 only: nothing to publish, nobody to wake.
            return;
        }
        // SAFETY: no worker is running (`remaining` was 0 and only this
        // thread, holding the submit mutex, starts jobs), so writing the
        // job cell cannot race a read; the epoch bump below publishes it
        // (and the width store above) to every worker that observes it.
        unsafe { *self.inner.job.0.get() = Some(job) };
        self.inner.epoch.fetch_add(1, Ordering::Release);
        for t in &self.threads[..width - 1] {
            t.unpark();
        }
    }

    /// Blocks until every participating worker has finished the current
    /// job, then re-raises panics (rank 0's own outcome is `inline`).
    fn complete(&self, inline: std::thread::Result<()>) {
        while self.inner.remaining.load(Ordering::Acquire) > 0 {
            std::thread::park();
        }
        let worker_panics = self.inner.panicked.load(Ordering::Relaxed);
        let stored = self
            .inner
            .panic_payload
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        self.jobs.fetch_add(1, Ordering::Relaxed);
        // Re-raise with the original payload so the panic message and
        // location of the failing closure survive (rank 0's own panic
        // first, then the first worker payload).
        if let Err(payload) = inline {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = stored {
            std::panic::resume_unwind(payload);
        }
        assert!(
            worker_panics == 0,
            "{worker_panics} worker(s) panicked in an SPMD pool job"
        );
    }

    /// Starts `job` on ranks `1..min(width, workers)` **without blocking**
    /// and returns a [`JobTicket`] that completes the job.  This is the
    /// split-phase submission path: the caller posts the job, runs
    /// unrelated local work while the woken workers stream through it, and
    /// calls [`JobTicket::wait`] when it needs the results — rank 0's share
    /// of the job runs at the wait (work-steal help), so `job` must be
    /// written claim-based: every rank drains a shared item queue rather
    /// than owning a fixed slice.
    ///
    /// The ticket holds the pool's submission turn until it is waited or
    /// dropped, so the submitting thread **must not** submit or run another
    /// job on the same pool while a ticket is outstanding (that would
    /// deadlock, exactly like joining a thread from itself).  Dropping the
    /// ticket without calling `wait` completes the job too (including rank
    /// 0's share).
    pub fn submit(&self, width: usize, job: Arc<dyn Fn(usize) + Send + Sync>) -> JobTicket<'_> {
        let width = width.clamp(1, self.workers);
        let span = crate::span!(crate::trace::Phase::PoolDispatch, "submit w{width}");
        let turn = self.submit.lock().unwrap_or_else(PoisonError::into_inner);
        // SAFETY: the erased borrow points into the `Arc`'s heap
        // allocation, which the returned ticket keeps alive; the ticket's
        // wait/drop blocks until every participating worker has
        // decremented `remaining`, so no worker dereferences the borrow
        // after the allocation could be freed.  Leaking the ticket leaks
        // the `Arc` (and the submission turn), which keeps the borrow
        // valid forever — a deadlocked pool, but no dangling reference.
        let erased: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&*job)
        };
        self.publish(width, erased);
        span.end(); // the publish/wake only; the job itself runs detached
        JobTicket {
            pool: self,
            _turn: turn,
            job: Some(job),
        }
    }

    /// Runs `num_items` independent work items over the pool's workers
    /// (round-robin by item index) and returns the results in item order —
    /// the persistent-pool counterpart of
    /// [`spmd::run_partitioned`](crate::spmd::run_partitioned), with the
    /// same closure shape so existing copy closures run unchanged.
    ///
    /// `tracker` is the machine context the items are accounted against
    /// (exposed through [`WorkerCtx::charge_compute`]); the dispatch itself
    /// charges nothing.
    pub fn run_partitioned<R, F>(&self, tracker: &CommTracker, num_items: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut WorkerCtx<'_>, usize) -> R + Sync,
    {
        if num_items == 0 {
            return Vec::new();
        }
        // Right-sized wake: a job with fewer items than workers only wakes
        // the ranks that have an item to run.
        let workers = self.workers.min(num_items);
        let slots: Vec<Mutex<Vec<(usize, R)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        self.run_limited(workers, &|rank| {
            let mut ctx = WorkerCtx {
                rank,
                workers,
                tracker,
            };
            let mut out = Vec::new();
            let mut item = rank;
            while item < num_items {
                out.push((item, work(&mut ctx, item)));
                item += workers;
            }
            *slots[rank].lock().unwrap_or_else(PoisonError::into_inner) = out;
        });
        let mut results: Vec<Option<R>> = (0..num_items).map(|_| None).collect();
        for slot in slots {
            for (item, r) in slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                results[item] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every item is assigned to exactly one worker"))
            .collect()
    }
}

/// A handle to a job started with [`WorkerPool::submit`] but not yet
/// completed.  Holds the pool's submission turn (so it is `!Send`: the
/// waiter is always the submitter) and the job closure's owning `Arc` (so
/// the borrow published to the workers outlives every use even if the
/// ticket is leaked).
#[must_use = "a submitted job completes when the ticket is waited or dropped"]
pub struct JobTicket<'a> {
    pool: &'a WorkerPool,
    _turn: std::sync::MutexGuard<'a, ()>,
    job: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl JobTicket<'_> {
    /// Runs rank 0's share of the job (work-steal help), blocks until
    /// every participating worker has finished, and re-raises any panic
    /// the job closures produced — the split-phase counterpart of the
    /// blocking return from [`WorkerPool::run`].
    pub fn wait(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let Some(job) = self.job.take() else {
            return;
        };
        let inline = catch_unwind(AssertUnwindSafe(|| job(0)));
        if std::thread::panicking() {
            // Dropped during an unwind: still complete the job so the
            // workers never outlive the shared state, but swallow the
            // outcome — a second panic would abort.
            while self.pool.inner.remaining.load(Ordering::Acquire) > 0 {
                std::thread::park();
            }
            self.pool
                .inner
                .panic_payload
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            self.pool.jobs.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.pool.complete(inline);
    }
}

impl Drop for JobTicket<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for t in &self.threads {
            t.unpark();
        }
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner, rank: usize) {
    // One trace lane per pool rank (the submitting caller is rank 0 and
    // traces on lane 0), so a Chrome trace shows the pool's real shape.
    crate::trace::set_thread_lane(rank as u32);
    let mut seen = 0u64;
    loop {
        // Park until a new epoch is published (or shutdown).  `park` may
        // return spuriously or on a stale token; the loop re-checks.
        let epoch = loop {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            let e = inner.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            std::thread::park();
        };
        seen = epoch;
        // The width store happens-before the `Release` epoch bump, so this
        // `Relaxed` load (after the `Acquire` epoch read) sees the job's
        // width.  Ranks outside the job re-park without touching
        // `remaining` — a spuriously woken bystander must not run the job
        // (or underflow the completion count) of a narrower dispatch.
        if rank >= inner.width.load(Ordering::Relaxed) {
            continue;
        }
        // SAFETY: the `Acquire` epoch read above synchronises with the
        // submitter's `Release` bump, which happens-after the job cell
        // write; the cell is not rewritten until this worker (and all
        // others) decrement `remaining` below.
        let job = unsafe { (*inner.job.0.get()).expect("epoch bump publishes a job") };
        // A panicking job must not kill the worker: keep the first payload
        // for the submitting thread to re-raise with the original message.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(rank))) {
            inner.panicked.fetch_add(1, Ordering::Relaxed);
            let mut slot = inner
                .panic_payload
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if inner.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last finisher wakes the submitter.
            if let Some(submitter) = inner
                .submitter
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .as_ref()
            {
                submitter.unpark();
            }
        }
    }
}

/// Per-worker context handed to [`WorkerPool::run_partitioned`] closures —
/// the pool counterpart of [`crate::spmd::ProcCtx`] for embarrassingly
/// parallel work items (no channels: pool jobs do not message each other).
pub struct WorkerCtx<'a> {
    rank: usize,
    workers: usize,
    tracker: &'a CommTracker,
}

impl WorkerCtx<'_> {
    /// This worker's rank (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// The communication tracker of the submitting execution.
    pub fn tracker(&self) -> &CommTracker {
        self.tracker
    }

    /// Charges `flops` floating-point operations of local work to
    /// simulated processor `proc` in the cost model.
    pub fn charge_compute(&self, proc: usize, flops: usize) {
        self.tracker.compute(proc, flops);
    }
}

/// The process-wide shared worker pool, sized to the host's available
/// parallelism and created on first use.  Scopes and applications all
/// submit to this one pool, so iterative codes (ADI sweeps, smoothing
/// steps, PIC steps, mesh sweeps) reuse the same parked workers across
/// every execute instead of re-paying thread spawns.
pub fn global() -> Arc<WorkerPool> {
    static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| {
        Arc::new(WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        ))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    #[test]
    fn run_partitioned_matches_spmd_semantics() {
        let pool = WorkerPool::new(3);
        let tracker = CommTracker::new(4, CostModel::zero());
        let results = pool.run_partitioned(&tracker, 10, |ctx, item| {
            assert!(ctx.rank() < 3);
            assert_eq!(ctx.num_workers(), 3);
            item * item
        });
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate shapes: no items, and more workers than items.
        let empty: Vec<usize> = pool.run_partitioned(&tracker, 0, |_, item| item);
        assert!(empty.is_empty());
        let single = pool.run_partitioned(&tracker, 2, |_, item| item + 1);
        assert_eq!(single, vec![1, 2]);
        assert_eq!(pool.workers(), 3);
        // Two jobs dispatched (the zero-item call short-circuits).
        assert_eq!(pool.jobs_dispatched(), 2);
    }

    #[test]
    fn repeated_jobs_reuse_the_same_workers() {
        let pool = WorkerPool::new(2);
        let tracker = CommTracker::new(2, CostModel::zero());
        for round in 0..50usize {
            let out = pool.run_partitioned(&tracker, 4, |_, item| item + round);
            assert_eq!(out, vec![round, round + 1, round + 2, round + 3]);
        }
        assert_eq!(pool.jobs_dispatched(), 50);
    }

    #[test]
    fn compute_charges_reach_the_submitters_tracker() {
        let mut cost = CostModel::zero();
        cost.compute_per_flop = 1.0;
        let tracker = CommTracker::new(2, cost);
        let pool = WorkerPool::new(2);
        pool.run_partitioned(&tracker, 2, |ctx, item| ctx.charge_compute(item, 10));
        assert_eq!(tracker.snapshot().total_compute_time(), 20.0);
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let tracker = CommTracker::new(2, CostModel::zero());
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.run_partitioned(&tracker, 2, |_, item| {
                assert!(item != 1, "injected failure");
                item
            })
        }));
        // The original payload is re-raised, message intact.
        let payload = boom.expect_err("the worker panic reaches the submitter");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("injected failure"),
            "panic payload lost: {message:?}"
        );
        // The pool survived the panic and runs the next job normally.
        let out = pool.run_partitioned(&tracker, 3, |_, item| item * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn concurrent_submitters_queue_without_mixing_results() {
        let pool = Arc::new(WorkerPool::new(2));
        let tracker = CommTracker::new(2, CostModel::zero());
        std::thread::scope(|scope| {
            for offset in 0..4usize {
                let pool = Arc::clone(&pool);
                let tracker = tracker.clone();
                scope.spawn(move || {
                    for round in 0..25usize {
                        let out = pool.run_partitioned(&tracker, 3, |_, item| item * 100 + offset);
                        assert_eq!(
                            out,
                            vec![offset, 100 + offset, 200 + offset],
                            "round {round}"
                        );
                    }
                });
            }
        });
        assert_eq!(pool.jobs_dispatched(), 100);
    }

    #[test]
    fn run_limited_keeps_bystander_ranks_out_of_the_job() {
        let pool = WorkerPool::new(4);
        for round in 0..20usize {
            let width = 1 + round % 4;
            let ran: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            pool.run_limited(width, &|rank| {
                ran[rank].fetch_add(1, Ordering::Relaxed);
            });
            for (rank, cell) in ran.iter().enumerate() {
                let expected = u64::from(rank < width);
                assert_eq!(cell.load(Ordering::Relaxed), expected, "rank {rank}");
            }
        }
    }

    #[test]
    fn partitioned_width_is_bounded_by_items() {
        let pool = WorkerPool::new(4);
        let tracker = CommTracker::new(2, CostModel::zero());
        // Two items on a four-wide pool: only ranks 0 and 1 participate,
        // and the round-robin stride matches the participating width.
        let out = pool.run_partitioned(&tracker, 2, |ctx, item| {
            assert_eq!(ctx.num_workers(), 2);
            assert!(ctx.rank() < 2);
            item * 10
        });
        assert_eq!(out, vec![0, 10]);
    }

    #[test]
    fn submitted_job_completes_at_wait_and_pool_stays_reusable() {
        let pool = WorkerPool::new(3);
        for _ in 0..10 {
            let items: Arc<Vec<AtomicU64>> = Arc::new((0..17).map(|_| AtomicU64::new(0)).collect());
            let claim = Arc::new(AtomicUsize::new(0));
            let job = {
                let items = Arc::clone(&items);
                let claim = Arc::clone(&claim);
                move |_rank: usize| loop {
                    let i = claim.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = items.get(i) else { break };
                    cell.fetch_add(1, Ordering::Relaxed);
                }
            };
            let ticket = pool.submit(3, Arc::new(job));
            // The submitter is free to do unrelated work here.
            ticket.wait();
            for cell in items.iter() {
                assert_eq!(cell.load(Ordering::Relaxed), 1);
            }
        }
        // The pool still runs blocking jobs after ticketed ones.
        let tracker = CommTracker::new(2, CostModel::zero());
        let out = pool.run_partitioned(&tracker, 3, |_, item| item);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn dropped_ticket_still_completes_the_job() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        let job = {
            let done = Arc::clone(&done);
            move |_rank: usize| {
                done.fetch_add(1, Ordering::Relaxed);
            }
        };
        drop(pool.submit(2, Arc::new(job)));
        // Both ranks ran exactly once (rank 0 in the drop).
        assert_eq!(done.load(Ordering::Relaxed), 2);
        assert_eq!(pool.jobs_dispatched(), 1);
    }

    #[test]
    fn submitted_job_panic_reaches_the_waiter() {
        let pool = WorkerPool::new(2);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            let ticket = pool.submit(1, Arc::new(|_rank: usize| panic!("split failure")));
            ticket.wait();
        }));
        let payload = boom.expect_err("the job panic reaches the waiter");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .unwrap_or_default();
        assert!(message.contains("split failure"), "lost: {message:?}");
        // The pool survives for the next submission.
        let done = Arc::new(AtomicU64::new(0));
        let done2 = Arc::clone(&done);
        pool.submit(
            2,
            Arc::new(move |_| {
                done2.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .wait();
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.workers() >= 1);
    }
}
