//! Experiment E4 — the cost of the DISTRIBUTE statement itself, with the
//! aggregation and NOTRANSFER ablations (paper §2.4 / §3.2.2).

use vf_bench::experiments;
use vf_core::prelude::CostModel;

fn main() {
    println!("# E4 — redistribution cost and ablations\n");
    println!("## iPSC/860-like machine, p = 8\n");
    println!(
        "{}",
        experiments::e4_redistribute(&CostModel::ipsc860(8), &[1 << 10, 1 << 14, 1 << 18], 8)
    );
    println!("## Modern-cluster cost model, p = 16\n");
    println!(
        "{}",
        experiments::e4_redistribute(&CostModel::modern_cluster(), &[1 << 14, 1 << 18], 16)
    );
}
