//! Asserts a Chrome trace file contains at least one span per named phase.
//!
//! CI smoke check: after running an app with `VF_TRACE=1`, this bin proves
//! the emitted `trace.json` is parseable and actually covers the phases the
//! workload exercises.
//!
//! ```text
//! trace_check <trace.json> <phase-name>...
//! ```
//!
//! Phase names are the `Phase::name()` strings (e.g. `ghost-exchange`,
//! `unpack`, `wait`).  Exits nonzero — listing what is missing — when the
//! file fails to parse or any named phase has zero events.

use vf_machine::trace::{parse_chrome_trace, Phase};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.json> <phase-name>...");
        std::process::exit(2);
    };
    let required: Vec<String> = args.collect();
    if required.is_empty() {
        eprintln!("usage: trace_check <trace.json> <phase-name>...");
        std::process::exit(2);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let events = match parse_chrome_trace(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("trace_check: {path} is not a valid Chrome trace: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = false;
    for name in &required {
        let Some(phase) = Phase::from_name(name) else {
            eprintln!("trace_check: unknown phase name '{name}'");
            failed = true;
            continue;
        };
        let count = events.iter().filter(|ev| ev.phase == phase).count();
        if count == 0 {
            eprintln!("trace_check: {path} has no '{name}' spans");
            failed = true;
        } else {
            println!("{name}: {count} events");
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "{path}: {} events, all required phases present",
        events.len()
    );
}
