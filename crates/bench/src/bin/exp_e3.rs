//! Experiment E3 — the PIC load-balancing scenario of Figure 2: static
//! BLOCK cells vs. general-block rebalancing.

use vf_bench::experiments;
use vf_core::prelude::CostModel;

fn main() {
    println!("# E3 — PIC: dynamic load balancing with B_BLOCK(BOUNDS)\n");
    println!(
        "## Clustered drifting particle cloud, NCELL = 256, 5000 particles, 50 steps, p = 8\n"
    );
    println!(
        "{}",
        experiments::e3_pic(&CostModel::ipsc860(8), 256, 5000, 50, 8)
    );
    println!("## Same workload, p = 16\n");
    println!(
        "{}",
        experiments::e3_pic(&CostModel::ipsc860(16), 256, 5000, 50, 16)
    );
}
