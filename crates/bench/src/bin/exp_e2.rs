//! Experiment E2 — the ADI iteration of Figure 1: static distributions vs.
//! dynamic redistribution vs. two statically distributed copies.

use vf_bench::experiments;
use vf_core::prelude::CostModel;

fn main() {
    println!("# E2 — ADI: where does the communication go?\n");
    println!("## iPSC/860-like machine, 2 ADI iterations\n");
    println!(
        "{}",
        experiments::e2_adi(&CostModel::ipsc860(8), &[32, 64, 128], &[4, 8], 2)
    );
    println!("## Latency-bound machine, 2 ADI iterations\n");
    println!(
        "{}",
        experiments::e2_adi(&CostModel::latency_bound(), &[64], &[4, 8, 16], 2)
    );
}
