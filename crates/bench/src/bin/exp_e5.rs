//! Experiment E5 — DCASE query matching cost and the reaching-distribution
//! analysis (paper §2.5 / §3.1).

use vf_bench::experiments;

fn main() {
    println!("# E5 — distribution queries and compile-time analysis\n");
    println!("## SELECT DCASE matching cost vs. number of clauses\n");
    println!("{}", experiments::e5_queries(&[1, 4, 16, 64], 1000));
    println!("## Reaching-distribution analysis on synthetic programs\n");
    println!("{}", experiments::e5_analysis(&[10, 100, 1000, 10000]));
}
