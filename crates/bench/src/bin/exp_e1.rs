//! Experiment E1 — choosing the smoothing grid distribution from runtime
//! values (paper §4, the N/p argument).

use vf_bench::experiments;
use vf_core::prelude::CostModel;

fn main() {
    println!("# E1 — smoothing: column vs. 2-D block distribution\n");
    println!("Analytic per-step communication time (paper's message-count argument).\n");

    println!("## iPSC/860-like machine (alpha = 75 us, beta = 0.36 us/byte)\n");
    println!(
        "{}",
        experiments::e1_analytic(
            &CostModel::ipsc860(64),
            &[64, 128, 256, 512, 1024, 2048, 4096],
            &[4, 16, 64],
        )
    );

    println!("## Latency-bound machine (alpha = 500 us)\n");
    println!(
        "{}",
        experiments::e1_analytic(
            &CostModel::latency_bound(),
            &[64, 256, 1024, 4096],
            &[16, 64],
        )
    );

    println!("## Bandwidth-bound machine (beta = 1 us/byte)\n");
    println!(
        "{}",
        experiments::e1_analytic(
            &CostModel::bandwidth_bound(),
            &[64, 256, 1024, 4096],
            &[16, 64],
        )
    );

    println!("## Simulated validation (measured messages/bytes/modelled time, p = 16)\n");
    println!(
        "{}",
        experiments::e1_simulated(&CostModel::ipsc860(16), &[32, 64, 128], 16, 2)
    );
}
