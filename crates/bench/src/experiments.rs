//! Row generators for the experiments E1–E5.

use crate::table;
use std::time::Instant;
use vf_apps::adi::{self, AdiConfig, AdiStrategy};
use vf_apps::pic::{self, PicConfig, PicStrategy};
use vf_apps::smoothing::{self, SmoothingConfig, SmoothingLayout};
use vf_apps::workloads::{self, ParticleLayout};
use vf_core::analysis::{Program, ReachingDistributions, Stmt};
use vf_core::prelude::*;

/// E1 — smoothing distribution choice (paper §4, analytic argument).
///
/// For each (N, p) pair the analytic per-step communication time of the
/// column layout (2 messages of N) and the 2-D block layout (4 messages of
/// N/√p) under the given machine; the winner column shows where the
/// crossover falls.
pub fn e1_analytic(cost: &CostModel, ns: &[usize], ps: &[usize]) -> String {
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            let cols = smoothing::predicted_step_time(SmoothingLayout::Columns, n, p, cost);
            let blocks = smoothing::predicted_step_time(SmoothingLayout::Blocks2D, n, p, cost);
            let winner = if cols <= blocks {
                "columns"
            } else {
                "2-D blocks"
            };
            rows.push(vec![
                n.to_string(),
                p.to_string(),
                format!("{:.2}", n as f64 / p as f64),
                table::fmt_time(cols),
                table::fmt_time(blocks),
                winner.to_string(),
            ]);
        }
    }
    table::markdown(
        &[
            "N",
            "p",
            "N/p",
            "t/step (:,BLOCK)",
            "t/step (BLOCK,BLOCK)",
            "winner",
        ],
        &rows,
    )
}

/// E1 — simulated validation: the same comparison measured on the simulated
/// machine (message counts, bytes, modelled time per step).
pub fn e1_simulated(cost: &CostModel, ns: &[usize], p: usize, steps: usize) -> String {
    let mut rows = Vec::new();
    for &n in ns {
        let initial = workloads::initial_grid(n, 17);
        let mut per_layout = Vec::new();
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = Machine::new(p, cost.clone());
            let r = smoothing::run(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            per_layout.push((layout, r));
        }
        let t_cols = per_layout[0].1.stats.critical_time() / steps as f64;
        let t_blocks = per_layout[1].1.stats.critical_time() / steps as f64;
        let winner = if t_cols <= t_blocks {
            "columns"
        } else {
            "2-D blocks"
        };
        rows.push(vec![
            n.to_string(),
            p.to_string(),
            per_layout[0].1.messages_per_step.to_string(),
            per_layout[0].1.bytes_per_step.to_string(),
            per_layout[1].1.messages_per_step.to_string(),
            per_layout[1].1.bytes_per_step.to_string(),
            table::fmt_time(t_cols),
            table::fmt_time(t_blocks),
            winner.to_string(),
        ]);
    }
    table::markdown(
        &[
            "N",
            "p",
            "msgs/step cols",
            "bytes/step cols",
            "msgs/step 2D",
            "bytes/step 2D",
            "t/step cols",
            "t/step 2D",
            "winner",
        ],
        &rows,
    )
}

/// E2 — the ADI strategies of Figure 1 and §4.
pub fn e2_adi(cost: &CostModel, ns: &[usize], ps: &[usize], iterations: usize) -> String {
    let strategies = [
        (AdiStrategy::StaticColumns, "static (:,BLOCK)"),
        (AdiStrategy::StaticRows, "static (BLOCK,:)"),
        (AdiStrategy::DynamicRedistribute, "dynamic DISTRIBUTE"),
        (AdiStrategy::TwoCopies, "two copies + assign"),
    ];
    let mut rows = Vec::new();
    for &p in ps {
        for &n in ns {
            let initial = workloads::initial_grid(n, 23);
            for (strategy, label) in strategies {
                let machine = Machine::new(p, cost.clone());
                let r = adi::run(
                    &AdiConfig {
                        n,
                        iterations,
                        strategy,
                    },
                    &machine,
                    &initial,
                );
                rows.push(vec![
                    n.to_string(),
                    p.to_string(),
                    label.to_string(),
                    r.sweep_messages.to_string(),
                    r.redist_messages.to_string(),
                    (r.sweep_bytes + r.redist_bytes).to_string(),
                    table::fmt_time(r.stats.critical_time()),
                ]);
            }
        }
    }
    table::markdown(
        &[
            "N",
            "p",
            "strategy",
            "sweep msgs",
            "redist msgs",
            "total bytes",
            "modelled time",
        ],
        &rows,
    )
}

/// E3 — the PIC load-balancing strategies of Figure 2.
pub fn e3_pic(cost: &CostModel, ncell: usize, nparticles: usize, steps: usize, p: usize) -> String {
    let init = workloads::particles(
        ncell,
        nparticles,
        ParticleLayout::Cluster {
            center: 0.2,
            width: 0.08,
        },
        0.4,
        29,
    );
    let strategies = [
        (PicStrategy::StaticBlock, "static BLOCK"),
        (
            PicStrategy::DynamicGenBlock {
                period: 10,
                threshold: 1.1,
            },
            "B_BLOCK every 10 (Fig. 2)",
        ),
        (PicStrategy::Oracle, "B_BLOCK every step"),
    ];
    let mut rows = Vec::new();
    for (strategy, label) in strategies {
        let machine = Machine::new(p, cost.clone());
        let r = pic::run(
            &PicConfig {
                ncell,
                steps,
                strategy,
            },
            &machine,
            &init,
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", r.mean_imbalance),
            format!("{:.2}", r.max_imbalance),
            r.rebalance_count.to_string(),
            r.rebalance_bytes.to_string(),
            format!("{:.2}", r.stats.load_imbalance()),
            table::fmt_time(r.stats.critical_time()),
        ]);
    }
    table::markdown(
        &[
            "strategy",
            "mean particle imbalance",
            "max particle imbalance",
            "rebalances",
            "rebalance bytes",
            "compute-time imbalance",
            "modelled time",
        ],
        &rows,
    )
}

/// E4 — cost of the `DISTRIBUTE` statement itself across distribution-type
/// pairs, with the aggregation and `NOTRANSFER` ablations.
pub fn e4_redistribute(cost: &CostModel, sizes: &[usize], p: usize) -> String {
    let mut rows = Vec::new();
    for &n in sizes {
        let pairs: Vec<(&str, DistType, DistType)> = vec![
            (
                "BLOCK -> CYCLIC",
                DistType::block1d(),
                DistType::cyclic1d(1),
            ),
            (
                "BLOCK -> CYCLIC(16)",
                DistType::block1d(),
                DistType::cyclic1d(16),
            ),
            (
                "BLOCK -> B_BLOCK(skewed)",
                DistType::block1d(),
                DistType::gen_block1d(skewed_sizes(n, p)),
            ),
            (
                "CYCLIC -> BLOCK",
                DistType::cyclic1d(1),
                DistType::block1d(),
            ),
        ];
        for (label, from, to) in pairs {
            let procs = ProcessorView::linear(p);
            let dist_from =
                Distribution::new(from, IndexDomain::d1(n), procs.clone()).expect("valid");
            let dist_to = Distribution::new(to, IndexDomain::d1(n), procs).expect("valid");

            let run_with = |opts: &RedistOptions| {
                let tracker = CommTracker::new(p, cost.clone());
                let mut a = DistArray::from_fn("A", dist_from.clone(), |pt| pt.coord(0) as f64);
                let report = vf_runtime::redistribute(&mut a, dist_to.clone(), &tracker, opts)
                    .expect("same domain");
                (report, tracker.snapshot().critical_time())
            };
            let (agg, t_agg) = run_with(&RedistOptions::default());
            let (_elem, t_elem) = run_with(&RedistOptions::element_wise());
            let (nt, t_nt) = run_with(&RedistOptions::notransfer());
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                agg.moved_elements.to_string(),
                agg.messages.to_string(),
                agg.bytes.to_string(),
                table::fmt_time(t_agg),
                table::fmt_time(t_elem),
                format!("{} ({})", table::fmt_time(t_nt), nt.messages),
            ]);
        }
    }
    table::markdown(
        &[
            "elements",
            "redistribution",
            "moved",
            "msgs (aggregated)",
            "bytes",
            "t aggregated",
            "t element-wise",
            "t NOTRANSFER (msgs)",
        ],
        &rows,
    )
}

fn skewed_sizes(n: usize, p: usize) -> Vec<usize> {
    // Half the elements on the first processor, the rest spread evenly.
    let mut sizes = vec![0usize; p];
    sizes[0] = n / 2;
    let rest = n - sizes[0];
    for (i, s) in sizes.iter_mut().enumerate().skip(1) {
        *s = rest / (p - 1) + usize::from(i - 1 < rest % (p - 1));
    }
    sizes
}

/// E5 — DCASE query matching and reaching-distribution analysis overheads.
pub fn e5_queries(clause_counts: &[usize], repeats: usize) -> String {
    let mut rows = Vec::new();
    for &clauses in clause_counts {
        let mut scope: VfScope<f64> = VfScope::new(Machine::new(4, CostModel::zero()));
        scope
            .declare_dynamic(
                DynamicDecl::new("B", IndexDomain::d2(16, 16)).initial(DistType::blocks2d()),
            )
            .expect("declaration is valid");
        // Build a DCASE whose matching clause is the last one.
        let mut dcase = Dcase::new(["B"]);
        for k in 0..clauses.saturating_sub(1) {
            dcase = dcase.when_positional([DistPattern::dims(vec![
                DimPattern::Cyclic(k + 2),
                DimPattern::Star,
            ])]);
        }
        dcase = dcase.when_positional([DistPattern::exact(&DistType::blocks2d())]);
        let start = Instant::now();
        let mut selected = None;
        for _ in 0..repeats {
            selected = dcase.select(&scope).expect("valid construct");
        }
        let elapsed = start.elapsed().as_secs_f64() / repeats as f64;
        rows.push(vec![
            clauses.to_string(),
            selected
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.2} us", elapsed * 1e6),
        ]);
    }
    table::markdown(
        &["clauses", "selected index", "time per SELECT DCASE"],
        &rows,
    )
}

/// E5 — reaching-distribution analysis on synthetic programs: `stmts`
/// statements alternating conditionally-redistributed accesses.
pub fn e5_analysis(sizes: &[usize]) -> String {
    let mut rows = Vec::new();
    for &stmts in sizes {
        let program = synthetic_program(stmts);
        let start = Instant::now();
        let result = ReachingDistributions::analyze(&program);
        let elapsed = start.elapsed().as_secs_f64();
        let max_set = result
            .accesses()
            .iter()
            .map(|a| a.plausible.len())
            .max()
            .unwrap_or(0);
        let resolved = result
            .accesses()
            .iter()
            .filter(|a| a.plausible.len() == 1)
            .count();
        rows.push(vec![
            stmts.to_string(),
            result.accesses().len().to_string(),
            resolved.to_string(),
            max_set.to_string(),
            format!("{:.2} ms", elapsed * 1e3),
        ]);
    }
    table::markdown(
        &[
            "IR statements",
            "accesses",
            "accesses with singleton set",
            "largest plausible set",
            "analysis time",
        ],
        &rows,
    )
}

/// Builds a synthetic analysis workload of roughly `stmts` statements: a
/// loop containing conditional redistributions among a few types plus
/// accesses, mirroring phase-structured production codes.
pub fn synthetic_program(stmts: usize) -> Program {
    let types = [
        DistPattern::exact(&DistType::columns()),
        DistPattern::exact(&DistType::rows()),
        DistPattern::exact(&DistType::blocks2d()),
        DistPattern::dims(vec![DimPattern::CyclicAny, DimPattern::Star]),
    ];
    let mut body = Vec::new();
    let groups = (stmts / 4).max(1);
    for g in 0..groups {
        let t = types[g % types.len()].clone();
        body.push(Stmt::if_then(vec![Stmt::distribute("A", t)]));
        body.push(Stmt::access("A", format!("acc{g}a")));
        body.push(Stmt::distribute("A", types[(g + 1) % types.len()].clone()));
        body.push(Stmt::access("A", format!("acc{g}b")));
    }
    Program::new()
        .with_initial("A", DistPattern::exact(&DistType::columns()))
        .stmt(Stmt::loop_(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_tables_render_and_show_a_crossover() {
        let t = e1_analytic(&CostModel::ipsc860(64), &[64, 512, 4096], &[4, 64]);
        assert!(t.contains("winner"));
        // On 4 processors the column layout wins (2 messages, and splitting
        // into 2-D blocks does not shrink them); on 64 processors the 2-D
        // block layout wins because each message carries N/8 elements.
        assert!(t.contains("columns"));
        assert!(t.contains("2-D blocks"));
        let sim = e1_simulated(&CostModel::ipsc860(4), &[16], 4, 1);
        assert!(sim.lines().count() >= 3);
    }

    #[test]
    fn e2_table_contains_all_strategies() {
        let t = e2_adi(&CostModel::latency_bound(), &[16], &[4], 1);
        assert!(t.contains("dynamic DISTRIBUTE"));
        assert!(t.contains("two copies"));
        assert_eq!(t.lines().count(), 2 + 4);
    }

    #[test]
    fn e3_table_contains_all_strategies() {
        let t = e3_pic(&CostModel::modern_cluster(), 64, 500, 10, 4);
        assert!(t.contains("static BLOCK"));
        assert!(t.contains("Fig. 2"));
        assert_eq!(t.lines().count(), 2 + 3);
    }

    #[test]
    fn e4_table_covers_pairs_and_ablation() {
        let t = e4_redistribute(&CostModel::ipsc860(4), &[1024], 4);
        assert!(t.contains("BLOCK -> CYCLIC"));
        assert!(t.contains("NOTRANSFER"));
    }

    #[test]
    fn e5_tables_run() {
        let q = e5_queries(&[1, 4], 10);
        assert!(q.contains("SELECT DCASE"));
        let a = e5_analysis(&[16, 64]);
        assert!(a.contains("analysis time"));
        let program = synthetic_program(64);
        let result = ReachingDistributions::analyze(&program);
        assert!(!result.accesses().is_empty());
        assert!(result.undistributed_accesses().is_empty());
    }

    #[test]
    fn skewed_sizes_cover_the_domain() {
        for n in [64usize, 1000, 4096] {
            for p in [2usize, 4, 7] {
                assert_eq!(skewed_sizes(n, p).iter().sum::<usize>(), n);
            }
        }
    }
}
