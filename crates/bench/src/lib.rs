//! Experiment harness for the Vienna Fortran reproduction.
//!
//! The paper contains no measurement tables; its evaluation is the pair of
//! application figures (Fig. 1 ADI, Fig. 2 PIC) and the analytic message
//! cost argument of §4.  Each of those becomes a quantitative experiment
//! here (E1–E5, see `DESIGN.md` and `EXPERIMENTS.md`); this library holds
//! the row generators shared by the `exp_e*` binaries and the Criterion
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod table;
