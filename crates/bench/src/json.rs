//! Shared machine-readable bench artifact writer.
//!
//! Every `BENCH_e*.json` artifact uses one schema: a top-level object
//! mapping measurement names to flat field objects, with the conventional
//! trio `ns_per_op` / `messages` / `bytes` first and any experiment's
//! extra fields after.  The vendored serde is a no-op marker stub, so the
//! JSON is rendered by hand here — one writer instead of one per bench.
//!
//! ```text
//! {
//!   "ghost_fused_wire_256k": { "ns_per_op": 1234.5, "messages": 14, "bytes": 57344 },
//!   ...
//! }
//! ```

/// One named measurement: an ordered list of `key: value` fields, each
/// value already rendered as a JSON fragment.
pub struct BenchEntry {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchEntry {
    /// Appends a float field (one decimal, the `ns_per_op` convention).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push((key.into(), format!("{value:.1}")));
        self
    }

    /// Appends a float field with four decimals (ratios, fractions).
    pub fn ratio(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push((key.into(), format!("{value:.4}")));
        self
    }

    /// Appends an integer field.
    pub fn int(&mut self, key: &str, value: usize) -> &mut Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Appends a boolean field.
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Appends a string field.  The value must not need escaping (bench
    /// names and modes never do); asserted rather than silently mangled.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        assert!(
            !value.contains(['"', '\\']) && !value.chars().any(|c| (c as u32) < 0x20),
            "bench string fields never need JSON escaping"
        );
        self.fields.push((key.into(), format!("\"{value}\"")));
        self
    }
}

/// An in-progress `BENCH_e*.json` artifact.
#[derive(Default)]
pub struct BenchReport {
    entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new named entry; chain field appends on the return value.
    pub fn entry(&mut self, name: &str) -> &mut BenchEntry {
        self.entries.push(BenchEntry {
            name: name.into(),
            fields: Vec::new(),
        });
        self.entries.last_mut().expect("just pushed")
    }

    /// The conventional record shape shared by every experiment:
    /// `name → { ns_per_op, messages, bytes }`.
    pub fn record(&mut self, name: &str, ns_per_op: f64, messages: usize, bytes: usize) {
        self.entry(name)
            .num("ns_per_op", ns_per_op)
            .int("messages", messages)
            .int("bytes", bytes);
    }

    /// Renders the whole artifact.
    pub fn render(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let fields: Vec<String> = e
                    .fields
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                format!("  \"{}\": {{ {} }}", e.name, fields.join(", "))
            })
            .collect();
        format!("{{\n{}\n}}\n", entries.join(",\n"))
    }

    /// Writes the artifact to `default_path`, overridable through the
    /// bench's `env_var`; returns the path written.
    ///
    /// # Panics
    /// On I/O failure — a bench without its artifact is a failed run.
    pub fn write(&self, default_path: &str, env_var: &str) -> String {
        let path = std::env::var(env_var).unwrap_or_else(|_| default_path.into());
        std::fs::write(&path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_conventional_records() {
        let mut report = BenchReport::new();
        report.record("alpha", 1234.56, 14, 57344);
        report
            .entry("beta")
            .num("ns_per_op", 2.0)
            .flag("guard_passed", true)
            .text("mode", "wire");
        let out = report.render();
        assert_eq!(
            out,
            "{\n  \"alpha\": { \"ns_per_op\": 1234.6, \"messages\": 14, \"bytes\": 57344 },\n  \"beta\": { \"ns_per_op\": 2.0, \"guard_passed\": true, \"mode\": \"wire\" }\n}\n"
        );
    }

    #[test]
    #[should_panic(expected = "never need JSON escaping")]
    fn rejects_strings_that_need_escaping() {
        let mut report = BenchReport::new();
        report.entry("bad").text("mode", "has \"quotes\"");
    }
}
