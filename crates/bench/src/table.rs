//! Minimal markdown table rendering for experiment output.

/// Renders a markdown table from a header and rows of cells.
pub fn markdown(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a time in seconds with engineering-style units.
pub fn fmt_time(seconds: f64) -> String {
    if seconds == 0.0 {
        "0".to_string()
    } else if seconds < 1e-3 {
        format!("{:.1} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let t = markdown(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 3 | 4 |"));
    }

    #[test]
    fn formats_times() {
        assert_eq!(fmt_time(0.0), "0");
        assert!(fmt_time(5e-6).contains("us"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(2.5).contains("s"));
    }
}
