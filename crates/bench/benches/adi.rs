//! Criterion bench for E2: one ADI iteration under each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vf_apps::adi::{run, AdiConfig, AdiStrategy};
use vf_apps::workloads;
use vf_core::prelude::{CostModel, Machine};

fn bench_adi(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_adi_iteration");
    group.sample_size(10);
    let n = 48usize;
    let initial = workloads::initial_grid(n, 23);
    for (strategy, name) in [
        (AdiStrategy::StaticColumns, "static_columns"),
        (AdiStrategy::DynamicRedistribute, "dynamic_redistribute"),
        (AdiStrategy::TwoCopies, "two_copies"),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
            b.iter(|| {
                let machine = Machine::new(4, CostModel::ipsc860(4));
                run(
                    &AdiConfig {
                        n,
                        iterations: 1,
                        strategy,
                    },
                    &machine,
                    &initial,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adi);
criterion_main!(benches);
