//! Criterion bench for E4: the DISTRIBUTE statement across distribution
//! type pairs and planning strategies.

use criterion::{criterion_group, BenchmarkId, Criterion};
use vf_core::prelude::*;

fn bench_redistribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_redistribute");
    group.sample_size(10);
    let p = 8usize;
    for &n in &[1usize << 12, 1 << 16] {
        let procs = ProcessorView::linear(p);
        let from =
            Distribution::new(DistType::block1d(), IndexDomain::d1(n), procs.clone()).unwrap();
        let to = Distribution::new(DistType::cyclic1d(1), IndexDomain::d1(n), procs).unwrap();
        for (opts, name) in [
            (RedistOptions::default(), "aggregated"),
            (RedistOptions::element_wise(), "element_wise"),
            (RedistOptions::notransfer(), "notransfer"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let tracker = CommTracker::new(p, CostModel::ipsc860(p));
                    let mut a = DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64);
                    redistribute(&mut a, to.clone(), &tracker, &opts).unwrap()
                })
            });
        }
    }
    group.finish();
}

/// The schedule-reuse scenario: the ADI-style alternation between two
/// distributions, planned fresh every iteration versus planned once and
/// replayed from the [`PlanCache`].  The cached run must move exactly the
/// same elements and charge exactly the same bytes; only the planning cost
/// disappears (the second and later iterations are pure cache hits).
fn bench_schedule_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_schedule_reuse");
    group.sample_size(10);
    let p = 8usize;
    let iterations = 8usize;
    for &n in &[1usize << 12, 1 << 16] {
        let procs = ProcessorView::linear(p);
        let from =
            Distribution::new(DistType::block1d(), IndexDomain::d1(n), procs.clone()).unwrap();
        let to = Distribution::new(DistType::cyclic1d(1), IndexDomain::d1(n), procs).unwrap();

        group.bench_with_input(BenchmarkId::new("plan_every_iteration", n), &n, |b, _| {
            b.iter(|| {
                let tracker = CommTracker::new(p, CostModel::ipsc860(p));
                let mut a = DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64);
                let mut moved = 0usize;
                let mut bytes = 0usize;
                for i in 0..iterations {
                    let target = if i % 2 == 0 { to.clone() } else { from.clone() };
                    let r =
                        redistribute(&mut a, target, &tracker, &RedistOptions::default()).unwrap();
                    moved += r.moved_elements;
                    bytes += r.bytes;
                }
                (moved, bytes)
            })
        });

        group.bench_with_input(BenchmarkId::new("cached_schedule", n), &n, |b, _| {
            b.iter(|| {
                let cache = PlanCache::new();
                let tracker = CommTracker::new(p, CostModel::ipsc860(p));
                let mut a = DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64);
                let mut moved = 0usize;
                let mut bytes = 0usize;
                for i in 0..iterations {
                    let target = if i % 2 == 0 { to.clone() } else { from.clone() };
                    let r = redistribute_cached(
                        &mut a,
                        target,
                        &tracker,
                        &RedistOptions::default(),
                        &cache,
                    )
                    .unwrap();
                    moved += r.moved_elements;
                    bytes += r.bytes;
                }
                // All iterations after the first pair hit the cache.
                assert_eq!(cache.stats().misses, 2);
                (moved, bytes)
            })
        });

        // Planning cost in isolation: a cache hit versus a fresh plan.
        group.bench_with_input(BenchmarkId::new("planning_fresh", n), &n, |b, _| {
            b.iter(|| {
                plan::plan_redistribute(&from, &to)
                    .unwrap()
                    .moved_elements()
            })
        });
        let warm = PlanCache::new();
        warm.redistribute_plan(&from, &to).unwrap();
        group.bench_with_input(BenchmarkId::new("planning_cache_hit", n), &n, |b, _| {
            b.iter(|| warm.redistribute_plan(&from, &to).unwrap().moved_elements())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_redistribute, bench_schedule_reuse);

fn main() {
    benches();
    let mut report = vf_bench::json::BenchReport::new();
    for (name, mean_seconds) in criterion::take_measurements() {
        report.entry(&name).num("ns_per_op", mean_seconds * 1e9);
    }
    report.write("BENCH_e4.json", "VF_E4_BENCH_JSON");
}
