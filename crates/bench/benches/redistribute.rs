//! Criterion bench for E4: the DISTRIBUTE statement across distribution
//! type pairs and planning strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vf_core::prelude::*;

fn bench_redistribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_redistribute");
    group.sample_size(10);
    let p = 8usize;
    for &n in &[1usize << 12, 1 << 16] {
        let procs = ProcessorView::linear(p);
        let from =
            Distribution::new(DistType::block1d(), IndexDomain::d1(n), procs.clone()).unwrap();
        let to = Distribution::new(DistType::cyclic1d(1), IndexDomain::d1(n), procs).unwrap();
        for (opts, name) in [
            (RedistOptions::default(), "aggregated"),
            (RedistOptions::element_wise(), "element_wise"),
            (RedistOptions::notransfer(), "notransfer"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let tracker = CommTracker::new(p, CostModel::ipsc860(p));
                    let mut a = DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64);
                    redistribute(&mut a, to.clone(), &tracker, &opts).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_redistribute);
criterion_main!(benches);
