//! E8 — the persistent SPMD worker pool and the wire-buffer pack/unpack
//! executor.
//!
//! Three comparisons:
//!
//! 1. **dispatch latency**: executing a sub-cutoff plan (well below the old
//!    512 KiB serial cutoff) through the fresh-spawn `spmd` harness versus
//!    the persistent pool — the per-execute overhead the pool removes,
//! 2. **serial/pooled crossover sweep**: the same copy plan at growing
//!    sizes under the serial loop versus forced pooled dispatch — the
//!    measurement behind `ThreadedExecutor::DEFAULT_POOLED_CUTOFF_BYTES`,
//! 3. **wire-packed vs per-part fused ghost exchange** of a 4-field class
//!    on a 256k-element grid: one pool dispatch and one packed message per
//!    pair versus one dispatch per field — with exact message/byte
//!    conservation asserted.
//!
//! Custom harness (no criterion) because the run doubles as two CI guards:
//! pooled dispatch must stay **≥ 10× faster** than the fresh-spawn harness
//! at sub-cutoff plan sizes, and the wire-packed fused ghost exchange must
//! be **no slower** than the per-part fused executor at 256k elements — a
//! regression in either means the pool or the wire path silently stopped
//! paying for itself.  Set `VF_E8_SKIP_GUARD=1` to report without
//! enforcing.
//!
//! Every measurement is also written to `BENCH_e8.json`
//! (`name → { ns_per_op, messages, bytes }`) so future changes can track
//! the perf trajectory machine-readably.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;
use vf_machine::pool::WorkerPool;
use vf_runtime::ghost::{
    exchange_ghosts_fused_planned_wire_with, exchange_ghosts_fused_planned_with,
};
use vf_runtime::CommPlan;

const PROCS: usize = 8;
const WORKERS: usize = 4;
const REPS: usize = 7;

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

/// One JSON record: `name → { ns_per_op, messages, bytes }`.
struct Record {
    name: &'static str,
    ns_per_op: f64,
    messages: usize,
    bytes: usize,
}

fn write_json(records: &[Record]) {
    let mut report = vf_bench::json::BenchReport::new();
    for r in records {
        report.record(r.name, r.ns_per_op, r.messages, r.bytes);
    }
    report.write("BENCH_e8.json", "VF_BENCH_JSON");
}

/// A shifted general-block repartition of `n` f64 elements, expressed as a
/// cached assignment `dst = src`: every pairwise overlap is one contiguous
/// run, the schedule is pre-planned into the cache, so each timed call is
/// exactly one executor pass over the runs — the dispatch cost plus the
/// memcpys, nothing else.
struct CopyFixture {
    src: DistArray<f64>,
    dst: DistArray<f64>,
    cache: PlanCache,
    plan: Arc<CommPlan>,
}

fn copy_fixture(n: usize) -> CopyFixture {
    let from = Distribution::new(
        DistType::block1d(),
        IndexDomain::d1(n),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let even = n / PROCS;
    let mut sizes = vec![even; PROCS];
    // Shift a half-share from each processor to its neighbour.
    for i in 0..PROCS - 1 {
        sizes[i] -= even / 2;
        sizes[i + 1] += even / 2;
    }
    sizes[PROCS - 1] += n - sizes.iter().sum::<usize>();
    let to = Distribution::new(
        DistType::gen_block1d(sizes),
        IndexDomain::d1(n),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let cache = PlanCache::new();
    let plan = cache.redistribute_plan(&from, &to).unwrap();
    let src = DistArray::from_fn("A", from, |pt| pt.coord(0) as f64);
    let dst: DistArray<f64> = DistArray::new("B", to);
    CopyFixture {
        src,
        dst,
        cache,
        plan,
    }
}

impl CopyFixture {
    fn run_ns<E: PlanExecutor>(&mut self, executor: &E, tracker: &CommTracker) -> f64 {
        let CopyFixture {
            src,
            dst,
            cache,
            plan: _,
        } = self;
        ns(time_min(|| {
            vf_runtime::assign::assign_cached_with(dst, src, tracker, cache, executor).unwrap()
        }))
    }
}

fn main() {
    println!("# E8 — persistent worker pool + wire-layout executor\n");
    let tracker = CommTracker::new(PROCS, CostModel::zero());
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let spawn = ThreadedExecutor::with_workers(WORKERS).with_serial_cutoff(0);
    let pooled = ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0);
    let mut records = Vec::new();

    // 1. Dispatch latency at sub-cutoff plan sizes.  The *dispatch
    // latency* of a harness is what executing through it costs beyond the
    // copies themselves, so each ratio subtracts the serial time of the
    // identical plan (the pure memcpy work) from both sides.
    println!("## dispatch latency, fresh-spawn vs pooled ({WORKERS} workers)\n");
    println!("| plan bytes | serial (work) | fresh-spawn | pooled | dispatch ratio |");
    println!("|---|---|---|---|---|");
    let dispatch_ratio = |fx: &mut CopyFixture, tracker: &CommTracker| {
        let t_serial = fx.run_ns(&SerialExecutor, tracker);
        let t_spawn = fx.run_ns(&spawn, tracker);
        let before = pool.jobs_dispatched();
        let t_pool = fx.run_ns(&pooled, tracker);
        // The denominator clamp below protects against division by ~zero;
        // this assert protects against the clamp masking a backend that
        // silently stopped dispatching to the pool at all.
        assert!(
            pool.jobs_dispatched() > before,
            "the pooled executor did not dispatch to the pool"
        );
        let ratio = (t_spawn - t_serial).max(1.0) / (t_pool - t_serial).max(1.0);
        (t_serial, t_spawn, t_pool, ratio)
    };
    let mut guard_ratio = 0.0f64;
    for (label, n) in [("16 KiB", 2048usize), ("64 KiB", 8192)] {
        let mut fx = copy_fixture(n);
        let bytes = fx.plan.bytes_for(8);
        let messages = fx.plan.num_messages();
        let (t_serial, t_spawn, t_pool, ratio) = dispatch_ratio(&mut fx, &tracker);
        println!("| {label} | {t_serial:.0} ns | {t_spawn:.0} ns | {t_pool:.0} ns | {ratio:.1}x |");
        if n == 2048 {
            guard_ratio = ratio;
        }
        records.push(Record {
            name: if n == 2048 {
                "dispatch_spawn_16k"
            } else {
                "dispatch_spawn_64k"
            },
            ns_per_op: t_spawn,
            messages,
            bytes,
        });
        records.push(Record {
            name: if n == 2048 {
                "dispatch_pooled_16k"
            } else {
                "dispatch_pooled_64k"
            },
            ns_per_op: t_pool,
            messages,
            bytes,
        });
    }

    // 2. Serial vs pooled crossover sweep (informs the pooled cutoff
    // default; the crossover depends on core count, so no guard).
    println!("\n## serial vs pooled copy crossover\n");
    println!("| plan bytes | serial | pooled | pooled/serial |");
    println!("|---|---|---|---|");
    for n in [2048usize, 8192, 32768, 131072] {
        let mut fx = copy_fixture(n);
        let t_serial = fx.run_ns(&SerialExecutor, &tracker);
        let t_pool = fx.run_ns(&pooled, &tracker);
        println!(
            "| {} KiB | {t_serial:.0} ns | {t_pool:.0} ns | {:.2} |",
            n * 8 / 1024,
            t_pool / t_serial
        );
        if n == 32768 {
            records.push(Record {
                name: "crossover_serial_256k",
                ns_per_op: t_serial,
                messages: fx.plan.num_messages(),
                bytes: fx.plan.bytes_for(8),
            });
            records.push(Record {
                name: "crossover_pooled_256k",
                ns_per_op: t_pool,
                messages: fx.plan.num_messages(),
                bytes: fx.plan.bytes_for(8),
            });
        }
    }

    // 3. Wire-packed vs per-part fused ghost exchange: a class of 4
    // stencil fields on a 2048x128 grid (256k elements), row layout so the
    // per-pair faces are compact and the class exchange is
    // dispatch-dominated — the case the wire path exists for: one pool
    // dispatch and one packed message per pair instead of one dispatch per
    // field.
    let fields = 4usize;
    // (:, BLOCK) over a 128x2048 grid: each halo face is one whole
    // neighbour column — a single contiguous run of 128 elements — so the
    // comparison isolates the wire path's dispatch saving rather than
    // per-run walking overhead.
    let dist = Distribution::new(
        DistType::columns(),
        IndexDomain::d2(128, 2048),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let arrays: Vec<DistArray<f64>> = (0..fields)
        .map(|k| {
            DistArray::from_fn(format!("F{k}"), dist.clone(), |pt| {
                (pt.coord(0) * 7 + pt.coord(1) * 3 + k as i64) as f64
            })
        })
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let cache = PlanCache::new();
    let widths = [(0, 0), (1, 1)];
    let plan = cache.ghost_plan(&dist, &widths).unwrap();
    let fused = FusedPlan::fuse(vec![plan; fields]).unwrap();
    println!(
        "\n## fused class ghost exchange, per-part vs wire-packed ({} elements, {fields} fields)\n",
        dist.domain().size()
    );
    let (r_parts, exec_parts) =
        exchange_ghosts_fused_planned_with(&refs, &fused, &tracker, &pooled).unwrap();
    let (r_wire, exec_wire) =
        exchange_ghosts_fused_planned_wire_with(&refs, &fused, &tracker, &pooled).unwrap();
    // Conservation is exact, not statistical: one message per communicating
    // pair, identical bytes, identical ghost values.
    assert_eq!(exec_parts, exec_wire, "wire changed the charged traffic");
    assert_eq!(
        exec_wire.messages,
        fused.num_messages(),
        "wire path must charge exactly one message per communicating pair"
    );
    assert_eq!(exec_wire.bytes, fused.bytes_for(8), "bytes not conserved");
    for (a, b) in r_parts.iter().zip(&r_wire) {
        for proc in dist.proc_ids() {
            assert_eq!(a.len(*proc), b.len(*proc), "ghost slot counts differ");
        }
    }
    let t_parts = ns(time_min(|| {
        exchange_ghosts_fused_planned_with(&refs, &fused, &tracker, &pooled).unwrap()
    }));
    let t_wire = ns(time_min(|| {
        exchange_ghosts_fused_planned_wire_with(&refs, &fused, &tracker, &pooled).unwrap()
    }));
    println!(
        "per-part: {t_parts:.0} ns/step; wire-packed: {t_wire:.0} ns/step ({:.2}x)",
        t_wire / t_parts
    );
    println!(
        "messages/step: {} (pairs: {}), bytes/step: {}",
        exec_wire.messages,
        fused.num_messages(),
        exec_wire.bytes
    );
    records.push(Record {
        name: "ghost_fused_per_part_256k",
        ns_per_op: t_parts,
        messages: exec_parts.messages,
        bytes: exec_parts.bytes,
    });
    records.push(Record {
        name: "ghost_fused_wire_256k",
        ns_per_op: t_wire,
        messages: exec_wire.messages,
        bytes: exec_wire.bytes,
    });

    write_json(&records);

    // CI guards.
    if std::env::var_os("VF_E8_SKIP_GUARD").is_some() {
        println!("\nguards skipped (VF_E8_SKIP_GUARD set)");
        return;
    }
    // Re-measure before declaring a regression on a noisy shared runner.
    let mut ratio = guard_ratio;
    for _ in 0..3 {
        if ratio >= 10.0 {
            break;
        }
        let mut fx = copy_fixture(2048);
        ratio = dispatch_ratio(&mut fx, &tracker).3;
    }
    if ratio < 10.0 {
        eprintln!(
            "FAIL: pooled dispatch latency is only {ratio:.1}x lower than fresh-spawn at 16 KiB (limit 10x)"
        );
        std::process::exit(1);
    }
    println!("\nguard ok: pooled dispatch latency {ratio:.0}x lower than fresh-spawn at sub-cutoff sizes (limit 10x)");

    let mut wire_ratio = t_wire / t_parts;
    for _ in 0..3 {
        if wire_ratio <= 1.0 {
            break;
        }
        let t_parts = ns(time_min(|| {
            exchange_ghosts_fused_planned_with(&refs, &fused, &tracker, &pooled).unwrap()
        }));
        let t_wire = ns(time_min(|| {
            exchange_ghosts_fused_planned_wire_with(&refs, &fused, &tracker, &pooled).unwrap()
        }));
        wire_ratio = t_wire / t_parts;
    }
    if wire_ratio > 1.0 {
        eprintln!(
            "FAIL: wire-packed fused ghost exchange is {wire_ratio:.2}x the per-part time at 256k elements (must be no slower)"
        );
        std::process::exit(1);
    }
    println!(
        "guard ok: wire-packed fused ghost exchange no slower than per-part at 256k elements ({wire_ratio:.2}x)"
    );
}
