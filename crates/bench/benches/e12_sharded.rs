//! E12 — distributed-memory backend cost: rank-local shards over real
//! SPMD channels versus the shared-memory wire path.
//!
//! The sharded executor moves every fused halo message through a real
//! channel (pack → send → recv → checksum → unpack, one SPMD region per
//! exchange) where the shared wire path memcpys the packed buffer across
//! a `Vec`.  That is real extra work — the entry point also scatters the
//! global arrays into rank-local shards and gathers them back (8 MB per
//! call on this fixture, against a 56 KB halo), which persistent-shard
//! workloads amortise over a whole run but a single exchange pays in
//! full.  The guard is therefore a **bounded factor**, not parity: on
//! the e8 fixture (4-field stencil class, (:, BLOCK) over a 128x2048
//! grid, 256k elements per field) the sharded exchange must stay within
//! **40x** of the shared wire exchange measured back to back in the same
//! process (typically ~25x; `VF_E12_MAX_FACTOR` overrides the limit).
//!
//! Custom harness (no criterion): emits `BENCH_e12.json`
//! (`VF_E12_BENCH_JSON` overrides the path) recording both times, the
//! factor, and the per-exchange wire traffic — which the harness also
//! cross-checks against the tracker's *real* channel counters before
//! timing anything.  `VF_E12_SKIP_GUARD=1` skips the timing guard on
//! hosts too noisy to time reliably; the traffic cross-check always
//! runs.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;
use vf_machine::pool::WorkerPool;
use vf_runtime::ghost::{
    exchange_ghosts_fused_planned_sharded, exchange_ghosts_fused_planned_wire_with,
};

const PROCS: usize = 8;
const REPS: usize = 7;

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

fn main() {
    println!("# E12 — sharded (real channels) vs shared wire ghost exchange\n");
    let fields = 4usize;
    let dist = Distribution::new(
        DistType::columns(),
        IndexDomain::d2(128, 2048),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let arrays: Vec<DistArray<f64>> = (0..fields)
        .map(|k| {
            DistArray::from_fn(format!("F{k}"), dist.clone(), |pt| {
                (pt.coord(0) * 7 + pt.coord(1) * 3 + k as i64) as f64
            })
        })
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let cache = PlanCache::new();
    let widths = [(0, 0), (1, 1)];
    let plan = cache.ghost_plan(&dist, &widths).unwrap();
    let fused = FusedPlan::fuse(vec![plan; fields]).unwrap();

    let pool = Arc::new(WorkerPool::new(PROCS));
    let pooled = ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0);
    let sharded_exec = ShardedExecutor::with_pool(Arc::clone(&pool));

    // Correctness + traffic cross-check before timing: the sharded ghost
    // values are bitwise the shared wire values, and the channel moved
    // exactly the modelled wire bytes.
    let t_shared = CommTracker::new(PROCS, CostModel::zero());
    let (g_shared, exec) =
        exchange_ghosts_fused_planned_wire_with(&refs, &fused, &t_shared, &pooled).unwrap();
    let t_sharded = CommTracker::new(PROCS, CostModel::zero());
    let (g_sharded, exec_sharded) =
        exchange_ghosts_fused_planned_sharded(&refs, &fused, &t_sharded, &sharded_exec).unwrap();
    assert_eq!(exec, exec_sharded, "sharded exec report diverges");
    for (field, (gs, gw)) in g_sharded.iter().zip(&g_shared).enumerate() {
        for q in 0..PROCS {
            for point in dist.domain().iter() {
                assert_eq!(
                    gs.get(ProcId(q), &point),
                    gw.get(ProcId(q), &point),
                    "field {field} ghost mismatch at P{q}"
                );
            }
        }
    }
    let stats = t_sharded.snapshot();
    assert_eq!(
        stats.channel_messages(),
        exec.messages,
        "real vs modelled messages"
    );
    assert_eq!(stats.channel_bytes(), exec.bytes, "real vs modelled bytes");
    println!(
        "traffic cross-check ok: {} channel messages, {} bytes == modelled wire traffic\n",
        exec.messages, exec.bytes
    );

    let tracker = CommTracker::new(PROCS, CostModel::zero());
    let shared = || {
        exchange_ghosts_fused_planned_wire_with(&refs, &fused, &tracker, &pooled)
            .unwrap()
            .1
    };
    let sharded = || {
        exchange_ghosts_fused_planned_sharded(&refs, &fused, &tracker, &sharded_exec)
            .unwrap()
            .1
    };

    let measure = || {
        let s = ns(time_min(shared));
        let d = ns(time_min(sharded));
        (s, d)
    };
    let (mut shared_ns, mut sharded_ns) = measure();
    let mut factor = sharded_ns / shared_ns;

    println!("## fused 4-field halo, 256k elements per field, {PROCS} ranks\n");
    println!("| path | exchange | factor |");
    println!("|---|---|---|");
    println!(
        "| shared wire (pooled) | {:.0} us | 1.00x |",
        shared_ns / 1e3
    );
    println!(
        "| sharded (real channels) | {:.0} us | {:.2}x |",
        sharded_ns / 1e3,
        factor
    );

    let mut report = vf_bench::json::BenchReport::new();
    report.record(
        "ghost_fused_wire_256k_shared",
        shared_ns,
        exec.messages,
        exec.bytes,
    );
    report.record(
        "ghost_fused_sharded_256k",
        sharded_ns,
        exec.messages,
        exec.bytes,
    );
    report
        .entry("sharded_over_shared")
        .ratio("factor", factor)
        .int("channel_messages", stats.channel_messages())
        .int("channel_bytes", stats.channel_bytes());
    report.write("BENCH_e12.json", "VF_E12_BENCH_JSON");

    if std::env::var_os("VF_E12_SKIP_GUARD").is_some() {
        println!("\nguard skipped (VF_E12_SKIP_GUARD set)");
        return;
    }
    let limit: f64 = std::env::var("VF_E12_MAX_FACTOR")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(40.0);
    // Re-measure before declaring a regression on a noisy shared runner.
    for _ in 0..3 {
        if factor <= limit {
            break;
        }
        let (s, d) = measure();
        shared_ns = s;
        sharded_ns = d;
        factor = sharded_ns / shared_ns;
    }
    if factor > limit {
        eprintln!(
            "FAIL: sharded exchange is {factor:.1}x the shared wire path (limit {limit:.0}x)"
        );
        std::process::exit(1);
    }
    println!("\nguard ok: sharded/shared factor {factor:.2}x (limit {limit:.0}x)");
}
