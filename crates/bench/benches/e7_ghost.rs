//! E7 — the unified halo subsystem: fused class ghost exchange and
//! irregular (INDIRECT) ghost regions via PARTI incremental schedules.
//!
//! Three comparisons:
//!
//! 1. a class of stencil fields smoothing together: fused halo exchange
//!    (one message per communicating processor pair for the whole class)
//!    versus per-field exchange,
//! 2. the unstructured-mesh edge sweep on incremental-schedule halos:
//!    `BLOCK`-by-id versus an `INDIRECT` mapping-array partition,
//! 3. cold versus warm incremental-schedule planning (directory build +
//!    connectivity walk versus a `PlanCache` hit).
//!
//! Custom harness (no criterion) because the run doubles as two CI guards:
//! the fused class halo must use **no more messages than per-field
//! exchange** (it uses exactly `1/fields` as many), and warm
//! incremental-schedule planning must stay at least 10× faster than cold —
//! a regression in either means fusion or schedule reuse silently stopped
//! working.  Set `VF_E7_SKIP_GUARD=1` to report without enforcing.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_apps::mesh::{run_sweep, unstructured_mesh, MeshPartition, MeshSweepConfig};
use vf_apps::smoothing::{run, run_class, SmoothingConfig, SmoothingLayout};
use vf_apps::workloads;
use vf_core::prelude::*;
use vf_runtime::plan::plan_ghost_irregular;

const PROCS: usize = 8;
const REPS: usize = 5;

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    println!("# E7 — unified halo subsystem\n");

    // 1. Fused class halos: K coupled smoothing fields per step.
    let n = 96usize;
    let steps = 2usize;
    let fields = 4usize;
    let initials: Vec<Vec<f64>> = (0..fields)
        .map(|k| workloads::initial_grid(n, k as u64 + 1))
        .collect();
    println!("## class-fused halo exchange ({n}x{n} grid, {fields} fields, {PROCS} procs)\n");
    println!("| layout | fused msg/step | per-field msg/step | bytes/step |");
    println!("|---|---|---|---|");
    let mut report = vf_bench::json::BenchReport::new();
    let mut fused_ok = true;
    for (key, layout) in [
        ("fused_halo_columns", SmoothingLayout::Columns),
        ("fused_halo_blocks2d", SmoothingLayout::Blocks2D),
    ] {
        let machine = Machine::new(PROCS, CostModel::ipsc860(PROCS));
        let class = run_class(&SmoothingConfig { n, steps, layout }, &machine, &initials);
        println!(
            "| {layout:?} | {} | {} | {} |",
            class.messages_per_step, class.unfused_messages_per_step, class.bytes_per_step
        );
        report
            .entry(key)
            .int("messages_per_step", class.messages_per_step)
            .int("unfused_messages_per_step", class.unfused_messages_per_step)
            .int("bytes_per_step", class.bytes_per_step);
        fused_ok &= class.messages_per_step <= class.unfused_messages_per_step
            && fields * class.messages_per_step == class.unfused_messages_per_step;
        // The fused run is field-for-field bitwise identical to
        // independent runs.
        let machine = Machine::new(PROCS, CostModel::ipsc860(PROCS));
        let single = run(
            &SmoothingConfig { n, steps, layout },
            &machine,
            &initials[0],
        );
        assert_eq!(
            class.fields[0], single.field,
            "{layout:?} fusion changed values"
        );
    }

    // 2. Mesh sweep on incremental-schedule halos.
    let mesh = unstructured_mesh(64, 48, 7);
    let machine = Machine::new(PROCS, CostModel::ipsc860(PROCS));
    let sweep_steps = 4usize;
    println!(
        "\n## mesh sweep on incremental schedules ({} nodes, {} edges, {sweep_steps} steps)\n",
        mesh.num_nodes(),
        mesh.num_edges()
    );
    println!("| distribution | edge cut | halo elems | messages | modelled time |");
    println!("|---|---|---|---|---|");
    let mut results = Vec::new();
    for (name, partition) in [
        ("BLOCK by id", MeshPartition::Block),
        ("INDIRECT(greedy)", MeshPartition::Greedy),
    ] {
        let r = run_sweep(
            &mesh,
            &MeshSweepConfig {
                steps: sweep_steps,
                partition,
                repartition_at: None,
            },
            &machine,
        );
        println!(
            "| {name} | {} | {} | {} | {:.3e} s |",
            r.edge_cut_initial,
            r.gathered_elements,
            r.stats.total_messages(),
            r.stats.critical_time()
        );
        results.push(r);
    }
    assert_eq!(
        results[0].values, results[1].values,
        "halo values must be partition-independent"
    );
    assert!(
        results[1].gathered_elements < results[0].gathered_elements,
        "the mesh-aware partition must shrink the halo"
    );

    // 3. Cold vs warm incremental-schedule planning.
    let conn = mesh.connectivity();
    let owners: Vec<usize> = (0..mesh.num_nodes())
        .map(|u| (u * 31 + 7) % PROCS)
        .collect();
    let indirect = Distribution::new(
        DistType::indirect1d(Arc::new(IndirectMap::new(owners).unwrap())),
        IndexDomain::d1(mesh.num_nodes()),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    println!(
        "\n## incremental-schedule planning, {} nodes / {} edges\n",
        conn.num_nodes(),
        conn.num_edges()
    );
    let cold_once = || {
        // Cold: directory build + full connectivity walk.
        let table = DistTranslationTable::build(&indirect);
        black_box(table.num_pages());
        plan_ghost_irregular(&indirect, &conn)
            .unwrap()
            .moved_elements()
    };
    let t_cold = time_min(cold_once);
    let cache = PlanCache::new();
    cache.ghost_irregular_plan(&indirect, &conn).unwrap();
    let warm_once = || {
        cache
            .ghost_irregular_plan(&indirect, &conn)
            .unwrap()
            .moved_elements()
    };
    let t_warm = time_min(warm_once);
    let mut ratio = secs(t_cold) / secs(t_warm);
    println!(
        "cold (table build + incremental schedule): {:.3e} s; warm (PlanCache hit): {:.3e} s; speedup {ratio:.0}x",
        secs(t_cold),
        secs(t_warm)
    );
    report
        .entry("incremental_plan_cold")
        .num("ns_per_op", secs(t_cold) * 1e9);
    report
        .entry("incremental_plan_warm")
        .num("ns_per_op", secs(t_warm) * 1e9);
    report.entry("schedule_reuse").ratio("speedup", ratio);
    report.write("BENCH_e7.json", "VF_E7_BENCH_JSON");

    // CI guards.
    if std::env::var_os("VF_E7_SKIP_GUARD").is_some() {
        println!("\nguards skipped (VF_E7_SKIP_GUARD set)");
        return;
    }
    if !fused_ok {
        eprintln!("FAIL: fused class halo exchange used more messages than per-field exchange");
        std::process::exit(1);
    }
    println!("\nguard ok: fused class halo <= per-field message count (exactly 1/{fields})");
    // Re-measure before declaring a regression on a noisy shared runner.
    for _ in 0..2 {
        if ratio >= 10.0 {
            break;
        }
        ratio = secs(time_min(cold_once)) / secs(time_min(warm_once));
    }
    if ratio < 10.0 {
        eprintln!(
            "FAIL: warm incremental-schedule planning is only {ratio:.1}x faster than cold (limit 10x)"
        );
        std::process::exit(1);
    }
    println!("guard ok: warm/cold incremental-schedule planning speedup = {ratio:.0}x (limit 10x)");
}
