//! E9 — split-phase wire execution: real compute/communication overlap.
//!
//! The split executor posts a fused class halo exchange (pack + message
//! post), streams the unpack on background pool workers, and completes at
//! an explicit wait — so the caller's interior compute runs *while the
//! halo is in flight*.  This bench measures that overlap for a 4-field
//! stencil class on a 256k-element grid:
//!
//! 1. **blocking then compute**: the blocking wire exchange followed by an
//!    interior-compute kernel calibrated to take about as long as the
//!    exchange itself,
//! 2. **split overlap**: post the same exchange, run the same kernel while
//!    the unpack streams, then wait — the overlapped total,
//! 3. **model validation**: the cost model's *credited* overlap (with
//!    `copy_per_byte` calibrated from the measured unpack rate) against
//!    the *measured* wall-clock overlap the tracker records at the wait.
//!
//! Custom harness (no criterion) because the run doubles as three CI
//! guards on multi-core hosts: the measured overlap must be **> 0**, the
//! credited overlap must be **within 2×** of the measured one, and the
//! split pipeline must be **≥ 1.1× faster** end-to-end than
//! blocking-then-compute.  Hosts with a single hardware core cannot
//! overlap anything, so the guards are skipped there (and under
//! `VF_E9_SKIP_GUARD=1`).
//!
//! Every measurement is also written to `BENCH_e9.json`
//! (`name → { ns_per_op, messages, bytes }`).

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;
use vf_machine::pool::WorkerPool;
use vf_runtime::ghost::{exchange_ghosts_fused_wire_split, exchange_ghosts_fused_wire_with};

const PROCS: usize = 8;
const WORKERS: usize = 4;
const REPS: usize = 7;
// An 8-column halo per neighbour face: wide enough that the streamed
// unpack is a meaningful fraction of the exchange, the case overlap pays
// for.
const WIDTHS: [(usize, usize); 2] = [(0, 0), (8, 8)];

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

/// One JSON record: `name → { ns_per_op, messages, bytes }`.
struct Record {
    name: &'static str,
    ns_per_op: f64,
    messages: usize,
    bytes: usize,
}

fn write_json(records: &[Record]) {
    let mut report = vf_bench::json::BenchReport::new();
    for r in records {
        report.record(r.name, r.ns_per_op, r.messages, r.bytes);
    }
    report.write("BENCH_e9.json", "VF_E9_BENCH_JSON");
}

/// The interior-compute stand-in: a streaming pass over the dense field
/// values, repeated `iters` times.  Pure caller-thread FLOPs — exactly the
/// work a split-phase sweep does between the post and the wait.
fn compute_kernel(data: &[f64], iters: usize) -> f64 {
    let mut acc = 0.0f64;
    for _ in 0..iters {
        for &v in data {
            acc = acc * 0.999_999 + v;
        }
        acc = black_box(acc);
    }
    acc
}

fn main() {
    println!("# E9 — split-phase halo exchange: compute/communication overlap\n");
    // The e8 wire fixture: a 4-field stencil class, (:, BLOCK) over a
    // 128x2048 grid (256k elements), one whole-column halo face per
    // neighbour pair.
    let fields = 4usize;
    let dist = Distribution::new(
        DistType::columns(),
        IndexDomain::d2(128, 2048),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let arrays: Vec<DistArray<f64>> = (0..fields)
        .map(|k| {
            DistArray::from_fn(format!("F{k}"), dist.clone(), |pt| {
                (pt.coord(0) * 7 + pt.coord(1) * 3 + k as i64) as f64
            })
        })
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let dense = arrays[0].to_dense();
    let cache = PlanCache::new();
    let tracker = CommTracker::new(PROCS, CostModel::zero());
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let pooled = ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0);
    let backend = ExecBackend::Threaded(pooled.clone());

    // Calibrate: measure the per-element kernel rate and one blocking
    // exchange, then size the kernel (slice length x iterations) to
    // roughly the exchange time — an interior compute phase of the same
    // order as the halo, the regime overlap is for.
    let t_ex = time_min(|| {
        exchange_ghosts_fused_wire_with(&refs, &WIDTHS, &tracker, &cache, &pooled).unwrap()
    });
    let t_full = time_min(|| compute_kernel(&dense, 1));
    let per_elem = ns(t_full) / dense.len() as f64;
    let target_elems = (ns(t_ex) / per_elem.max(1e-3)) as usize;
    let (work_len, iters) = if target_elems <= dense.len() {
        (target_elems.max(1024), 1)
    } else {
        (dense.len(), (target_elems / dense.len()).max(1))
    };
    let dense = &dense[..work_len];
    println!(
        "calibration: exchange {:.0} us, kernel {:.2} ns/elem -> {work_len} elems x {iters} iters",
        ns(t_ex) / 1e3,
        per_elem
    );

    // The split path must charge exactly what the blocking wire path does.
    let (blocking_regions, exec) =
        exchange_ghosts_fused_wire_with(&refs, &WIDTHS, &tracker, &cache, &pooled).unwrap();
    let split = exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &tracker, &cache, &backend)
        .expect("split post");
    assert_eq!(split.messages(), exec.messages, "messages not conserved");
    assert_eq!(split.bytes(), exec.bytes, "bytes not conserved");
    let streaming = split.is_streaming();
    let (split_regions, probe) = split.wait(&tracker).unwrap();
    for (a, b) in blocking_regions.iter().zip(&split_regions) {
        for proc in dist.proc_ids() {
            assert_eq!(a.len(*proc), b.len(*proc), "ghost slot counts differ");
        }
    }
    println!(
        "split post streams on background workers: {streaming} \
         (unpack {:.0} us total)",
        probe.measured_unpack_seconds * 1e6
    );

    // 1 + 2. Blocking-then-compute vs post/compute/wait.
    let run_blocking = || {
        let out =
            exchange_ghosts_fused_wire_with(&refs, &WIDTHS, &tracker, &cache, &pooled).unwrap();
        black_box(compute_kernel(dense, iters));
        out
    };
    let run_split = |tracker: &CommTracker| {
        let split =
            exchange_ghosts_fused_wire_split(&refs, &WIDTHS, tracker, &cache, &backend).unwrap();
        black_box(compute_kernel(dense, iters));
        split.wait(tracker)
    };
    let t_blocking = ns(time_min(run_blocking));
    let t_split = ns(time_min(|| run_split(&tracker)));
    println!("\n## halo + interior compute, 256k elements x {fields} fields\n");
    println!("| variant | total | speedup |");
    println!("|---|---|---|");
    println!(
        "| blocking then compute | {:.0} us | 1.00x |",
        t_blocking / 1e3
    );
    println!(
        "| split-phase overlap | {:.0} us | {:.2}x |",
        t_split / 1e3,
        t_blocking / t_split
    );

    // 3. Credited (modelled) vs measured overlap.  `copy_per_byte` is
    // calibrated from the probe's measured unpack rate, so the model's
    // credit at the wait should land near the wall-clock overlap the
    // tracker records; the wire path credits both the pack and the unpack
    // stream, hence the half-rate.
    let rate = probe.measured_unpack_seconds / (2.0 * exec.bytes as f64).max(1.0);
    let mut priced = CostModel::from_alpha_beta(0.0, 4.0 * rate);
    priced.copy_per_byte = rate;
    let overlap_once = |iters: usize| {
        let t = CommTracker::new(PROCS, priced.clone());
        let (_, report) = run_split_with(&refs, &cache, &backend, dense, iters, &t);
        (t.snapshot().credited_overlap_seconds(), report)
    };
    fn run_split_with(
        refs: &[&DistArray<f64>],
        cache: &PlanCache,
        backend: &ExecBackend,
        dense: &[f64],
        iters: usize,
        tracker: &CommTracker,
    ) -> (Vec<f64>, vf_runtime::SplitExecReport) {
        let split =
            exchange_ghosts_fused_wire_split(refs, &WIDTHS, tracker, cache, backend).unwrap();
        let acc = black_box(compute_kernel(dense, iters));
        let (_, report) = split.wait(tracker).unwrap();
        (vec![acc], report)
    }
    let (credited, report) = overlap_once(iters);
    let measured = report.measured_overlap_seconds;
    println!("\n## overlap accounting\n");
    println!(
        "measured overlap {:.0} us, credited (model) {:.0} us, unpack total {:.0} us",
        measured * 1e6,
        credited * 1e6,
        report.measured_unpack_seconds * 1e6
    );

    write_json(&[
        Record {
            name: "halo_then_compute_blocking_256k",
            ns_per_op: t_blocking,
            messages: exec.messages,
            bytes: exec.bytes,
        },
        Record {
            name: "halo_compute_split_256k",
            ns_per_op: t_split,
            messages: exec.messages,
            bytes: exec.bytes,
        },
        Record {
            name: "overlap_measured_256k",
            ns_per_op: measured * 1e9,
            messages: exec.messages,
            bytes: exec.bytes,
        },
        Record {
            name: "overlap_credited_256k",
            ns_per_op: credited * 1e9,
            messages: exec.messages,
            bytes: exec.bytes,
        },
    ]);

    // CI guards — only meaningful with real parallel hardware: a single
    // core timeshares the "background" workers with the caller, so neither
    // the overlap nor the speedup is reliably positive there.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if std::env::var_os("VF_E9_SKIP_GUARD").is_some() {
        println!("\nguards skipped (VF_E9_SKIP_GUARD set)");
        return;
    }
    if cores < 2 {
        println!("\nguards skipped (single hardware core: no real overlap is possible)");
        return;
    }
    assert!(streaming, "zero cutoff + {WORKERS} workers must stream");

    // Re-measure before declaring a regression on a noisy shared runner.
    let mut measured = measured;
    let mut credited = credited;
    for _ in 0..3 {
        let ratio = credited / measured.max(1e-12);
        if measured > 0.0 && (0.5..=2.0).contains(&ratio) {
            break;
        }
        let (c, r) = overlap_once(iters);
        credited = c;
        measured = r.measured_overlap_seconds;
    }
    if measured <= 0.0 {
        eprintln!("FAIL: split-phase exchange measured no compute/communication overlap");
        std::process::exit(1);
    }
    println!(
        "\nguard ok: measured overlap positive ({:.0} us)",
        measured * 1e6
    );
    let ratio = credited / measured;
    if !(0.5..=2.0).contains(&ratio) {
        eprintln!(
            "FAIL: cost-model overlap credit is {ratio:.2}x the measured overlap (must be within 2x)"
        );
        std::process::exit(1);
    }
    println!("guard ok: credited overlap within 2x of measured ({ratio:.2}x)");

    let mut speedup = t_blocking / t_split;
    for _ in 0..3 {
        if speedup >= 1.1 {
            break;
        }
        speedup = ns(time_min(run_blocking)) / ns(time_min(|| run_split(&tracker)));
    }
    if speedup < 1.1 {
        eprintln!(
            "FAIL: split-phase pipeline is only {speedup:.2}x faster than blocking-then-compute (limit 1.1x)"
        );
        std::process::exit(1);
    }
    println!(
        "guard ok: split pipeline {speedup:.2}x faster than blocking-then-compute (limit 1.1x)"
    );
}
