//! E6 — irregular workloads: `INDIRECT` distributions, the distributed
//! translation table, and schedule reuse.
//!
//! Three comparisons:
//!
//! 1. the unstructured-mesh edge sweep under `BLOCK`-by-id versus an
//!    `INDIRECT` mapping-array partition (communication volume and
//!    modelled time),
//! 2. the translation table cold versus warm (page fetches on first
//!    planning, none on replans),
//! 3. cold versus cached planning of an indirect `DISTRIBUTE`.
//!
//! Custom harness (no criterion) because the run doubles as a CI guard:
//! planning a repeated indirect `DISTRIBUTE` from the [`PlanCache`] must
//! stay at least 10× faster than cold planning (a regression here means
//! indirect plans stopped hitting the cache — the PARTI schedule-reuse
//! property).  Set `VF_E6_SKIP_GUARD=1` to report without enforcing.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_apps::mesh::{run_sweep, unstructured_mesh, MeshPartition, MeshSweepConfig};
use vf_core::prelude::*;
use vf_runtime::plan::plan_redistribute;
use vf_runtime::DistTranslationTable;

const PROCS: usize = 8;
const REPS: usize = 5;

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    println!("# E6 — irregular (INDIRECT) workloads\n");

    // 1. Mesh sweep: regular BLOCK vs indirect partition.
    let mesh = unstructured_mesh(64, 48, 7);
    let machine = Machine::new(PROCS, CostModel::ipsc860(PROCS));
    let steps = 4usize;
    println!(
        "## mesh sweep ({} nodes, {} edges, {PROCS} procs, {steps} steps)\n",
        mesh.num_nodes(),
        mesh.num_edges()
    );
    println!("| distribution | edge cut | gathered elems | messages | modelled time |");
    println!("|---|---|---|---|---|");
    let mut report = vf_bench::json::BenchReport::new();
    let mut results = Vec::new();
    for (name, key, partition) in [
        ("BLOCK by id", "mesh_sweep_block", MeshPartition::Block),
        (
            "INDIRECT(coordinate)",
            "mesh_sweep_coordinate",
            MeshPartition::Coordinate,
        ),
        (
            "INDIRECT(greedy)",
            "mesh_sweep_greedy",
            MeshPartition::Greedy,
        ),
    ] {
        let r = run_sweep(
            &mesh,
            &MeshSweepConfig {
                steps,
                partition,
                repartition_at: None,
            },
            &machine,
        );
        println!(
            "| {name} | {} | {} | {} | {:.3e} s |",
            r.edge_cut_initial,
            r.gathered_elements,
            r.stats.total_messages(),
            r.stats.critical_time()
        );
        report
            .entry(key)
            .num("modelled_ns", r.stats.critical_time() * 1e9)
            .int("messages", r.stats.total_messages())
            .int("bytes", r.stats.total_bytes())
            .int("edge_cut", r.edge_cut_initial)
            .int("gathered_elements", r.gathered_elements);
        results.push(r);
    }
    assert!(
        results[1].gathered_elements < results[0].gathered_elements,
        "the mapping-array partition must beat BLOCK-by-id on a shuffled mesh"
    );
    assert_eq!(
        results[0].values, results[1].values,
        "values must be partition-independent"
    );

    // 2. Translation table: cold build + first walk vs warm replays.
    let n = 1usize << 16;
    let procs = ProcessorView::linear(PROCS);
    let owners: Vec<usize> = (0..n).map(|i| (i * 31 + 7) % PROCS).collect();
    let indirect = Distribution::new(
        DistType::indirect1d(Arc::new(IndirectMap::new(owners).unwrap())),
        IndexDomain::d1(n),
        procs.clone(),
    )
    .unwrap();
    let block = Distribution::new(DistType::block1d(), IndexDomain::d1(n), procs).unwrap();
    let table = DistTranslationTable::build(&indirect);
    for lin in 0..n {
        table.lookup_from(ProcId(lin % PROCS), lin);
    }
    let cold = table.stats();
    for lin in 0..n {
        table.lookup_from(ProcId(lin % PROCS), lin);
    }
    let warm = table.stats();
    println!(
        "\n## translation table ({} pages of {} entries)\n\ncold sweep: {} page fetches, {} bytes; \
         warm sweep: +{} fetches (all {} lookups cached)",
        table.num_pages(),
        table.page_size(),
        cold.page_fetches,
        cold.fetched_bytes,
        warm.page_fetches - cold.page_fetches,
        n
    );
    assert_eq!(warm.page_fetches, cold.page_fetches, "warm sweep refetched");

    // 3. Cold vs cached planning of an indirect DISTRIBUTE.
    println!("\n## indirect DISTRIBUTE planning, {n} elements\n");
    let t_cold = time_min(|| {
        // Cold: directory build + full inspector walk.
        let table = DistTranslationTable::build(&indirect);
        black_box(table.num_pages());
        plan_redistribute(&block, &indirect)
            .unwrap()
            .moved_elements()
    });
    let cache = PlanCache::new();
    cache.redistribute_plan(&block, &indirect).unwrap();
    let t_cached = time_min(|| {
        cache
            .redistribute_plan(&block, &indirect)
            .unwrap()
            .moved_elements()
    });
    let ratio = secs(t_cold) / secs(t_cached);
    println!(
        "cold (table build + plan): {:.3e} s; cached (PlanCache hit): {:.3e} s; speedup {:.0}x",
        secs(t_cold),
        secs(t_cached),
        ratio
    );
    report
        .entry("translation_table")
        .int("pages", table.num_pages())
        .int("page_fetches_cold", cold.page_fetches as usize)
        .int("fetched_bytes_cold", cold.fetched_bytes);
    report
        .entry("indirect_plan_cold")
        .num("ns_per_op", secs(t_cold) * 1e9);
    report
        .entry("indirect_plan_cached")
        .num("ns_per_op", secs(t_cached) * 1e9);
    report.entry("plan_cache").ratio("speedup", ratio);
    report.write("BENCH_e6.json", "VF_E6_BENCH_JSON");

    // CI guard: cached indirect planning must stay >= 10x faster than cold.
    if std::env::var_os("VF_E6_SKIP_GUARD").is_some() {
        println!("\nguard skipped (VF_E6_SKIP_GUARD set)");
        return;
    }
    let mut ratio = ratio;
    // Re-measure before declaring a regression on a noisy shared runner.
    for _ in 0..2 {
        if ratio >= 10.0 {
            break;
        }
        let c = secs(time_min(|| {
            let table = DistTranslationTable::build(&indirect);
            black_box(table.num_pages());
            plan_redistribute(&block, &indirect)
                .unwrap()
                .moved_elements()
        }));
        let h = secs(time_min(|| {
            cache
                .redistribute_plan(&block, &indirect)
                .unwrap()
                .moved_elements()
        }));
        ratio = c / h;
    }
    if ratio < 10.0 {
        eprintln!(
            "FAIL: cached indirect planning is only {ratio:.1}x faster than cold (limit 10x)"
        );
        std::process::exit(1);
    }
    println!("\nguard ok: cached/cold planning speedup = {ratio:.0}x (limit 10x)");
}
