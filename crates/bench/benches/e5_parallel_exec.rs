//! E5 — parallel plan execution: serial vs threaded [`PlanExecutor`]
//! backends and fused connect-class `DISTRIBUTE`.
//!
//! Custom harness (no criterion) because the run doubles as a CI guard:
//! after reporting, the 256k-element case asserts that the auto-selected
//! threaded executor is not slower than the serial baseline by more than
//! 1.5× (a lock-contention or partitioning regression would show up here).
//! Set `VF_E5_SKIP_GUARD=1` to report without enforcing.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;

const PROCS: usize = 8;
const REPS: usize = 5;

/// Minimum wall-clock time of `f` over [`REPS`] runs — minimum, not mean,
/// because scheduling noise only ever adds time.
fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

struct Case {
    plan: CommPlan,
    src: Vec<Vec<f64>>,
    dst_sizes: Vec<usize>,
}

/// A worst-case-fragmentation redistribution (BLOCK → CYCLIC(1): one run
/// per element) of `n` elements over [`PROCS`] processors.
fn cyclic_case(n: usize) -> Case {
    let procs = ProcessorView::linear(PROCS);
    let from = Distribution::new(DistType::block1d(), IndexDomain::d1(n), procs.clone()).unwrap();
    let to = Distribution::new(DistType::cyclic1d(1), IndexDomain::d1(n), procs).unwrap();
    let plan = plan::plan_redistribute(&from, &to).unwrap();
    let src: Vec<Vec<f64>> = (0..PROCS)
        .map(|p| {
            let len = from.local_size(ProcId(p));
            (0..len).map(|i| (p * 1_000_000 + i) as f64).collect()
        })
        .collect();
    let dst_sizes: Vec<usize> = (0..PROCS).map(|p| to.local_size(ProcId(p))).collect();
    Case {
        plan,
        src,
        dst_sizes,
    }
}

fn run_exec<E: PlanExecutor>(case: &Case, executor: &E) -> usize {
    let tracker = CommTracker::new(PROCS, CostModel::ipsc860(PROCS));
    let (bufs, report) = executor.execute(&case.plan, &case.src, &case.dst_sizes, &tracker, true);
    black_box(bufs.len());
    report.bytes
}

fn main() {
    println!("# E5 — parallel plan execution\n");
    let threaded = ThreadedExecutor::auto();
    println!(
        "host parallelism: {} worker(s); auto backend: {}\n",
        threaded.workers(),
        ExecBackend::auto().name()
    );

    println!("## serial vs threaded executor (BLOCK -> CYCLIC, {PROCS} procs)\n");
    println!("| elements | serial | threaded | speedup |");
    println!("|---|---|---|---|");
    let mut report = vf_bench::json::BenchReport::new();
    let mut guard_times: Option<(f64, f64)> = None;
    for &n in &[1usize << 16, 1 << 18, 1 << 20] {
        let case = cyclic_case(n);
        let serial_bytes = run_exec(&case, &SerialExecutor);
        let threaded_bytes = run_exec(&case, &threaded);
        assert_eq!(
            serial_bytes, threaded_bytes,
            "backends must charge identical traffic"
        );
        let t_serial = time_min(|| run_exec(&case, &SerialExecutor));
        let t_threaded = time_min(|| run_exec(&case, &threaded));
        println!(
            "| {} | {:.3e} s | {:.3e} s | {:.2}x |",
            n,
            secs(t_serial),
            secs(t_threaded),
            secs(t_serial) / secs(t_threaded)
        );
        let messages = case.plan.num_messages();
        report.record(
            &format!("exec_serial_{n}"),
            secs(t_serial) * 1e9,
            messages,
            serial_bytes,
        );
        report.record(
            &format!("exec_threaded_{n}"),
            secs(t_threaded) * 1e9,
            messages,
            threaded_bytes,
        );
        if n == 1 << 18 {
            guard_times = Some((secs(t_serial), secs(t_threaded)));
        }
    }

    println!("\n## fused connect-class DISTRIBUTE (4 arrays, 256k elements each)\n");
    let n = 1usize << 18;
    let procs = ProcessorView::linear(PROCS);
    let from = Distribution::new(DistType::block1d(), IndexDomain::d1(n), procs.clone()).unwrap();
    let to = Distribution::new(
        DistType::gen_block1d(shifted_sizes(n, PROCS)),
        IndexDomain::d1(n),
        procs,
    )
    .unwrap();
    let plan = Arc::new(plan::plan_redistribute(&from, &to).unwrap());
    let parts: Vec<Arc<CommPlan>> = (0..4).map(|_| Arc::clone(&plan)).collect();
    let unfused_messages: usize = parts.iter().map(|p| p.num_messages()).sum();
    let fused = FusedPlan::fuse(parts).unwrap();
    println!(
        "messages per DISTRIBUTE: {} unfused -> {} fused (moved bytes identical: {})",
        unfused_messages,
        fused.num_messages(),
        fused.bytes_for(8)
    );
    let base: Vec<DistArray<f64>> = (0..4)
        .map(|k| DistArray::from_fn(format!("A{k}"), from.clone(), |pt| pt.coord(0) as f64))
        .collect();
    let t_unfused = time_min(|| {
        let mut arrays = base.clone();
        let tracker = CommTracker::new(PROCS, CostModel::ipsc860(PROCS));
        for a in &mut arrays {
            vf_core::vf_runtime::execute_redistribute_with(
                a,
                &plan,
                &tracker,
                &RedistOptions::default(),
                &SerialExecutor,
            )
            .unwrap();
        }
        arrays.len()
    });
    let t_fused = time_min(|| {
        let mut arrays = base.clone();
        let tracker = CommTracker::new(PROCS, CostModel::ipsc860(PROCS));
        let mut refs: Vec<&mut DistArray<f64>> = arrays.iter_mut().collect();
        execute_redistribute_fused(&mut refs, &fused, &tracker, &threaded).unwrap();
        arrays.len()
    });
    println!(
        "one pass, 4 arrays: {:.3e} s unfused serial vs {:.3e} s fused {} ({:.2}x)",
        secs(t_unfused),
        secs(t_fused),
        threaded.name(),
        secs(t_unfused) / secs(t_fused)
    );
    let fused_bytes = fused.bytes_for(8);
    report.record(
        "distribute_unfused_4x256k",
        secs(t_unfused) * 1e9,
        unfused_messages,
        fused_bytes,
    );
    report.record(
        "distribute_fused_4x256k",
        secs(t_fused) * 1e9,
        fused.num_messages(),
        fused_bytes,
    );
    report.write("BENCH_e5.json", "VF_E5_BENCH_JSON");

    // CI guard: the auto threaded executor must not regress past 1.5x the
    // serial time on the 256k case (guards lock contention and bad
    // partitioning; on single-core hosts the auto backend degrades to the
    // serial loop and trivially passes).
    let (t_serial, t_threaded) = guard_times.expect("256k case ran");
    if std::env::var_os("VF_E5_SKIP_GUARD").is_some() {
        println!("\nguard skipped (VF_E5_SKIP_GUARD set)");
        return;
    }
    let mut ratio = t_threaded / t_serial;
    // Shared CI runners can spike a single measurement with scheduling
    // noise; re-measure before declaring a regression.
    for _ in 0..2 {
        if ratio <= 1.5 {
            break;
        }
        let case = cyclic_case(1 << 18);
        let s = secs(time_min(|| run_exec(&case, &SerialExecutor)));
        let t = secs(time_min(|| run_exec(&case, &threaded)));
        ratio = t / s;
    }
    if ratio > 1.5 {
        eprintln!(
            "FAIL: threaded executor is {ratio:.2}x the serial time on the 256k case \
             (limit 1.5x, serial baseline {t_serial:.3e} s)"
        );
        std::process::exit(1);
    }
    println!("\nguard ok: threaded/serial = {ratio:.2} (limit 1.5) on the 256k case");
}

/// General block sizes shifted by half a block against the even BLOCK
/// partition — every processor pair of neighbours exchanges one contiguous
/// interval, so the fused bench measures pure memcpy, not fragmentation.
fn shifted_sizes(n: usize, p: usize) -> Vec<usize> {
    let even = n / p;
    let mut sizes = vec![even; p];
    sizes[0] = even / 2;
    sizes[p - 1] = n - (p - 1) * even + even / 2;
    sizes
}
