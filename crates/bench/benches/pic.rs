//! Criterion bench for E3: PIC simulation steps under each load-balancing
//! strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vf_apps::pic::{run, PicConfig, PicStrategy};
use vf_apps::workloads::{particles, ParticleLayout};
use vf_core::prelude::{CostModel, Machine};

fn bench_pic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_pic_steps");
    group.sample_size(10);
    let ncell = 128usize;
    let init = particles(
        ncell,
        1000,
        ParticleLayout::Cluster {
            center: 0.2,
            width: 0.08,
        },
        0.4,
        29,
    );
    for (strategy, name) in [
        (PicStrategy::StaticBlock, "static_block"),
        (
            PicStrategy::DynamicGenBlock {
                period: 10,
                threshold: 1.1,
            },
            "gen_block_period10",
        ),
        (PicStrategy::Oracle, "gen_block_every_step"),
    ] {
        group.bench_with_input(BenchmarkId::new(name, ncell), &ncell, |b, &ncell| {
            b.iter(|| {
                let machine = Machine::new(8, CostModel::ipsc860(8));
                run(
                    &PicConfig {
                        ncell,
                        steps: 10,
                        strategy,
                    },
                    &machine,
                    &init,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pic);
criterion_main!(benches);
