//! E10 — fault injection: checksum-framing overhead and chaos recovery.
//!
//! Two questions about the self-healing wire stack:
//!
//! 1. **What does framing cost when nothing fails?**  Every fused wire
//!    buffer carries a frame (sequence number, length, checksum) that is
//!    validated at unpack.  On the fault-free e8 wire fixture (a 4-field
//!    stencil class, (:, BLOCK) over a 128x2048 grid, 1-column halo faces)
//!    the framed exchange is timed against the same exchange with framing
//!    disabled — the overhead must stay **≤ 5%** (CI guard).
//! 2. **What does recovery cost when everything fails?**  The same fixture
//!    runs under a seeded all-kinds fault schedule (transient sends,
//!    delayed deliveries, corrupted wires, worker deaths, cancelled
//!    handles) through both the blocking and the split-phase streaming
//!    paths; the results must stay bitwise equal to the fault-free run and
//!    the tracker's fault counters must match the injector's record.
//!
//! Custom harness (no criterion): the run doubles as the CI overhead
//! guard and emits `BENCH_e10.json` (`VF_E10_BENCH_JSON` overrides the
//! path).  `VF_E10_SKIP_GUARD=1` skips the timing guard on hosts too noisy
//! to time 5% reliably; the bitwise-recovery asserts always run.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;
use vf_machine::pool::WorkerPool;
use vf_machine::{FaultInjector, FaultPlan};
use vf_runtime::ghost::{exchange_ghosts_fused_wire_split, exchange_ghosts_fused_wire_with};
use vf_runtime::{set_wire_framing, wire_framing_enabled};

const PROCS: usize = 8;
const WORKERS: usize = 4;
const REPS: usize = 9;
const WIDTHS: [(usize, usize); 2] = [(0, 0), (1, 1)];

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

fn write_json(timings: (f64, f64, f64), traffic: (usize, usize), chaos: (usize, usize, usize)) {
    let (framed_ns, unframed_ns, ratio) = timings;
    let (messages, bytes) = traffic;
    let (faults, retries, fallbacks) = chaos;
    let mut report = vf_bench::json::BenchReport::new();
    report.record("wire_framed_256k", framed_ns, messages, bytes);
    report.record("wire_unframed_256k", unframed_ns, messages, bytes);
    report.entry("framing_overhead").ratio("ratio", ratio);
    report
        .entry("chaos")
        .int("faults_injected", faults)
        .int("retries", retries)
        .int("fallbacks", fallbacks)
        .flag("bitwise_equal", true);
    report.write("BENCH_e10.json", "VF_E10_BENCH_JSON");
}

fn main() {
    println!("# E10 — wire framing overhead and chaos recovery\n");
    // The e8 wire fixture.
    let fields = 4usize;
    let dist = Distribution::new(
        DistType::columns(),
        IndexDomain::d2(128, 2048),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let arrays: Vec<DistArray<f64>> = (0..fields)
        .map(|k| {
            DistArray::from_fn(format!("F{k}"), dist.clone(), |pt| {
                (pt.coord(0) * 7 + pt.coord(1) * 3 + k as i64) as f64
            })
        })
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let cache = PlanCache::new();
    let tracker = CommTracker::new(PROCS, CostModel::zero());
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let pooled = ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0);

    // 1. Fault-free framing overhead, measured through the pooled
    // executor exactly as e8 measures the wire path.
    assert!(wire_framing_enabled(), "framing is on by default");
    let (clean_regions, exec) =
        exchange_ghosts_fused_wire_with(&refs, &WIDTHS, &tracker, &cache, &pooled).unwrap();
    let measure = |framed: bool| {
        set_wire_framing(framed);
        let t = time_min(|| {
            exchange_ghosts_fused_wire_with(&refs, &WIDTHS, &tracker, &cache, &pooled).unwrap()
        });
        set_wire_framing(true);
        ns(t)
    };
    let mut framed_ns = measure(true);
    let mut unframed_ns = measure(false);
    let mut ratio = framed_ns / unframed_ns;
    println!("## framing overhead, fault-free e8 wire path\n");
    println!("| variant | exchange | ratio |");
    println!("|---|---|---|");
    println!("| unframed | {:.0} us | 1.000x |", unframed_ns / 1e3);
    println!(
        "| framed (seq + len + checksum) | {:.0} us | {:.3}x |",
        framed_ns / 1e3,
        ratio
    );

    // 2. Chaos recovery on the same fixture: every fault kind, rate 1.0,
    // through the blocking and the split streaming paths.
    let plan = FaultPlan::new(0xE10).with_rate(1.0).with_max_faults(64);
    let inj = Arc::new(FaultInjector::new(plan));
    let chaos = CommTracker::new(PROCS, CostModel::zero()).with_fault_injector(Arc::clone(&inj));
    let backend =
        ExecBackend::Threaded(ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0));
    let verify = |regions: &[vf_runtime::ghost::GhostRegion<f64>], ctx: &str| {
        for (k, array) in arrays.iter().enumerate() {
            for proc in array.dist().proc_ids() {
                for point in array.domain().iter() {
                    assert_eq!(
                        regions[k].get(*proc, &point),
                        clean_regions[k].get(*proc, &point),
                        "{ctx}: array {k} diverged at {point:?} on {proc:?}"
                    );
                }
            }
        }
    };
    let (faulted, _) =
        exchange_ghosts_fused_wire_with(&refs, &WIDTHS, &chaos, &cache, &SerialExecutor).unwrap();
    verify(&faulted, "blocking under faults");
    let split = exchange_ghosts_fused_wire_split(&refs, &WIDTHS, &chaos, &cache, &backend).unwrap();
    let (faulted, _) = split.wait(&chaos).unwrap();
    verify(&faulted, "split streaming under faults");

    let stats = chaos.snapshot();
    assert_eq!(stats.faults_injected(), inj.faults_injected());
    assert_eq!(stats.retries(), inj.expected_retries());
    assert_eq!(stats.fallbacks(), inj.expected_fallbacks());
    println!("\n## chaos recovery, seeded all-kinds schedule\n");
    println!(
        "faults injected {}, retries {}, fallbacks {} — results bitwise equal, counters match",
        stats.faults_injected(),
        stats.retries(),
        stats.fallbacks()
    );

    write_json(
        (framed_ns, unframed_ns, ratio),
        (exec.messages, exec.bytes),
        (stats.faults_injected(), stats.retries(), stats.fallbacks()),
    );

    // CI guard: checksum framing must cost ≤ 5% on the fault-free path.
    // Re-measure before declaring a regression on a noisy shared runner.
    if std::env::var_os("VF_E10_SKIP_GUARD").is_some() {
        println!("\nguard skipped (VF_E10_SKIP_GUARD set)");
        return;
    }
    for _ in 0..3 {
        if ratio <= 1.05 {
            break;
        }
        framed_ns = measure(true);
        unframed_ns = measure(false);
        ratio = framed_ns / unframed_ns;
    }
    if ratio > 1.05 {
        eprintln!(
            "FAIL: wire framing costs {:.1}% on the fault-free wire path (limit 5%)",
            (ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "\nguard ok: framing overhead {:.1}% (limit 5%)",
        (ratio - 1.0) * 100.0
    );
}
