//! Criterion bench for E1: one smoothing step under each layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vf_apps::smoothing::{run, SmoothingConfig, SmoothingLayout};
use vf_apps::workloads;
use vf_core::prelude::{CostModel, Machine};

fn bench_smoothing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_smoothing_step");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        let initial = workloads::initial_grid(n, 17);
        for (layout, name) in [
            (SmoothingLayout::Columns, "columns"),
            (SmoothingLayout::Blocks2D, "blocks2d"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    let machine = Machine::new(4, CostModel::ipsc860(4));
                    run(
                        &SmoothingConfig {
                            n,
                            steps: 1,
                            layout,
                        },
                        &machine,
                        &initial,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_smoothing);
criterion_main!(benches);
