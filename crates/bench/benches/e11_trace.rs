//! E11 — tracing overhead: disabled tracing must be free, enabled tracing
//! must be cheap.
//!
//! The tracing subsystem promises zero cost when `VF_TRACE` is off (one
//! relaxed atomic load per would-be span) and lock-minimal recording when
//! it is on.  This bench holds it to that on the e8 wire fixture (a
//! 4-field stencil class, (:, BLOCK) over a 128x2048 grid, whole-column
//! halo faces through the pooled wire executor):
//!
//! 1. **disabled**: the exchange with tracing forced off must stay within
//!    **2%** of the `ghost_fused_wire_256k` baseline that `BENCH_e8.json`
//!    recorded earlier in the same run (guard skipped with a note when the
//!    artifact is absent — run the e8 bench first),
//! 2. **enabled**: the same exchange with tracing on — spans recorded on
//!    every pack/post/unpack/wait — must cost at most **10%** over the
//!    disabled time, measured in-process back to back.
//!
//! Custom harness (no criterion): the run doubles as both CI guards,
//! emits `BENCH_e11.json` (`VF_E11_BENCH_JSON` overrides the path) and
//! writes the enabled run's Chrome trace to `trace_e11.json`
//! (`VF_E11_TRACE_OUT` overrides).  `VF_E11_SKIP_GUARD=1` skips the timing
//! guards on hosts too noisy to time 2% reliably; the span-presence
//! asserts always run.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;
use vf_machine::pool::WorkerPool;
use vf_machine::trace;
use vf_runtime::ghost::exchange_ghosts_fused_planned_wire_with;

const PROCS: usize = 8;
const WORKERS: usize = 4;
const REPS: usize = 9;

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

/// The `ns_per_op` of `name` in the flat `BENCH_e*.json` schema the shared
/// writer renders, or `None` when the file or the entry is absent.
fn baseline_ns_per_op(path: &str, name: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let entry = text.split(&format!("\"{name}\"")).nth(1)?;
    let tail = entry.split("\"ns_per_op\":").nth(1)?;
    let value: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}

fn main() {
    println!("# E11 — tracing overhead on the e8 wire path\n");
    // The e8 wire fixture, built exactly as e8_pool.rs builds it.
    let fields = 4usize;
    let dist = Distribution::new(
        DistType::columns(),
        IndexDomain::d2(128, 2048),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let arrays: Vec<DistArray<f64>> = (0..fields)
        .map(|k| {
            DistArray::from_fn(format!("F{k}"), dist.clone(), |pt| {
                (pt.coord(0) * 7 + pt.coord(1) * 3 + k as i64) as f64
            })
        })
        .collect();
    let refs: Vec<&DistArray<f64>> = arrays.iter().collect();
    let cache = PlanCache::new();
    let tracker = CommTracker::new(PROCS, CostModel::zero());
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let pooled = ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0);
    let widths = [(0, 0), (1, 1)];
    let plan = cache.ghost_plan(&dist, &widths).unwrap();
    let fused = FusedPlan::fuse(vec![plan; fields]).unwrap();
    let exchange = || {
        exchange_ghosts_fused_planned_wire_with(&refs, &fused, &tracker, &pooled)
            .unwrap()
            .1
    };
    let exec = exchange();

    // 1. Disabled: the default state unless the caller exported VF_TRACE.
    trace::set_enabled(false);
    let measure_disabled = || ns(time_min(exchange));
    let mut disabled_ns = measure_disabled();

    // 2. Enabled: same exchange, every phase recording spans.
    trace::set_enabled(true);
    trace::reset();
    let enabled_ns = ns(time_min(exchange));
    let snap = trace::snapshot();
    for phase in [
        trace::Phase::GhostExchange,
        trace::Phase::Post,
        trace::Phase::Unpack,
        trace::Phase::Wait,
    ] {
        assert!(
            snap.count(phase) > 0,
            "enabled run recorded no {} spans",
            phase.name()
        );
    }
    let trace_path = std::env::var("VF_E11_TRACE_OUT").unwrap_or_else(|_| "trace_e11.json".into());
    trace::write_chrome_trace(std::path::Path::new(&trace_path)).unwrap();
    trace::set_enabled(false);
    let mut ratio = enabled_ns / disabled_ns;

    println!("## wire exchange, tracing disabled vs enabled\n");
    println!("| variant | exchange | ratio |");
    println!("|---|---|---|");
    println!("| disabled | {:.0} us | 1.000x |", disabled_ns / 1e3);
    println!(
        "| enabled ({} events) | {:.0} us | {:.3}x |",
        snap.events.len(),
        enabled_ns / 1e3,
        ratio
    );
    println!("\nwrote {trace_path} ({} events)", snap.events.len());

    let mut report = vf_bench::json::BenchReport::new();
    report.record(
        "wire_trace_disabled_256k",
        disabled_ns,
        exec.messages,
        exec.bytes,
    );
    report.record(
        "wire_trace_enabled_256k",
        enabled_ns,
        exec.messages,
        exec.bytes,
    );
    report
        .entry("trace_overhead")
        .ratio("enabled_over_disabled", ratio)
        .int("events_recorded", snap.events.len());
    let baseline = baseline_ns_per_op("BENCH_e8.json", "ghost_fused_wire_256k");
    if let Some(b) = baseline {
        report
            .entry("disabled_vs_e8_baseline")
            .num("baseline_ns_per_op", b)
            .ratio("ratio", disabled_ns / b);
    }
    report.write("BENCH_e11.json", "VF_E11_BENCH_JSON");

    // CI guards.  Re-measure before declaring a regression on a noisy
    // shared runner.
    if std::env::var_os("VF_E11_SKIP_GUARD").is_some() {
        println!("\nguards skipped (VF_E11_SKIP_GUARD set)");
        return;
    }
    match baseline {
        None => println!(
            "\nguard skipped: no BENCH_e8.json in the working directory \
             (run the e8 bench first for the disabled-overhead guard)"
        ),
        Some(baseline_ns) => {
            let mut vs_e8 = disabled_ns / baseline_ns;
            for _ in 0..3 {
                if vs_e8 <= 1.02 {
                    break;
                }
                disabled_ns = measure_disabled();
                vs_e8 = disabled_ns / baseline_ns;
            }
            if vs_e8 > 1.02 {
                eprintln!(
                    "FAIL: disabled tracing costs {:.1}% over the e8 wire baseline (limit 2%)",
                    (vs_e8 - 1.0) * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "\nguard ok: disabled-tracing overhead vs e8 baseline {:.1}% (limit 2%)",
                (vs_e8 - 1.0) * 100.0
            );
        }
    }
    for _ in 0..3 {
        if ratio <= 1.10 {
            break;
        }
        let d = measure_disabled();
        trace::set_enabled(true);
        trace::reset();
        let e = ns(time_min(exchange));
        trace::set_enabled(false);
        ratio = e / d;
    }
    if ratio > 1.10 {
        eprintln!(
            "FAIL: enabled tracing costs {:.1}% on the wire path (limit 10%)",
            (ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "guard ok: enabled-tracing overhead {:.1}% (limit 10%)",
        (ratio - 1.0) * 100.0
    );
}
