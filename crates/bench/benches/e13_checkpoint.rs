//! E13 — checkpoint/restart cost: distribution-aware save, same-layout
//! restore, and redistribute-on-read.
//!
//! A checkpoint's file layout follows the array's distribution (each
//! rank's shard as checksummed linear runs), so a save is essentially one
//! streaming pass over the payload and a restore into a *different* live
//! distribution is a restore plus an ordinary cached redistribute plan.
//! The guard checks the *byte accounting*, which is timing-noise-free:
//!
//! * `ckpt_bytes_written` per save and `ckpt_bytes_read` per restore must
//!   stay within **1.1×** the raw payload (n×8 bytes) plus a fixed
//!   manifest allowance — the format adds framing, not data copies;
//! * the redistribute leg of restore-into must charge exactly the
//!   modelled plan bytes (`CommPlan::bytes_for`).
//!
//! Custom harness (no criterion): emits `BENCH_e13.json`
//! (`VF_E13_BENCH_JSON` overrides the path) recording save/restore/
//! restore-redistribute times and the byte ledger.  `VF_E13_SKIP_GUARD=1`
//! skips the byte guard; the bitwise correctness cross-checks always run.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vf_core::prelude::*;

const PROCS: usize = 8;
const REPS: usize = 7;
const N: usize = 262_144; // 2 MB of f64 payload
const MANIFEST_ALLOWANCE: usize = 4096;

fn time_min<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

fn main() {
    println!("# E13 — distribution-aware checkpoint/restart\n");
    let dir = std::env::temp_dir().join(format!("vf_bench_e13_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir);

    let file_dist = Distribution::new(
        DistType::block1d(),
        IndexDomain::d1(N),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    // Resume partition: a seed-derived INDIRECT map — the restore must
    // plan a full BLOCK → INDIRECT redistribute.
    let owners: Vec<usize> = (0..N).map(|i| (i * 2654435761) % PROCS).collect();
    let live_dist = Distribution::new(
        DistType::indirect1d(Arc::new(IndirectMap::new(owners).unwrap())),
        IndexDomain::d1(N),
        ProcessorView::linear(PROCS),
    )
    .unwrap();
    let data: Vec<f64> = (0..N).map(|i| (i as f64 * 0.37).sin()).collect();
    let array = DistArray::from_dense("CK", file_dist.clone(), &data).unwrap();

    // Correctness cross-checks before timing: both restore paths are
    // bitwise, and the byte ledger balances.
    let tracker = CommTracker::new(PROCS, CostModel::zero());
    let cache = PlanCache::new();
    store.save(&array, 1, &tracker).unwrap();
    let written = tracker.snapshot().ckpt_bytes_written();
    let same = store.restore::<f64>(&tracker).unwrap();
    assert_eq!(
        same.array.to_dense(),
        data,
        "same-layout restore is bitwise"
    );
    let read_same = tracker.snapshot().ckpt_bytes_read();
    assert_eq!(read_same, written, "every byte written is read back");

    let redist_tracker = CommTracker::new(PROCS, CostModel::zero());
    let moved = store
        .restore_into::<f64, _>(&live_dist, &redist_tracker, &cache, &SerialExecutor)
        .unwrap();
    assert_eq!(
        moved.array.to_dense(),
        data,
        "redistribute-on-read is bitwise"
    );
    assert!(moved.array.dist().same_mapping(&live_dist));
    let plan = cache.redistribute_plan(&file_dist, &live_dist).unwrap();
    let plan_bytes = plan.bytes_for(8);
    let redist_stats = redist_tracker.snapshot();
    assert_eq!(
        redist_stats.total_bytes(),
        plan_bytes,
        "redistribute leg charges exactly the modelled plan bytes"
    );
    println!(
        "ledger cross-check ok: {written} bytes written, {read_same} read back, \
         {plan_bytes} moved by the BLOCK -> INDIRECT plan\n"
    );

    let save_ns = ns(time_min(|| {
        store.save(&array, 1, &tracker).unwrap();
    }));
    let restore_ns = ns(time_min(|| store.restore::<f64>(&tracker).unwrap()));
    let restore_redist_ns = ns(time_min(|| {
        store
            .restore_into::<f64, _>(&live_dist, &tracker, &cache, &SerialExecutor)
            .unwrap()
    }));

    println!("## 2 MB f64 payload, BLOCK over {PROCS} ranks\n");
    println!("| operation | time |");
    println!("|---|---|");
    println!("| save | {:.0} us |", save_ns / 1e3);
    println!("| restore (same layout) | {:.0} us |", restore_ns / 1e3);
    println!(
        "| restore + redistribute (BLOCK -> INDIRECT) | {:.0} us |",
        restore_redist_ns / 1e3
    );

    let payload = N * 8;
    let mut report = vf_bench::json::BenchReport::new();
    report.record("ckpt_save_2mb_block", save_ns, 0, written);
    report.record("ckpt_restore_2mb_same", restore_ns, 0, read_same);
    report.record(
        "ckpt_restore_2mb_redistribute",
        restore_redist_ns,
        plan.num_messages(),
        plan_bytes,
    );
    report
        .entry("byte_ledger")
        .int("payload_bytes", payload)
        .int("ckpt_bytes_written", written)
        .int("ckpt_bytes_read", read_same)
        .int("redistribute_plan_bytes", plan_bytes)
        .ratio("write_overhead", written as f64 / payload as f64);
    report.write("BENCH_e13.json", "VF_E13_BENCH_JSON");

    if std::env::var_os("VF_E13_SKIP_GUARD").is_some() {
        println!("\nguard skipped (VF_E13_SKIP_GUARD set)");
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let limit = (payload as f64 * 1.1) as usize + MANIFEST_ALLOWANCE;
    if written > limit || read_same > limit {
        eprintln!(
            "FAIL: checkpoint I/O exceeds 1.1x payload + manifest allowance: \
             wrote {written}, read {read_same}, limit {limit}"
        );
        std::process::exit(1);
    }
    println!(
        "\nguard ok: {written} bytes written / {read_same} read against a {limit}-byte bound \
         ({:.3}x payload)",
        written as f64 / payload as f64
    );
    let _ = std::fs::remove_dir_all(&dir);
}
