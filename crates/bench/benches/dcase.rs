//! Criterion bench for E5: DCASE matching and the reaching-distribution
//! analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vf_bench::experiments::synthetic_program;
use vf_core::analysis::ReachingDistributions;
use vf_core::prelude::*;

fn bench_dcase(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_queries");
    group.sample_size(20);

    // DCASE selection with a growing clause list.
    for &clauses in &[4usize, 32] {
        let mut scope: VfScope<f64> = VfScope::new(Machine::new(4, CostModel::zero()));
        scope
            .declare_dynamic(
                DynamicDecl::new("B", IndexDomain::d2(16, 16)).initial(DistType::blocks2d()),
            )
            .unwrap();
        let mut dcase = Dcase::new(["B"]);
        for k in 0..clauses - 1 {
            dcase = dcase.when_positional([DistPattern::dims(vec![
                DimPattern::Cyclic(k + 2),
                DimPattern::Star,
            ])]);
        }
        dcase = dcase.when_positional([DistPattern::exact(&DistType::blocks2d())]);
        group.bench_with_input(
            BenchmarkId::new("select_dcase", clauses),
            &clauses,
            |b, _| b.iter(|| dcase.select(&scope).unwrap()),
        );
    }

    // Reaching-distribution analysis on synthetic programs.
    for &stmts in &[100usize, 1000] {
        let program = synthetic_program(stmts);
        group.bench_with_input(
            BenchmarkId::new("reaching_analysis", stmts),
            &stmts,
            |b, _| b.iter(|| ReachingDistributions::analyze(&program)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dcase);
criterion_main!(benches);
