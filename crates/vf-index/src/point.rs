//! Fixed-capacity multi-dimensional index tuples.

use crate::{IndexError, Result, MAX_RANK};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A multi-dimensional index tuple of rank at most [`MAX_RANK`].
///
/// `Point` is a small, `Copy`, heap-free value so that it can be used in the
/// inner loops of owner-computes execution and redistribution planning
/// without allocation (see the workspace's performance guidelines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    rank: u8,
    coords: [i64; MAX_RANK],
}

impl Point {
    /// Creates a point from a slice of coordinates.
    ///
    /// # Errors
    /// Returns [`IndexError::RankTooLarge`] if more than [`MAX_RANK`]
    /// coordinates are supplied.
    pub fn new(coords: &[i64]) -> Result<Self> {
        if coords.len() > MAX_RANK {
            return Err(IndexError::RankTooLarge {
                requested: coords.len(),
            });
        }
        let mut buf = [0i64; MAX_RANK];
        buf[..coords.len()].copy_from_slice(coords);
        Ok(Self {
            rank: coords.len() as u8,
            coords: buf,
        })
    }

    /// Creates a rank-1 point.
    pub fn d1(i: i64) -> Self {
        Self::new(&[i]).expect("rank 1 is always valid")
    }

    /// Creates a rank-2 point.
    pub fn d2(i: i64, j: i64) -> Self {
        Self::new(&[i, j]).expect("rank 2 is always valid")
    }

    /// Creates a rank-3 point.
    pub fn d3(i: i64, j: i64, k: i64) -> Self {
        Self::new(&[i, j, k]).expect("rank 3 is always valid")
    }

    /// Creates a point of the given rank with every coordinate equal to
    /// `value`.
    pub fn splat(rank: usize, value: i64) -> Result<Self> {
        if rank > MAX_RANK {
            return Err(IndexError::RankTooLarge { requested: rank });
        }
        Ok(Self {
            rank: rank as u8,
            coords: [value; MAX_RANK],
        })
    }

    /// Number of dimensions of the point.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The coordinates as a slice of length `rank()`.
    #[inline]
    pub fn coords(&self) -> &[i64] {
        &self.coords[..self.rank as usize]
    }

    /// Coordinate in dimension `dim` (0-based).
    ///
    /// # Panics
    /// Panics if `dim >= rank()`.
    #[inline]
    pub fn coord(&self, dim: usize) -> i64 {
        assert!(dim < self.rank as usize, "dimension out of range");
        self.coords[dim]
    }

    /// Returns a copy of the point with the coordinate in `dim` replaced.
    ///
    /// # Panics
    /// Panics if `dim >= rank()`.
    #[inline]
    pub fn with_coord(&self, dim: usize, value: i64) -> Self {
        assert!(dim < self.rank as usize, "dimension out of range");
        let mut p = *self;
        p.coords[dim] = value;
        p
    }

    /// Returns a copy of the point with `delta` added to the coordinate in
    /// `dim` — convenient for stencil neighbours.
    #[inline]
    pub fn offset(&self, dim: usize, delta: i64) -> Self {
        self.with_coord(dim, self.coord(dim) + delta)
    }

    /// Permutes the coordinates: the result's dimension `d` takes the value
    /// of this point's dimension `perm[d]`.  Used by transposing alignments
    /// such as `ALIGN D(I,J,K) WITH C(J,I,K)` in the paper's Example 1.
    ///
    /// # Errors
    /// Returns [`IndexError::RankMismatch`] if `perm.len() != rank()`.
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        if perm.len() != self.rank() {
            return Err(IndexError::RankMismatch {
                expected: self.rank(),
                found: perm.len(),
            });
        }
        let mut buf = [0i64; MAX_RANK];
        for (d, &src) in perm.iter().enumerate() {
            if src >= self.rank() {
                return Err(IndexError::RankMismatch {
                    expected: self.rank(),
                    found: src + 1,
                });
            }
            buf[d] = self.coords[src];
        }
        Ok(Self {
            rank: self.rank,
            coords: buf,
        })
    }
}

impl Index<usize> for Point {
    type Output = i64;

    fn index(&self, dim: usize) -> &i64 {
        assert!(dim < self.rank as usize, "dimension out of range");
        &self.coords[dim]
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<i64> for Point {
    fn from(i: i64) -> Self {
        Point::d1(i)
    }
}

impl From<(i64, i64)> for Point {
    fn from((i, j): (i64, i64)) -> Self {
        Point::d2(i, j)
    }
}

impl From<(i64, i64, i64)> for Point {
    fn from((i, j, k): (i64, i64, i64)) -> Self {
        Point::d3(i, j, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        assert_eq!(Point::d1(3).coords(), &[3]);
        assert_eq!(Point::d2(3, 4).coords(), &[3, 4]);
        assert_eq!(Point::d3(3, 4, 5).coords(), &[3, 4, 5]);
        assert_eq!(Point::splat(4, 7).unwrap().coords(), &[7, 7, 7, 7]);
        assert!(Point::new(&[0; MAX_RANK + 1]).is_err());
        assert!(Point::splat(MAX_RANK + 1, 0).is_err());
    }

    #[test]
    fn coord_access_and_update() {
        let p = Point::d3(1, 2, 3);
        assert_eq!(p.coord(1), 2);
        assert_eq!(p[2], 3);
        assert_eq!(p.with_coord(0, 9).coords(), &[9, 2, 3]);
        assert_eq!(p.offset(2, -1).coords(), &[1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "dimension out of range")]
    fn coord_out_of_range_panics() {
        let p = Point::d2(1, 2);
        let _ = p.coord(2);
    }

    #[test]
    fn permutation_transposes() {
        // ALIGN D(I,J,K) WITH C(J,I,K): C-point (j, i, k) from D-point (i, j, k).
        let d_point = Point::d3(10, 20, 30);
        let c_point = d_point.permute(&[1, 0, 2]).unwrap();
        assert_eq!(c_point.coords(), &[20, 10, 30]);
        assert!(d_point.permute(&[0, 1]).is_err());
        assert!(d_point.permute(&[0, 1, 5]).is_err());
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (4, 5).into();
        assert_eq!(p.to_string(), "(4, 5)");
        let q: Point = 7i64.into();
        assert_eq!(q.to_string(), "(7)");
        let r: Point = (1, 2, 3).into();
        assert_eq!(r.rank(), 3);
    }

    proptest! {
        #[test]
        fn prop_permute_is_bijective(i in -100i64..100, j in -100i64..100, k in -100i64..100) {
            let p = Point::d3(i, j, k);
            let forward = p.permute(&[2, 0, 1]).unwrap();
            // inverse permutation of [2,0,1] is [1,2,0]
            let back = forward.permute(&[1, 2, 0]).unwrap();
            prop_assert_eq!(back, p);
        }
    }
}
