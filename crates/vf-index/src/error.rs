//! Error type for index-domain operations.

use std::fmt;

/// Errors produced by index-domain and section operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The rank of a point, section or domain did not match the expected rank.
    RankMismatch {
        /// Rank that was expected by the operation.
        expected: usize,
        /// Rank that was supplied.
        found: usize,
    },
    /// A rank larger than [`crate::MAX_RANK`] was requested.
    RankTooLarge {
        /// The requested rank.
        requested: usize,
    },
    /// A point lies outside the index domain it was used with.
    OutOfBounds {
        /// Dimension in which the violation occurred (0-based).
        dim: usize,
        /// The offending index value.
        index: i64,
        /// Lower bound of the dimension.
        lower: i64,
        /// Upper bound of the dimension.
        upper: i64,
    },
    /// A dimension range with `upper < lower - 1` (i.e. "more than empty")
    /// or another malformed bound was supplied.
    InvalidBounds {
        /// Lower bound supplied.
        lower: i64,
        /// Upper bound supplied.
        upper: i64,
    },
    /// A section triplet had a zero or negative stride.
    InvalidStride {
        /// The offending stride.
        stride: i64,
    },
    /// A linear offset was outside the domain size.
    LinearOutOfBounds {
        /// The offending linear offset.
        offset: usize,
        /// The total number of elements in the domain.
        size: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::RankMismatch { expected, found } => {
                write!(f, "rank mismatch: expected {expected}, found {found}")
            }
            IndexError::RankTooLarge { requested } => {
                write!(f, "rank {requested} exceeds MAX_RANK = {}", crate::MAX_RANK)
            }
            IndexError::OutOfBounds {
                dim,
                index,
                lower,
                upper,
            } => write!(
                f,
                "index {index} out of bounds {lower}:{upper} in dimension {dim}"
            ),
            IndexError::InvalidBounds { lower, upper } => {
                write!(f, "invalid dimension bounds {lower}:{upper}")
            }
            IndexError::InvalidStride { stride } => {
                write!(f, "invalid section stride {stride} (must be >= 1)")
            }
            IndexError::LinearOutOfBounds { offset, size } => {
                write!(
                    f,
                    "linear offset {offset} out of bounds for domain of size {size}"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IndexError::OutOfBounds {
            dim: 1,
            index: 12,
            lower: 1,
            upper: 10,
        };
        let s = e.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("1:10"));
        assert!(s.contains("dimension 1"));
    }

    #[test]
    fn rank_mismatch_display() {
        let e = IndexError::RankMismatch {
            expected: 2,
            found: 3,
        };
        assert_eq!(e.to_string(), "rank mismatch: expected 2, found 3");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(IndexError::InvalidStride { stride: 0 });
        assert!(e.to_string().contains("stride"));
    }
}
