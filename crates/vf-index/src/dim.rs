//! Per-dimension inclusive bounds.

use crate::{IndexError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive, Fortran-style range of indices `lower:upper` for one array
/// dimension.
///
/// A range with `upper == lower - 1` is the canonical *empty* range; ranges
/// with `upper < lower - 1` are rejected by [`DimRange::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimRange {
    lower: i64,
    upper: i64,
}

impl DimRange {
    /// Creates a new inclusive range `lower:upper`.
    ///
    /// # Errors
    /// Returns [`IndexError::InvalidBounds`] if `upper < lower - 1`.
    pub fn new(lower: i64, upper: i64) -> Result<Self> {
        if upper < lower - 1 {
            return Err(IndexError::InvalidBounds { lower, upper });
        }
        Ok(Self { lower, upper })
    }

    /// Creates the Fortran default range `1:extent`.
    pub fn of_extent(extent: usize) -> Self {
        Self {
            lower: 1,
            upper: extent as i64,
        }
    }

    /// Creates an explicitly empty range anchored at `lower`.
    pub fn empty_at(lower: i64) -> Self {
        Self {
            lower,
            upper: lower - 1,
        }
    }

    /// Lower bound (inclusive).
    #[inline]
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Upper bound (inclusive).
    #[inline]
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Number of indices in the range.
    #[inline]
    pub fn len(&self) -> usize {
        (self.upper - self.lower + 1).max(0) as usize
    }

    /// Whether the range contains no indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.upper < self.lower
    }

    /// Whether `index` lies within the range.
    #[inline]
    pub fn contains(&self, index: i64) -> bool {
        index >= self.lower && index <= self.upper
    }

    /// The zero-based offset of `index` within the range.
    ///
    /// # Errors
    /// Returns [`IndexError::OutOfBounds`] (with `dim` set to 0; callers that
    /// know the dimension re-tag it) if `index` is not contained.
    #[inline]
    pub fn offset_of(&self, index: i64) -> Result<usize> {
        if !self.contains(index) {
            return Err(IndexError::OutOfBounds {
                dim: 0,
                index,
                lower: self.lower,
                upper: self.upper,
            });
        }
        Ok((index - self.lower) as usize)
    }

    /// The index at zero-based `offset` within the range.
    #[inline]
    pub fn index_at(&self, offset: usize) -> Result<i64> {
        if offset >= self.len() {
            return Err(IndexError::LinearOutOfBounds {
                offset,
                size: self.len(),
            });
        }
        Ok(self.lower + offset as i64)
    }

    /// Intersection of two ranges, or an empty range anchored at
    /// `self.lower` when they do not overlap.
    pub fn intersect(&self, other: &DimRange) -> DimRange {
        let lower = self.lower.max(other.lower);
        let upper = self.upper.min(other.upper);
        if upper < lower {
            DimRange::empty_at(self.lower)
        } else {
            DimRange { lower, upper }
        }
    }

    /// Iterator over the indices of the range in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.lower..=self.upper
    }
}

impl fmt::Display for DimRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extent_range_is_one_based() {
        let r = DimRange::of_extent(10);
        assert_eq!(r.lower(), 1);
        assert_eq!(r.upper(), 10);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_range() {
        let r = DimRange::empty_at(5);
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert!(!r.contains(5));
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(DimRange::new(5, 2).is_err());
        assert!(DimRange::new(5, 4).is_ok()); // canonical empty
        assert!(DimRange::new(-3, 3).is_ok());
    }

    #[test]
    fn offsets_round_trip() {
        let r = DimRange::new(-2, 4).unwrap();
        assert_eq!(r.len(), 7);
        for (off, idx) in r.iter().enumerate() {
            assert_eq!(r.offset_of(idx).unwrap(), off);
            assert_eq!(r.index_at(off).unwrap(), idx);
        }
        assert!(r.offset_of(5).is_err());
        assert!(r.index_at(7).is_err());
    }

    #[test]
    fn intersection() {
        let a = DimRange::new(1, 10).unwrap();
        let b = DimRange::new(6, 15).unwrap();
        let c = a.intersect(&b);
        assert_eq!((c.lower(), c.upper()), (6, 10));
        let d = DimRange::new(11, 15).unwrap();
        assert!(a.intersect(&d).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(DimRange::new(1, 8).unwrap().to_string(), "1:8");
    }

    proptest! {
        #[test]
        fn prop_offset_round_trip(lower in -100i64..100, len in 0usize..200, probe in 0usize..200) {
            let r = DimRange::new(lower, lower + len as i64 - 1).unwrap();
            prop_assert_eq!(r.len(), len);
            if probe < len {
                let idx = r.index_at(probe).unwrap();
                prop_assert_eq!(r.offset_of(idx).unwrap(), probe);
            } else {
                prop_assert!(r.index_at(probe).is_err());
            }
        }

        #[test]
        fn prop_intersection_is_subset(a_lo in -50i64..50, a_len in 0usize..100,
                                       b_lo in -50i64..50, b_len in 0usize..100) {
            let a = DimRange::new(a_lo, a_lo + a_len as i64 - 1).unwrap();
            let b = DimRange::new(b_lo, b_lo + b_len as i64 - 1).unwrap();
            let c = a.intersect(&b);
            for i in c.iter() {
                prop_assert!(a.contains(i) && b.contains(i));
            }
            // Every element of both is in the intersection.
            for i in a.iter() {
                if b.contains(i) {
                    prop_assert!(c.contains(i));
                }
            }
        }
    }
}
