//! Index domains, points and sections for the Vienna Fortran reproduction.
//!
//! Vienna Fortran (Chapman, Mehrotra, Moritsch, Zima; Supercomputing '93)
//! models every array `A` by an *index domain* `I^A` — the set of valid
//! index tuples — and defines distributions and alignments as mappings
//! between index domains (paper, Definitions 1 and 2).  This crate provides
//! the index-domain substrate used by every other crate in the workspace:
//!
//! * [`DimRange`] — an inclusive, Fortran-style per-dimension bound
//!   (`lower:upper`), possibly with a non-unit lower bound.
//! * [`Point`] — a fixed-capacity multi-dimensional index tuple (rank ≤
//!   [`MAX_RANK`]), cheap to copy and free of heap allocation so it can be
//!   used in inner loops.
//! * [`IndexDomain`] — a rectangular index domain with iteration,
//!   column-major (Fortran) and row-major linearisation, and containment
//!   checks.
//! * [`Section`] — a regular array section described by per-dimension
//!   triplets `lower:upper:stride`, as used by array arguments such as
//!   `V(:, J)` and `V(I, :)` in the paper's Figure 1.
//!
//! The conventions follow Fortran: indices are `i64`, bounds are inclusive,
//! and the *first* index varies fastest in column-major order (the default
//! linearisation used throughout the workspace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dim;
mod domain;
mod error;
mod point;
mod section;

pub use dim::DimRange;
pub use domain::{DomainIter, IndexDomain};
pub use error::IndexError;
pub use point::Point;
pub use section::{Section, SectionIter, Triplet};

/// Maximum rank (number of dimensions) supported for arrays and processor
/// arrays.  Fortran 77 allows seven dimensions; every example in the paper
/// uses at most three.
pub const MAX_RANK: usize = 7;

/// Convenience result alias for fallible index operations.
pub type Result<T> = std::result::Result<T, IndexError>;
