//! Regular array sections (Fortran triplet notation).

use crate::{DimRange, IndexDomain, IndexError, Point, Result, MAX_RANK};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One dimension of a section: the Fortran triplet `lower:upper:stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triplet {
    lower: i64,
    upper: i64,
    stride: i64,
}

impl Triplet {
    /// Creates a triplet `lower:upper:stride`.
    ///
    /// # Errors
    /// Returns [`IndexError::InvalidStride`] for strides < 1 and
    /// [`IndexError::InvalidBounds`] for `upper < lower - 1`.
    pub fn new(lower: i64, upper: i64, stride: i64) -> Result<Self> {
        if stride < 1 {
            return Err(IndexError::InvalidStride { stride });
        }
        if upper < lower - 1 {
            return Err(IndexError::InvalidBounds { lower, upper });
        }
        Ok(Self {
            lower,
            upper,
            stride,
        })
    }

    /// A unit-stride triplet covering `range` — the `:` of Fortran.
    pub fn full(range: DimRange) -> Self {
        Self {
            lower: range.lower(),
            upper: range.upper(),
            stride: 1,
        }
    }

    /// A degenerate triplet selecting the single index `i` — e.g. the `J`
    /// in `V(:, J)`.
    pub fn single(i: i64) -> Self {
        Self {
            lower: i,
            upper: i,
            stride: 1,
        }
    }

    /// Lower bound.
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Upper bound (inclusive).
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Stride (>= 1).
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Number of selected indices.
    pub fn len(&self) -> usize {
        if self.upper < self.lower {
            0
        } else {
            ((self.upper - self.lower) / self.stride + 1) as usize
        }
    }

    /// Whether no indices are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `index` is selected by the triplet.
    pub fn contains(&self, index: i64) -> bool {
        index >= self.lower && index <= self.upper && (index - self.lower) % self.stride == 0
    }

    /// The `k`-th selected index.
    pub fn index_at(&self, k: usize) -> Result<i64> {
        if k >= self.len() {
            return Err(IndexError::LinearOutOfBounds {
                offset: k,
                size: self.len(),
            });
        }
        Ok(self.lower + k as i64 * self.stride)
    }
}

impl fmt::Display for Triplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lower == self.upper {
            write!(f, "{}", self.lower)
        } else if self.stride == 1 {
            write!(f, "{}:{}", self.lower, self.upper)
        } else {
            write!(f, "{}:{}:{}", self.lower, self.upper, self.stride)
        }
    }
}

/// A regular array section: one [`Triplet`] per dimension of the parent
/// array, e.g. `V(:, J)` or `V(I, :)` from the ADI code in Figure 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Section {
    triplets: Vec<Triplet>,
}

impl Section {
    /// Creates a section from explicit triplets.
    pub fn new(triplets: Vec<Triplet>) -> Result<Self> {
        if triplets.is_empty() || triplets.len() > MAX_RANK {
            return Err(IndexError::RankTooLarge {
                requested: triplets.len(),
            });
        }
        Ok(Self { triplets })
    }

    /// The section covering an entire domain.
    pub fn all(domain: &IndexDomain) -> Self {
        Self {
            triplets: domain.dims().iter().map(|&d| Triplet::full(d)).collect(),
        }
    }

    /// A column section `A(:, j)` of a 2-D domain.
    pub fn column(domain: &IndexDomain, j: i64) -> Result<Self> {
        if domain.rank() != 2 {
            return Err(IndexError::RankMismatch {
                expected: 2,
                found: domain.rank(),
            });
        }
        Ok(Self {
            triplets: vec![Triplet::full(domain.dim(0)), Triplet::single(j)],
        })
    }

    /// A row section `A(i, :)` of a 2-D domain.
    pub fn row(domain: &IndexDomain, i: i64) -> Result<Self> {
        if domain.rank() != 2 {
            return Err(IndexError::RankMismatch {
                expected: 2,
                found: domain.rank(),
            });
        }
        Ok(Self {
            triplets: vec![Triplet::single(i), Triplet::full(domain.dim(1))],
        })
    }

    /// Number of dimensions (of the parent array).
    pub fn rank(&self) -> usize {
        self.triplets.len()
    }

    /// The triplet in dimension `dim`.
    pub fn triplet(&self, dim: usize) -> Triplet {
        self.triplets[dim]
    }

    /// All triplets.
    pub fn triplets(&self) -> &[Triplet] {
        &self.triplets
    }

    /// Number of elements selected by the section.
    pub fn size(&self) -> usize {
        self.triplets.iter().map(|t| t.len()).product()
    }

    /// Whether the section selects no elements.
    pub fn is_empty(&self) -> bool {
        self.triplets.iter().any(|t| t.is_empty())
    }

    /// Whether the section selects `point`.
    pub fn contains(&self, point: &Point) -> bool {
        point.rank() == self.rank()
            && self
                .triplets
                .iter()
                .enumerate()
                .all(|(d, t)| t.contains(point.coord(d)))
    }

    /// Whether every selected point lies within `domain`.
    pub fn within(&self, domain: &IndexDomain) -> bool {
        self.rank() == domain.rank()
            && self.triplets.iter().enumerate().all(|(d, t)| {
                t.is_empty()
                    || (domain.dim(d).contains(t.lower()) && domain.dim(d).contains(t.upper()))
            })
    }

    /// Iterator over the selected points in column-major order.
    pub fn iter(&self) -> SectionIter<'_> {
        SectionIter {
            section: self,
            counters: vec![0; self.rank()],
            done: self.is_empty(),
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.triplets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Column-major iterator over the points selected by a [`Section`].
pub struct SectionIter<'a> {
    section: &'a Section,
    counters: Vec<usize>,
    done: bool,
}

impl Iterator for SectionIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let coords: Vec<i64> = self
            .counters
            .iter()
            .enumerate()
            .map(|(d, &k)| {
                self.section
                    .triplet(d)
                    .index_at(k)
                    .expect("counter in range")
            })
            .collect();
        let point = Point::new(&coords).expect("rank checked at construction");
        // Advance counters column-major.
        let mut advanced = false;
        for d in 0..self.section.rank() {
            if self.counters[d] + 1 < self.section.triplet(d).len() {
                self.counters[d] += 1;
                advanced = true;
                break;
            }
            self.counters[d] = 0;
        }
        if !advanced {
            self.done = true;
        }
        Some(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn triplet_basics() {
        let t = Triplet::new(1, 10, 3).unwrap();
        assert_eq!(t.len(), 4); // 1, 4, 7, 10
        assert!(t.contains(7));
        assert!(!t.contains(8));
        assert_eq!(t.index_at(3).unwrap(), 10);
        assert!(t.index_at(4).is_err());
        assert!(Triplet::new(1, 10, 0).is_err());
        assert!(Triplet::new(5, 1, 1).is_err());
        assert_eq!(t.to_string(), "1:10:3");
        assert_eq!(Triplet::single(4).to_string(), "4");
        assert_eq!(Triplet::new(2, 6, 1).unwrap().to_string(), "2:6");
    }

    #[test]
    fn column_and_row_sections() {
        let d = IndexDomain::d2(4, 3);
        let col = Section::column(&d, 2).unwrap();
        assert_eq!(col.size(), 4);
        assert_eq!(col.to_string(), "(1:4, 2)");
        let pts: Vec<Point> = col.iter().collect();
        assert_eq!(
            pts,
            vec![
                Point::d2(1, 2),
                Point::d2(2, 2),
                Point::d2(3, 2),
                Point::d2(4, 2)
            ]
        );
        let row = Section::row(&d, 3).unwrap();
        assert_eq!(row.size(), 3);
        assert!(row.contains(&Point::d2(3, 2)));
        assert!(!row.contains(&Point::d2(2, 2)));
        assert!(Section::column(&IndexDomain::d1(4), 1).is_err());
    }

    #[test]
    fn full_section_covers_domain() {
        let d = IndexDomain::d3(3, 2, 2);
        let s = Section::all(&d);
        assert_eq!(s.size(), d.size());
        assert!(s.within(&d));
        let pts: Vec<Point> = s.iter().collect();
        let dpts: Vec<Point> = d.iter().collect();
        assert_eq!(pts, dpts);
    }

    #[test]
    fn within_detects_out_of_domain_sections() {
        let d = IndexDomain::d2(4, 4);
        let s = Section::new(vec![
            Triplet::new(1, 5, 1).unwrap(),
            Triplet::full(d.dim(1)),
        ])
        .unwrap();
        assert!(!s.within(&d));
    }

    #[test]
    fn empty_section() {
        let s = Section::new(vec![Triplet::new(1, 0, 1).unwrap(), Triplet::single(1)]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.size(), 0);
    }

    proptest! {
        #[test]
        fn prop_iter_count_matches_size(lo in 1i64..5, len in 0i64..12, stride in 1i64..4, fixed in 1i64..8) {
            let t = Triplet::new(lo, lo + len - 1, stride).unwrap();
            let s = Section::new(vec![t, Triplet::single(fixed)]).unwrap();
            prop_assert_eq!(s.iter().count(), s.size());
            for p in s.iter() {
                prop_assert!(s.contains(&p));
                prop_assert_eq!(p.coord(1), fixed);
            }
        }
    }
}
