//! Rectangular index domains.

use crate::{DimRange, IndexError, Point, Result, MAX_RANK};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular index domain `I^A` of an array `A` (paper, Section 2.1):
/// the Cartesian product of per-dimension inclusive ranges.
///
/// The default linearisation is **column-major** (Fortran order, first index
/// varies fastest); a row-major linearisation is also provided for callers
/// that interoperate with C-ordered buffers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexDomain {
    dims: Vec<DimRange>,
}

impl IndexDomain {
    /// Creates a domain from explicit per-dimension ranges.
    ///
    /// # Errors
    /// Returns [`IndexError::RankTooLarge`] for more than [`MAX_RANK`] dims,
    /// and [`IndexError::InvalidBounds`] for a rank of zero.
    pub fn new(dims: Vec<DimRange>) -> Result<Self> {
        if dims.len() > MAX_RANK {
            return Err(IndexError::RankTooLarge {
                requested: dims.len(),
            });
        }
        if dims.is_empty() {
            return Err(IndexError::InvalidBounds {
                lower: 0,
                upper: -1,
            });
        }
        Ok(Self { dims })
    }

    /// Creates a Fortran-style domain `1:e1 × 1:e2 × …` from extents.
    pub fn of_extents(extents: &[usize]) -> Result<Self> {
        Self::new(extents.iter().map(|&e| DimRange::of_extent(e)).collect())
    }

    /// Creates a domain from `(lower, upper)` bound pairs.
    pub fn of_bounds(bounds: &[(i64, i64)]) -> Result<Self> {
        let dims = bounds
            .iter()
            .map(|&(lo, hi)| DimRange::new(lo, hi))
            .collect::<Result<Vec<_>>>()?;
        Self::new(dims)
    }

    /// Convenience: a 1-D domain `1:n`.
    pub fn d1(n: usize) -> Self {
        Self::of_extents(&[n]).expect("rank 1 is valid")
    }

    /// Convenience: a 2-D domain `1:n × 1:m`.
    pub fn d2(n: usize, m: usize) -> Self {
        Self::of_extents(&[n, m]).expect("rank 2 is valid")
    }

    /// Convenience: a 3-D domain `1:n × 1:m × 1:k`.
    pub fn d3(n: usize, m: usize, k: usize) -> Self {
        Self::of_extents(&[n, m, k]).expect("rank 3 is valid")
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The range of dimension `dim` (0-based).
    ///
    /// # Panics
    /// Panics if `dim >= rank()`.
    #[inline]
    pub fn dim(&self, dim: usize) -> DimRange {
        self.dims[dim]
    }

    /// All per-dimension ranges.
    #[inline]
    pub fn dims(&self) -> &[DimRange] {
        &self.dims
    }

    /// Extent (number of indices) of dimension `dim`.
    #[inline]
    pub fn extent(&self, dim: usize) -> usize {
        self.dims[dim].len()
    }

    /// Extents of all dimensions.
    pub fn extents(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.len()).collect()
    }

    /// Total number of index tuples in the domain.
    pub fn size(&self) -> usize {
        self.dims.iter().map(|d| d.len()).product()
    }

    /// Whether the domain contains zero index tuples.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|d| d.is_empty())
    }

    /// Whether `point` lies within the domain (and has the right rank).
    pub fn contains(&self, point: &Point) -> bool {
        point.rank() == self.rank()
            && self
                .dims
                .iter()
                .enumerate()
                .all(|(d, r)| r.contains(point.coord(d)))
    }

    /// Checks that `point` lies within the domain, reporting the offending
    /// dimension otherwise.
    pub fn check(&self, point: &Point) -> Result<()> {
        if point.rank() != self.rank() {
            return Err(IndexError::RankMismatch {
                expected: self.rank(),
                found: point.rank(),
            });
        }
        for (d, r) in self.dims.iter().enumerate() {
            if !r.contains(point.coord(d)) {
                return Err(IndexError::OutOfBounds {
                    dim: d,
                    index: point.coord(d),
                    lower: r.lower(),
                    upper: r.upper(),
                });
            }
        }
        Ok(())
    }

    /// Column-major (Fortran) linear offset of `point`: the first index
    /// varies fastest.
    pub fn linearize(&self, point: &Point) -> Result<usize> {
        self.check(point)?;
        let mut offset = 0usize;
        let mut stride = 1usize;
        for (d, r) in self.dims.iter().enumerate() {
            let o = (point.coord(d) - r.lower()) as usize;
            offset += o * stride;
            stride *= r.len();
        }
        Ok(offset)
    }

    /// Row-major (C) linear offset of `point`: the last index varies fastest.
    pub fn linearize_row_major(&self, point: &Point) -> Result<usize> {
        self.check(point)?;
        let mut offset = 0usize;
        let mut stride = 1usize;
        for (d, r) in self.dims.iter().enumerate().rev() {
            let o = (point.coord(d) - r.lower()) as usize;
            offset += o * stride;
            stride *= r.len();
        }
        Ok(offset)
    }

    /// Inverse of [`IndexDomain::linearize`].
    pub fn delinearize(&self, offset: usize) -> Result<Point> {
        if offset >= self.size() {
            return Err(IndexError::LinearOutOfBounds {
                offset,
                size: self.size(),
            });
        }
        let mut rem = offset;
        let mut coords = [0i64; MAX_RANK];
        for (d, r) in self.dims.iter().enumerate() {
            let len = r.len();
            coords[d] = r.lower() + (rem % len) as i64;
            rem /= len;
        }
        Point::new(&coords[..self.rank()])
    }

    /// The intersection of two domains of equal rank; `None` if the ranks
    /// differ or the intersection is empty.
    pub fn intersect(&self, other: &IndexDomain) -> Option<IndexDomain> {
        if self.rank() != other.rank() {
            return None;
        }
        let dims: Vec<DimRange> = self
            .dims
            .iter()
            .zip(other.dims.iter())
            .map(|(a, b)| a.intersect(b))
            .collect();
        if dims.iter().any(|d| d.is_empty()) {
            None
        } else {
            Some(IndexDomain { dims })
        }
    }

    /// Iterator over all index tuples in column-major order.
    pub fn iter(&self) -> DomainIter<'_> {
        DomainIter {
            domain: self,
            next: if self.is_empty() {
                None
            } else {
                Some(Point::new(&self.dims.iter().map(|d| d.lower()).collect::<Vec<_>>()).unwrap())
            },
        }
    }
}

impl fmt::Display for IndexDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Column-major iterator over the points of an [`IndexDomain`].
pub struct DomainIter<'a> {
    domain: &'a IndexDomain,
    next: Option<Point>,
}

impl Iterator for DomainIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let current = self.next?;
        // Advance column-major: increment dimension 0 first.
        let mut p = current;
        let mut advanced = false;
        for d in 0..self.domain.rank() {
            let r = self.domain.dim(d);
            if p.coord(d) < r.upper() {
                p = p.with_coord(d, p.coord(d) + 1);
                advanced = true;
                break;
            }
            p = p.with_coord(d, r.lower());
        }
        self.next = if advanced { Some(p) } else { None };
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Not exact after partial iteration; good enough for collect().
        (0, Some(self.domain.size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extents_and_size() {
        let d = IndexDomain::d3(10, 10, 10);
        assert_eq!(d.rank(), 3);
        assert_eq!(d.size(), 1000);
        assert_eq!(d.extents(), vec![10, 10, 10]);
        assert!(!d.is_empty());
        assert_eq!(d.to_string(), "[1:10, 1:10, 1:10]");
    }

    #[test]
    fn zero_rank_rejected() {
        assert!(IndexDomain::of_extents(&[]).is_err());
        assert!(IndexDomain::of_extents(&[2; MAX_RANK + 1]).is_err());
    }

    #[test]
    fn containment() {
        let d = IndexDomain::of_bounds(&[(0, 9), (-5, 5)]).unwrap();
        assert!(d.contains(&Point::d2(0, -5)));
        assert!(d.contains(&Point::d2(9, 5)));
        assert!(!d.contains(&Point::d2(10, 0)));
        assert!(!d.contains(&Point::d1(3)));
        assert!(d.check(&Point::d2(3, 7)).is_err());
    }

    #[test]
    fn column_major_linearization() {
        let d = IndexDomain::d2(3, 2);
        // Column-major: (1,1)=0, (2,1)=1, (3,1)=2, (1,2)=3, ...
        assert_eq!(d.linearize(&Point::d2(1, 1)).unwrap(), 0);
        assert_eq!(d.linearize(&Point::d2(2, 1)).unwrap(), 1);
        assert_eq!(d.linearize(&Point::d2(1, 2)).unwrap(), 3);
        assert_eq!(d.linearize(&Point::d2(3, 2)).unwrap(), 5);
    }

    #[test]
    fn row_major_linearization() {
        let d = IndexDomain::d2(3, 2);
        // Row-major: (1,1)=0, (1,2)=1, (2,1)=2, ...
        assert_eq!(d.linearize_row_major(&Point::d2(1, 1)).unwrap(), 0);
        assert_eq!(d.linearize_row_major(&Point::d2(1, 2)).unwrap(), 1);
        assert_eq!(d.linearize_row_major(&Point::d2(2, 1)).unwrap(), 2);
        assert_eq!(d.linearize_row_major(&Point::d2(3, 2)).unwrap(), 5);
    }

    #[test]
    fn delinearize_round_trip() {
        let d = IndexDomain::of_bounds(&[(2, 5), (0, 2), (-1, 1)]).unwrap();
        for off in 0..d.size() {
            let p = d.delinearize(off).unwrap();
            assert_eq!(d.linearize(&p).unwrap(), off);
        }
        assert!(d.delinearize(d.size()).is_err());
    }

    #[test]
    fn iteration_order_is_column_major() {
        let d = IndexDomain::d2(2, 2);
        let pts: Vec<Point> = d.iter().collect();
        assert_eq!(
            pts,
            vec![
                Point::d2(1, 1),
                Point::d2(2, 1),
                Point::d2(1, 2),
                Point::d2(2, 2)
            ]
        );
    }

    #[test]
    fn iteration_covers_domain_exactly_once() {
        let d = IndexDomain::of_bounds(&[(0, 3), (5, 7)]).unwrap();
        let pts: Vec<Point> = d.iter().collect();
        assert_eq!(pts.len(), d.size());
        let mut seen = std::collections::HashSet::new();
        for p in &pts {
            assert!(d.contains(p));
            assert!(seen.insert(*p));
        }
    }

    #[test]
    fn empty_domain_iteration() {
        let d = IndexDomain::of_bounds(&[(1, 0), (1, 5)]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.size(), 0);
        assert_eq!(d.iter().count(), 0);
    }

    #[test]
    fn intersection() {
        let a = IndexDomain::of_bounds(&[(1, 10), (1, 10)]).unwrap();
        let b = IndexDomain::of_bounds(&[(6, 20), (3, 8)]).unwrap();
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.dim(0).lower(), 6);
        assert_eq!(c.dim(0).upper(), 10);
        assert_eq!(c.dim(1).lower(), 3);
        assert_eq!(c.dim(1).upper(), 8);
        let disjoint = IndexDomain::of_bounds(&[(11, 20), (1, 10)]).unwrap();
        assert!(a.intersect(&disjoint).is_none());
        assert!(a.intersect(&IndexDomain::d1(5)).is_none());
    }

    proptest! {
        #[test]
        fn prop_linearize_round_trip(e1 in 1usize..12, e2 in 1usize..12, e3 in 1usize..6) {
            let d = IndexDomain::d3(e1, e2, e3);
            for off in 0..d.size() {
                let p = d.delinearize(off).unwrap();
                prop_assert_eq!(d.linearize(&p).unwrap(), off);
            }
        }

        #[test]
        fn prop_iter_matches_linearization(e1 in 1usize..10, e2 in 1usize..10) {
            let d = IndexDomain::d2(e1, e2);
            for (off, p) in d.iter().enumerate() {
                prop_assert_eq!(d.linearize(&p).unwrap(), off);
            }
        }
    }
}
