//! Dynamic data distributions in Vienna Fortran — the language-level
//! contribution of the paper, realised as a Rust library.
//!
//! The paper (Chapman, Mehrotra, Moritsch, Zima; Supercomputing '93)
//! extends Vienna Fortran with *dynamically distributed arrays*: arrays
//! whose association with a distribution may change at run time, under the
//! control of an executable `DISTRIBUTE` statement, constrained by `RANGE`
//! attributes, organised into *connect equivalence classes* of primary and
//! secondary arrays, and queried with the `DCASE` construct and the `IDT`
//! intrinsic.  This crate implements those semantics (paper §2) on top of
//! the Vienna Fortran Engine runtime ([`vf_runtime`]) and the simulated
//! distributed-memory machine ([`vf_machine`]), together with the
//! compiler-side *reaching distribution* analysis of §3.1.
//!
//! # Layout
//!
//! * [`decl`] — `DYNAMIC` and static array declarations, `RANGE`
//!   attributes, initial distributions (paper §2.3);
//! * [`connect`] — the connect equivalence relation: primary arrays,
//!   secondary arrays, connections by distribution extraction or alignment
//!   (paper §2.3);
//! * [`VfScope`] — a procedure scope holding declared arrays and executing
//!   statements against the runtime;
//! * [`distribute`] — the executable `DISTRIBUTE` statement with
//!   `NOTRANSFER` (paper §2.4, §3.2.2);
//! * [`dcase`] — the `DCASE` construct and the `IDT` intrinsic (paper
//!   §2.5);
//! * [`analysis`] — the reaching-distribution (plausible distribution set)
//!   dataflow analysis and partial evaluation of distribution queries
//!   (paper §3.1).
//!
//! The crate re-exports the substrate crates so that a downstream user only
//! needs `vf_core` in scope.
//!
//! # Quick example
//!
//! The ADI pattern of the paper's Figure 1 — declare a dynamic array with a
//! range, distribute it by columns, sweep, redistribute by rows, sweep:
//!
//! ```
//! use vf_core::prelude::*;
//!
//! let machine = Machine::with_procs(4);
//! let mut scope: VfScope<f64> = VfScope::new(machine);
//! scope
//!     .declare_dynamic(
//!         DynamicDecl::new("V", IndexDomain::d2(8, 8))
//!             .range([DistPattern::exact(&DistType::columns()),
//!                     DistPattern::exact(&DistType::rows())])
//!             .initial(DistType::columns()),
//!     )
//!     .unwrap();
//! // ... x-line sweeps on local columns ...
//! scope
//!     .distribute(DistributeStmt::new("V", DistType::rows()))
//!     .unwrap();
//! assert!(scope.idt("V", &DistPattern::exact(&DistType::rows())).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod connect;
pub mod dcase;
pub mod decl;
pub mod distribute;
mod error;
pub mod procedures;
mod scope;

pub use connect::{ConnectClass, Connection};
pub use dcase::{idt, idt_on, Condition, Dcase, DcaseClause};
pub use decl::{DeclKind, DynamicDecl, SecondaryDecl, StaticDecl};
pub use distribute::{DimSpec, DistExpr, DistributeReport, DistributeStmt};
pub use error::CoreError;
pub use procedures::{CallReport, FormalArg, ReturnPolicy};
pub use scope::{ClassGhosts, ClassHalo, ClassHaloExchange, VfScope};

/// Convenience result alias for language-layer operations.
pub type Result<T> = std::result::Result<T, CoreError>;

// Re-export the substrate crates under stable names.
pub use vf_dist;
pub use vf_index;
pub use vf_machine;
pub use vf_runtime;

/// A prelude bringing the commonly used types of the whole workspace into
/// scope.
pub mod prelude {
    pub use crate::analysis::{Program, QueryOutcome, ReachingDistributions, Stmt};
    pub use crate::{
        idt, idt_on, CallReport, ClassGhosts, ClassHalo, ClassHaloExchange, Condition,
        ConnectClass, Connection, CoreError, Dcase, DcaseClause, DeclKind, DimSpec, DistExpr,
        DistributeReport, DistributeStmt, DynamicDecl, FormalArg, ReturnPolicy, SecondaryDecl,
        StaticDecl, VfScope,
    };
    pub use vf_dist::{
        construct, Alignment, Connectivity, DimDist, DimPattern, DistPattern, DistType,
        Distribution, IndirectMap, ProcId, ProcessorArray, ProcessorView,
    };
    pub use vf_index::{DimRange, IndexDomain, Point, Section, Triplet};
    pub use vf_machine::{CommStats, CommTracker, CostModel, Machine, Topology, WorkerPool};
    pub use vf_runtime::{
        assign, execute_redistribute_fused, execute_redistribute_fused_sharded,
        execute_redistribute_fused_wire, ghost, parti, plan, redistribute, redistribute_cached,
        redistribute_cached_with, redistribute_sharded, redistribute_split, redistribute_with,
        reduce, table_for, translation, ArrayDescriptor, CheckpointStore, CommPlan, DistArray,
        DistTranslationTable, Element, ExecBackend, ExecReport, FusedPlan, PlanCache,
        PlanCacheStats, PlanExecutor, RedistOptions, RedistReport, RestoredCheckpoint,
        SerialExecutor, ShardedArray, ShardedExecutor, ShardedHaloExchange, SplitExecReport,
        SplitPhaseExchange, SplitRedistribute, ThreadedExecutor, TranslationStats,
    };
}
