//! A structured statement-level intermediate representation.
//!
//! The analysis does not need full Fortran: what matters for the reaching
//! distribution problem is where arrays are redistributed, where they are
//! accessed, and the control structure in between (conditionals, loops and
//! `DCASE` constructs).  Distribution expressions whose parameters are only
//! known at run time (e.g. `CYCLIC(K)` with a runtime `K`, or
//! `B_BLOCK(BOUNDS)`) are represented by patterns such as `CYCLIC(*)`,
//! exactly the abstraction the compiler has to work with.

use crate::dcase::Condition;
use vf_dist::DistPattern;

/// A statement of the analysed program fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An executable `DISTRIBUTE` statement; `dist` is the (possibly
    /// partially known) distribution type it establishes.
    Distribute {
        /// The redistributed (primary) array.
        array: String,
        /// The established distribution type (as a pattern when parameters
        /// are runtime values).
        dist: DistPattern,
    },
    /// An access (read or write) to a distributed array; `label` names the
    /// program point so the analysis result can be queried.
    Access {
        /// The accessed array.
        array: String,
        /// A unique label for this access.
        label: String,
    },
    /// A two-way conditional whose predicate is opaque to the analysis.
    If {
        /// Statements executed when the predicate holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
    /// A loop executed an unknown number of times (possibly zero).
    Loop {
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// A `DCASE` construct over the given selectors.
    Dcase {
        /// Selector array names.
        selectors: Vec<String>,
        /// Condition–body pairs in evaluation order.
        clauses: Vec<(Condition, Vec<Stmt>)>,
    },
}

impl Stmt {
    /// A `DISTRIBUTE` statement.
    pub fn distribute(array: impl Into<String>, dist: DistPattern) -> Self {
        Stmt::Distribute {
            array: array.into(),
            dist,
        }
    }

    /// An array access with a label.
    pub fn access(array: impl Into<String>, label: impl Into<String>) -> Self {
        Stmt::Access {
            array: array.into(),
            label: label.into(),
        }
    }

    /// An `IF` statement with both branches.
    pub fn if_else(then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Self {
        Stmt::If {
            then_branch,
            else_branch,
        }
    }

    /// An `IF` statement with no `ELSE` part.
    pub fn if_then(then_branch: Vec<Stmt>) -> Self {
        Stmt::If {
            then_branch,
            else_branch: Vec::new(),
        }
    }

    /// A loop.
    pub fn loop_(body: Vec<Stmt>) -> Self {
        Stmt::Loop { body }
    }

    /// A `DCASE` construct.
    pub fn dcase(
        selectors: impl IntoIterator<Item = impl Into<String>>,
        clauses: Vec<(Condition, Vec<Stmt>)>,
    ) -> Self {
        Stmt::Dcase {
            selectors: selectors.into_iter().map(Into::into).collect(),
            clauses,
        }
    }
}

/// A program fragment to analyse: the distributions established by the
/// declarations (initial distributions of static and dynamic arrays) plus
/// the statement list of the procedure body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    initial: Vec<(String, DistPattern)>,
    body: Vec<Stmt>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the initial (declaration-time) distribution of an array.
    /// Arrays without an entry are treated as not yet distributed.
    pub fn with_initial(mut self, array: impl Into<String>, dist: DistPattern) -> Self {
        self.initial.push((array.into(), dist));
        self
    }

    /// Appends a statement to the body.
    pub fn stmt(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Appends several statements to the body.
    pub fn stmts(mut self, stmts: impl IntoIterator<Item = Stmt>) -> Self {
        self.body.extend(stmts);
        self
    }

    /// The declaration-time distributions.
    pub fn initial(&self) -> &[(String, DistPattern)] {
        &self.initial
    }

    /// The statement list.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DimPattern, DistType};

    #[test]
    fn builders_produce_expected_shapes() {
        let p = Program::new()
            .with_initial("V", DistPattern::exact(&DistType::columns()))
            .stmt(Stmt::access("V", "read1"))
            .stmt(Stmt::distribute("V", DistPattern::exact(&DistType::rows())))
            .stmt(Stmt::if_then(vec![Stmt::access("V", "read2")]))
            .stmt(Stmt::loop_(vec![Stmt::access("V", "read3")]))
            .stmt(Stmt::dcase(
                ["V"],
                vec![(
                    crate::Condition::Positional(vec![DistPattern::dims(vec![
                        DimPattern::Block,
                        DimPattern::Star,
                    ])]),
                    vec![Stmt::access("V", "read4")],
                )],
            ));
        assert_eq!(p.initial().len(), 1);
        assert_eq!(p.body().len(), 5);
        assert!(matches!(p.body()[0], Stmt::Access { .. }));
        assert!(matches!(p.body()[2], Stmt::If { .. }));
        assert!(matches!(p.body()[4], Stmt::Dcase { .. }));
    }
}
