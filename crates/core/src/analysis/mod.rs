//! Compiler-side analysis for dynamic distributions (paper §3.1).
//!
//! "The most important task in the analysis phase is solving the *reaching
//! distribution problem*: the compiler must determine the range of
//! distribution types which may reach a specific array access in the code."
//! This module provides a statement-level intermediate representation
//! ([`Stmt`], [`Program`]), the reaching-distribution dataflow analysis
//! computing the *plausible distribution set* at every access
//! ([`ReachingDistributions`]), and the partial evaluation of distribution
//! queries (`IDT`/`DCASE`) against those sets ([`QueryOutcome`]).

mod ir;
mod partial_eval;
mod reaching;

pub use ir::{Program, Stmt};
pub use partial_eval::{compatible, evaluate_condition, evaluate_query, QueryOutcome};
pub use reaching::{AccessInfo, ReachingDistributions};
