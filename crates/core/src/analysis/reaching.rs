//! The reaching-distribution dataflow analysis.

use super::ir::{Program, Stmt};
use super::partial_eval::compatible;
use crate::dcase::Condition;
use std::collections::HashMap;
use vf_dist::DistPattern;

/// The plausible distribution set of one array at one program point: the
/// set of distribution types (as patterns) that may reach it.  An empty set
/// means the array has not been distributed on any path — accessing it is
/// illegal (paper §2.3).
type PlausibleSet = Vec<DistPattern>;

/// The analysis state: one plausible set per array.
type State = HashMap<String, PlausibleSet>;

fn insert_pattern(set: &mut PlausibleSet, p: &DistPattern) {
    if !set.contains(p) {
        set.push(p.clone());
    }
}

fn join_states(a: &State, b: &State) -> State {
    let mut out = a.clone();
    for (k, set) in b {
        let entry = out.entry(k.clone()).or_default();
        for p in set {
            insert_pattern(entry, p);
        }
    }
    out
}

fn states_equal(a: &State, b: &State) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|(k, set)| {
        b.get(k)
            .map(|other| set.len() == other.len() && set.iter().all(|p| other.contains(p)))
            .unwrap_or(false)
    })
}

/// The plausible distribution set recorded at one labelled access.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessInfo {
    /// The access label from the IR.
    pub label: String,
    /// The accessed array.
    pub array: String,
    /// The distribution-type patterns that may reach the access.
    pub plausible: Vec<DistPattern>,
}

/// The result of the reaching-distribution analysis over a [`Program`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReachingDistributions {
    accesses: Vec<AccessInfo>,
    final_state: State,
}

impl ReachingDistributions {
    /// Runs the analysis.
    pub fn analyze(program: &Program) -> Self {
        let mut state: State = HashMap::new();
        for (name, dist) in program.initial() {
            state.insert(name.clone(), vec![dist.clone()]);
        }
        let mut result = ReachingDistributions::default();
        let out = result.analyze_block(program.body(), state);
        result.final_state = out;
        result
    }

    fn analyze_block(&mut self, stmts: &[Stmt], mut state: State) -> State {
        for stmt in stmts {
            state = self.analyze_stmt(stmt, state);
        }
        state
    }

    fn analyze_stmt(&mut self, stmt: &Stmt, mut state: State) -> State {
        match stmt {
            Stmt::Distribute { array, dist } => {
                // A DISTRIBUTE statement kills every previously reaching
                // distribution of the array and establishes exactly one.
                state.insert(array.clone(), vec![dist.clone()]);
                state
            }
            Stmt::Access { array, label } => {
                let plausible = state.get(array).cloned().unwrap_or_default();
                self.accesses.push(AccessInfo {
                    label: label.clone(),
                    array: array.clone(),
                    plausible,
                });
                state
            }
            Stmt::If {
                then_branch,
                else_branch,
            } => {
                let s1 = self.analyze_block(then_branch, state.clone());
                let s2 = self.analyze_block(else_branch, state);
                join_states(&s1, &s2)
            }
            Stmt::Loop { body } => {
                // Iterate to a fixpoint: the loop may execute zero or more
                // times, so the result is the join of the entry state with
                // every iteration's exit state.
                let mut current = state;
                loop {
                    // Accesses recorded during intermediate (non-final)
                    // iterations would be duplicates; analyse on a scratch
                    // recorder and only keep the last iteration's records.
                    let mut scratch = ReachingDistributions::default();
                    let body_out = scratch.analyze_block(body, current.clone());
                    let next = join_states(&current, &body_out);
                    if states_equal(&next, &current) {
                        // Fixpoint reached: record the accesses of one body
                        // execution under the stable state.
                        let stable = self.analyze_block(body, current.clone());
                        return join_states(&current, &stable);
                    }
                    current = next;
                }
            }
            Stmt::Dcase { selectors, clauses } => {
                // Each clause body is analysed under a state refined by its
                // condition; the construct may also fall through without
                // executing any clause.
                let mut joined = state.clone();
                for (condition, body) in clauses {
                    let refined = refine_state(&state, selectors, condition);
                    let out = self.analyze_block(body, refined);
                    joined = join_states(&joined, &out);
                }
                joined
            }
        }
    }

    /// The recorded accesses, in program order.
    pub fn accesses(&self) -> &[AccessInfo] {
        &self.accesses
    }

    /// The plausible set recorded for the access with the given label.
    pub fn plausible_at(&self, label: &str) -> Option<&[DistPattern]> {
        self.accesses
            .iter()
            .find(|a| a.label == label)
            .map(|a| a.plausible.as_slice())
    }

    /// The plausible set of an array at the end of the program.
    pub fn final_plausible(&self, array: &str) -> &[DistPattern] {
        self.final_state
            .get(array)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Accesses whose plausible set is empty — illegal accesses to arrays
    /// that are not distributed on any path (paper §2.3).
    pub fn undistributed_accesses(&self) -> Vec<&AccessInfo> {
        self.accesses
            .iter()
            .filter(|a| a.plausible.is_empty())
            .collect()
    }
}

/// Refines a state with the knowledge that a `DCASE` condition matched: each
/// queried selector's plausible set is filtered to the patterns compatible
/// with its query.
fn refine_state(state: &State, selectors: &[String], condition: &Condition) -> State {
    let queries: Vec<(String, DistPattern)> = match condition {
        Condition::Default => Vec::new(),
        Condition::Positional(patterns) => selectors
            .iter()
            .zip(patterns.iter())
            .map(|(s, p)| (s.clone(), p.clone()))
            .collect(),
        Condition::NameTagged(tagged) => tagged.clone(),
    };
    let mut refined = state.clone();
    for (name, query) in queries {
        if let Some(set) = refined.get_mut(&name) {
            set.retain(|p| compatible(p, &query));
        }
    }
    refined
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DimPattern, DistType};

    fn cols() -> DistPattern {
        DistPattern::exact(&DistType::columns())
    }

    fn rows() -> DistPattern {
        DistPattern::exact(&DistType::rows())
    }

    fn blocks() -> DistPattern {
        DistPattern::exact(&DistType::blocks2d())
    }

    #[test]
    fn straight_line_code_has_singleton_sets() {
        // The ADI pattern of Figure 1: a redistribute between two accesses.
        let program = Program::new()
            .with_initial("V", cols())
            .stmt(Stmt::access("V", "x_sweep"))
            .stmt(Stmt::distribute("V", rows()))
            .stmt(Stmt::access("V", "y_sweep"));
        let result = ReachingDistributions::analyze(&program);
        assert_eq!(result.plausible_at("x_sweep").unwrap(), &[cols()]);
        assert_eq!(result.plausible_at("y_sweep").unwrap(), &[rows()]);
        assert_eq!(result.final_plausible("V"), &[rows()]);
        assert!(result.undistributed_accesses().is_empty());
    }

    #[test]
    fn conditional_redistribution_merges_sets() {
        let program = Program::new()
            .with_initial("A", cols())
            .stmt(Stmt::if_then(vec![Stmt::distribute("A", blocks())]))
            .stmt(Stmt::access("A", "after_if"));
        let result = ReachingDistributions::analyze(&program);
        let set = result.plausible_at("after_if").unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(&cols()) && set.contains(&blocks()));
    }

    #[test]
    fn loop_redistribution_reaches_fixpoint() {
        // Inside the loop the array may carry either the entry distribution
        // or the one set at the end of a previous iteration.
        let program = Program::new()
            .with_initial("F", DistPattern::dims(vec![DimPattern::Block]))
            .stmt(Stmt::loop_(vec![
                Stmt::access("F", "in_loop"),
                Stmt::if_then(vec![Stmt::distribute(
                    "F",
                    DistPattern::dims(vec![DimPattern::GenBlockAny]),
                )]),
            ]))
            .stmt(Stmt::access("F", "after_loop"));
        let result = ReachingDistributions::analyze(&program);
        let in_loop = result.plausible_at("in_loop").unwrap();
        assert_eq!(in_loop.len(), 2);
        let after = result.plausible_at("after_loop").unwrap();
        assert_eq!(after.len(), 2);
    }

    #[test]
    fn access_before_distribution_is_flagged() {
        let program = Program::new()
            .stmt(Stmt::access("B1", "too_early"))
            .stmt(Stmt::distribute(
                "B1",
                DistPattern::dims(vec![DimPattern::Block]),
            ))
            .stmt(Stmt::access("B1", "ok"));
        let result = ReachingDistributions::analyze(&program);
        assert!(result.plausible_at("too_early").unwrap().is_empty());
        assert_eq!(result.undistributed_accesses().len(), 1);
        assert_eq!(result.plausible_at("ok").unwrap().len(), 1);
    }

    #[test]
    fn dcase_clauses_refine_the_plausible_set() {
        // After the IF join the array may be (:,BLOCK) or (BLOCK,BLOCK); a
        // DCASE clause testing (BLOCK,*) narrows the set inside its body.
        let program = Program::new()
            .with_initial("A", cols())
            .stmt(Stmt::if_then(vec![Stmt::distribute("A", blocks())]))
            .stmt(Stmt::dcase(
                ["A"],
                vec![
                    (
                        Condition::Positional(vec![DistPattern::dims(vec![
                            DimPattern::Block,
                            DimPattern::Star,
                        ])]),
                        vec![Stmt::access("A", "block_clause")],
                    ),
                    (
                        Condition::Default,
                        vec![Stmt::access("A", "default_clause")],
                    ),
                ],
            ));
        let result = ReachingDistributions::analyze(&program);
        assert_eq!(result.plausible_at("block_clause").unwrap(), &[blocks()]);
        let default_set = result.plausible_at("default_clause").unwrap();
        assert_eq!(default_set.len(), 2);
    }

    #[test]
    fn distribute_kills_previous_distributions() {
        let program = Program::new()
            .with_initial("A", cols())
            .stmt(Stmt::if_then(vec![Stmt::distribute("A", blocks())]))
            .stmt(Stmt::distribute("A", rows()))
            .stmt(Stmt::access("A", "after_kill"));
        let result = ReachingDistributions::analyze(&program);
        assert_eq!(result.plausible_at("after_kill").unwrap(), &[rows()]);
    }
}
