//! Partial evaluation of distribution queries against plausible
//! distribution sets.
//!
//! The compiler "performs a partial evaluation of distribution queries
//! (both IDT and the dcase construct), by checking whether there is a
//! plausible distribution which will match" (paper §3.1).  When the
//! plausible set proves a query always (or never) matches, the runtime test
//! — and the code for the branches that cannot execute — can be removed.

use crate::dcase::Condition;
use vf_dist::{DimPattern, DistPattern};

/// The compile-time verdict on a runtime distribution query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Every plausible distribution matches: the query is statically true.
    Always,
    /// No plausible distribution can match: the query is statically false.
    Never,
    /// Some plausible distributions match and others might not: the query
    /// must be evaluated at run time.
    Maybe,
}

/// Whether two per-dimension patterns can both match some concrete
/// per-dimension distribution (a conservative compatibility test).
fn dim_compatible(a: &DimPattern, b: &DimPattern) -> bool {
    use DimPattern::*;
    match (a, b) {
        (Star, _) | (_, Star) => true,
        (Block, Block) => true,
        (Cyclic(x), Cyclic(y)) => x == y,
        (Cyclic(_), CyclicAny) | (CyclicAny, Cyclic(_)) | (CyclicAny, CyclicAny) => true,
        (GenBlock(x), GenBlock(y)) => x == y,
        (GenBlock(_), GenBlockAny) | (GenBlockAny, GenBlock(_)) | (GenBlockAny, GenBlockAny) => {
            true
        }
        (NotDistributed, NotDistributed) => true,
        _ => false,
    }
}

/// Whether two distribution-type patterns can both match some concrete
/// distribution type.  Used both to refine plausible sets inside `DCASE`
/// clauses and to prove queries unsatisfiable.
pub fn compatible(a: &DistPattern, b: &DistPattern) -> bool {
    match (a, b) {
        (DistPattern::Any, _) | (_, DistPattern::Any) => true,
        (DistPattern::Dims(xs), DistPattern::Dims(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| dim_compatible(x, y))
        }
    }
}

/// Partially evaluates a single query pattern against a plausible set.
///
/// An empty plausible set means the array cannot legally be accessed at
/// this point (it has not been distributed); the query is reported as
/// [`QueryOutcome::Never`].
pub fn evaluate_query(plausible: &[DistPattern], query: &DistPattern) -> QueryOutcome {
    if plausible.is_empty() {
        return QueryOutcome::Never;
    }
    let all_subsumed = plausible.iter().all(|p| query.subsumes(p));
    if all_subsumed {
        return QueryOutcome::Always;
    }
    let any_compatible = plausible.iter().any(|p| compatible(p, query));
    if any_compatible {
        QueryOutcome::Maybe
    } else {
        QueryOutcome::Never
    }
}

/// Partially evaluates a whole `DCASE` clause condition given the plausible
/// set of every selector (in selector order).
pub fn evaluate_condition(
    selectors: &[String],
    plausible: &[Vec<DistPattern>],
    condition: &Condition,
) -> QueryOutcome {
    debug_assert_eq!(selectors.len(), plausible.len());
    let queries: Vec<(usize, DistPattern)> = match condition {
        Condition::Default => return QueryOutcome::Always,
        Condition::Positional(patterns) => patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.clone()))
            .collect(),
        Condition::NameTagged(tagged) => tagged
            .iter()
            .filter_map(|(name, p)| {
                selectors
                    .iter()
                    .position(|s| s == name)
                    .map(|i| (i, p.clone()))
            })
            .collect(),
    };
    let mut outcome = QueryOutcome::Always;
    for (i, query) in queries {
        if i >= plausible.len() {
            return QueryOutcome::Never;
        }
        match evaluate_query(&plausible[i], &query) {
            QueryOutcome::Never => return QueryOutcome::Never,
            QueryOutcome::Maybe => outcome = QueryOutcome::Maybe,
            QueryOutcome::Always => {}
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::DistType;

    fn block2() -> DistPattern {
        DistPattern::exact(&DistType::blocks2d())
    }

    fn cols() -> DistPattern {
        DistPattern::exact(&DistType::columns())
    }

    #[test]
    fn compatibility_rules() {
        assert!(compatible(&DistPattern::Any, &block2()));
        assert!(compatible(&block2(), &DistPattern::Any));
        assert!(compatible(&block2(), &block2()));
        assert!(!compatible(&block2(), &cols()));
        assert!(!compatible(
            &DistPattern::dims(vec![DimPattern::Block]),
            &block2()
        ));
        assert!(compatible(
            &DistPattern::dims(vec![DimPattern::CyclicAny]),
            &DistPattern::dims(vec![DimPattern::Cyclic(4)])
        ));
        assert!(compatible(
            &DistPattern::dims(vec![DimPattern::GenBlockAny]),
            &DistPattern::dims(vec![DimPattern::GenBlock(vec![1, 2])])
        ));
        assert!(!compatible(
            &DistPattern::dims(vec![DimPattern::GenBlock(vec![3])]),
            &DistPattern::dims(vec![DimPattern::GenBlock(vec![1, 2])])
        ));
        assert!(compatible(
            &DistPattern::dims(vec![DimPattern::Star, DimPattern::Block]),
            &cols()
        ));
    }

    #[test]
    fn query_outcomes() {
        // Singleton plausible set matching the query exactly → Always.
        assert_eq!(evaluate_query(&[cols()], &cols()), QueryOutcome::Always);
        // Wildcard query always matches any non-empty plausible set.
        assert_eq!(
            evaluate_query(&[cols(), block2()], &DistPattern::Any),
            QueryOutcome::Always
        );
        // Mixed plausible set → Maybe.
        assert_eq!(
            evaluate_query(&[cols(), block2()], &cols()),
            QueryOutcome::Maybe
        );
        // Disjoint → Never.
        assert_eq!(evaluate_query(&[block2()], &cols()), QueryOutcome::Never);
        // Empty plausible set (array not yet distributed) → Never.
        assert_eq!(evaluate_query(&[], &cols()), QueryOutcome::Never);
        // Plausible CYCLIC(*) versus concrete CYCLIC(2): might match.
        assert_eq!(
            evaluate_query(
                &[DistPattern::dims(vec![DimPattern::CyclicAny])],
                &DistPattern::dims(vec![DimPattern::Cyclic(2)])
            ),
            QueryOutcome::Maybe
        );
    }

    #[test]
    fn condition_evaluation() {
        let selectors = vec!["B1".to_string(), "B3".to_string()];
        let plausible = vec![vec![cols()], vec![block2(), cols()]];
        assert_eq!(
            evaluate_condition(&selectors, &plausible, &Condition::Default),
            QueryOutcome::Always
        );
        // Positional: B1 must be (:,BLOCK) (always), B3 must be (BLOCK,BLOCK) (maybe).
        assert_eq!(
            evaluate_condition(
                &selectors,
                &plausible,
                &Condition::Positional(vec![cols(), block2()])
            ),
            QueryOutcome::Maybe
        );
        // Name-tagged query that can never match B1.
        assert_eq!(
            evaluate_condition(
                &selectors,
                &plausible,
                &Condition::NameTagged(vec![("B1".into(), block2())])
            ),
            QueryOutcome::Never
        );
        // Name-tagged query that always matches B1.
        assert_eq!(
            evaluate_condition(
                &selectors,
                &plausible,
                &Condition::NameTagged(vec![("B1".into(), cols())])
            ),
            QueryOutcome::Always
        );
    }
}
