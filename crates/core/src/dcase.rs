//! The `DCASE` construct and the `IDT` intrinsic (paper §2.5).

use crate::{CoreError, Result, VfScope};
use vf_dist::{DistPattern, DistType, ProcessorView};
use vf_runtime::Element;

/// The condition of one `DCASE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `CASE DEFAULT` — always matches.
    Default,
    /// A positional query list: patterns are associated with the selectors
    /// in order; selectors beyond the list length get an implicit `*`.
    Positional(Vec<DistPattern>),
    /// A name-tagged query list: each query names its selector explicitly;
    /// selectors without a query get an implicit `*`.  The order of the
    /// entries is semantically irrelevant.
    NameTagged(Vec<(String, DistPattern)>),
}

/// One condition–action pair of a `DCASE` construct.  The *action* is
/// represented by its index: [`Dcase::select`] returns the index of the
/// first matching clause and the caller dispatches on it, which keeps the
/// construct free of closures and easy to analyse.
#[derive(Debug, Clone, PartialEq)]
pub struct DcaseClause {
    /// The clause condition.
    pub condition: Condition,
    /// An optional human-readable label (useful in experiment output).
    pub label: Option<String>,
}

/// The `SELECT DCASE (A1, ..., Ar)` construct: a list of selector arrays and
/// a sequence of condition–action pairs, evaluated in order (paper §2.5.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dcase {
    selectors: Vec<String>,
    clauses: Vec<DcaseClause>,
}

impl Dcase {
    /// Starts a construct over the given selector arrays.
    pub fn new(selectors: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            selectors: selectors.into_iter().map(Into::into).collect(),
            clauses: Vec::new(),
        }
    }

    /// The selector array names.
    pub fn selectors(&self) -> &[String] {
        &self.selectors
    }

    /// The clauses in evaluation order.
    pub fn clauses(&self) -> &[DcaseClause] {
        &self.clauses
    }

    /// Adds a positional clause (`CASE (q1), (q2), ...`).
    pub fn when_positional(mut self, patterns: impl IntoIterator<Item = DistPattern>) -> Self {
        self.clauses.push(DcaseClause {
            condition: Condition::Positional(patterns.into_iter().collect()),
            label: None,
        });
        self
    }

    /// Adds a name-tagged clause (`CASE B1: (q1), B3: (q3)`).
    pub fn when_tagged(
        mut self,
        queries: impl IntoIterator<Item = (impl Into<String>, DistPattern)>,
    ) -> Self {
        self.clauses.push(DcaseClause {
            condition: Condition::NameTagged(
                queries.into_iter().map(|(n, p)| (n.into(), p)).collect(),
            ),
            label: None,
        });
        self
    }

    /// Adds a `CASE DEFAULT` clause.
    pub fn default_case(mut self) -> Self {
        self.clauses.push(DcaseClause {
            condition: Condition::Default,
            label: None,
        });
        self
    }

    /// Attaches a label to the most recently added clause.
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        if let Some(last) = self.clauses.last_mut() {
            last.label = Some(label.into());
        }
        self
    }

    /// Checks whether one clause condition matches the given selector
    /// distribution types.
    fn condition_matches(
        &self,
        condition: &Condition,
        types: &[(String, DistType)],
    ) -> Result<bool> {
        match condition {
            Condition::Default => Ok(true),
            Condition::Positional(patterns) => {
                if patterns.len() > types.len() {
                    return Err(CoreError::InvalidDcase {
                        reason: format!(
                            "positional query list has {} entries for {} selectors",
                            patterns.len(),
                            types.len()
                        ),
                    });
                }
                Ok(patterns
                    .iter()
                    .zip(types.iter())
                    .all(|(p, (_, t))| p.matches(t)))
            }
            Condition::NameTagged(queries) => {
                for (name, pattern) in queries {
                    let Some((_, t)) = types.iter().find(|(n, _)| n == name) else {
                        return Err(CoreError::InvalidDcase {
                            reason: format!(
                                "name-tagged query refers to {name}, which is not a selector"
                            ),
                        });
                    };
                    if !pattern.matches(t) {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Evaluates the construct against the current state of `scope` and
    /// returns the index of the first matching clause, or `None` when no
    /// clause matches (in which case the construct completes without
    /// executing an action, per the paper).
    ///
    /// Every selector must currently be associated with a distribution.
    pub fn select<T: Element>(&self, scope: &VfScope<T>) -> Result<Option<usize>> {
        if self.selectors.is_empty() {
            return Err(CoreError::InvalidDcase {
                reason: "a DCASE construct needs at least one selector".into(),
            });
        }
        let types: Vec<(String, DistType)> = self
            .selectors
            .iter()
            .map(|name| Ok((name.clone(), scope.current_dist_type(name)?)))
            .collect::<Result<_>>()?;
        for (i, clause) in self.clauses.iter().enumerate() {
            if self.condition_matches(&clause.condition, &types)? {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }
}

/// The `IDT` intrinsic: tests whether the distribution type currently
/// associated with `array` matches `pattern` (paper §2.5.2).
pub fn idt<T: Element>(scope: &VfScope<T>, array: &str, pattern: &DistPattern) -> Result<bool> {
    scope.idt(array, pattern)
}

/// The `IDT` intrinsic with an explicit processor-section test: the
/// distribution type must match *and* the array must currently be mapped to
/// exactly the processors of `procs`.
pub fn idt_on<T: Element>(
    scope: &VfScope<T>,
    array: &str,
    pattern: &DistPattern,
    procs: &ProcessorView,
) -> Result<bool> {
    if !scope.idt(array, pattern)? {
        return Ok(false);
    }
    let current = scope.array(array)?.dist().procs().clone();
    Ok(current == *procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistributeStmt, DynamicDecl};
    use vf_dist::{DimDist, DimPattern};
    use vf_index::IndexDomain;
    use vf_machine::{CostModel, Machine};

    /// Builds the scope of the paper's Example 4.
    fn example4_scope() -> VfScope<f64> {
        let mut s: VfScope<f64> = VfScope::new(Machine::new(4, CostModel::zero()));
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(DynamicDecl::new("B2", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Cyclic(2), DimDist::Cyclic(1)])),
        )
        .unwrap();
        s
    }

    fn example4_dcase() -> Dcase {
        Dcase::new(["B1", "B2", "B3"])
            // CASE (BLOCK),(BLOCK),(CYCLIC(2),CYCLIC)
            .when_positional([
                DistPattern::dims(vec![DimPattern::Block]),
                DistPattern::dims(vec![DimPattern::Block]),
                DistPattern::dims(vec![DimPattern::Cyclic(2), DimPattern::Cyclic(1)]),
            ])
            .labelled("a1")
            // CASE B1: (CYCLIC), B3: (BLOCK, *)
            .when_tagged([
                ("B1", DistPattern::dims(vec![DimPattern::Cyclic(1)])),
                (
                    "B3",
                    DistPattern::dims(vec![DimPattern::Block, DimPattern::Star]),
                ),
            ])
            .labelled("a2")
            // CASE B3: (BLOCK, CYCLIC)
            .when_tagged([(
                "B3",
                DistPattern::dims(vec![DimPattern::Block, DimPattern::Cyclic(1)]),
            )])
            .labelled("a3")
            // CASE DEFAULT
            .default_case()
            .labelled("a4")
    }

    #[test]
    fn example4_first_clause_matches_initial_state() {
        let s = example4_scope();
        let dcase = example4_dcase();
        assert_eq!(dcase.select(&s).unwrap(), Some(0));
        assert_eq!(dcase.clauses()[0].label.as_deref(), Some("a1"));
    }

    #[test]
    fn example4_second_clause_after_redistribution() {
        let mut s = example4_scope();
        // t1 = (CYCLIC), t3 = (BLOCK, anything) → clause a2.
        s.distribute(DistributeStmt::new("B1", DistType::cyclic1d(1)))
            .unwrap();
        s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(4)]),
        ))
        .unwrap();
        assert_eq!(example4_dcase().select(&s).unwrap(), Some(1));
        // t3 = (BLOCK, CYCLIC) with t1 back to BLOCK → clause a3 (a2 needs CYCLIC t1).
        s.distribute(DistributeStmt::new("B1", DistType::block1d()))
            .unwrap();
        s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)]),
        ))
        .unwrap();
        // B2 is still BLOCK so clause a1 requires t3=(CYCLIC(2),CYCLIC): no.
        assert_eq!(example4_dcase().select(&s).unwrap(), Some(2));
    }

    #[test]
    fn example4_default_clause() {
        let mut s = example4_scope();
        s.distribute(DistributeStmt::new("B2", DistType::cyclic1d(1)))
            .unwrap();
        s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Cyclic(1), DimDist::Block]),
        ))
        .unwrap();
        assert_eq!(example4_dcase().select(&s).unwrap(), Some(3));
    }

    #[test]
    fn indirect_arm_dispatches_irregular_codes() {
        // An irregular code selects its inspector/executor branch with an
        // INDIRECT(*) arm — the DCASE face of the paper's mapping-array
        // distributions.
        let mut s: VfScope<f64> = VfScope::new(Machine::new(4, CostModel::zero()));
        s.declare_dynamic(
            DynamicDecl::new("MESH", vf_index::IndexDomain::d1(16)).initial(DistType::block1d()),
        )
        .unwrap();
        let dcase = Dcase::new(["MESH"])
            .when_positional([DistPattern::dims(vec![DimPattern::IndirectAny])])
            .labelled("parti")
            .when_positional([DistPattern::dims(vec![DimPattern::Block])])
            .labelled("regular");
        assert_eq!(dcase.select(&s).unwrap(), Some(1));
        // A partitioner produces the mapping array; DISTRIBUTE flips the
        // selected arm.
        let map = std::sync::Arc::new(vf_dist::IndirectMap::from_fn(16, |i| (i / 2) % 4).unwrap());
        s.distribute(DistributeStmt::new(
            "MESH",
            DistType::indirect1d(std::sync::Arc::clone(&map)),
        ))
        .unwrap();
        assert_eq!(dcase.select(&s).unwrap(), Some(0));
        // IDT sees the indirect class and the exact map.
        assert!(s
            .idt("MESH", &DistPattern::dims(vec![DimPattern::IndirectAny]))
            .unwrap());
        assert!(s
            .idt(
                "MESH",
                &DistPattern::dims(vec![DimPattern::IndirectMap(map.fingerprint())])
            )
            .unwrap());
        assert!(!s
            .idt("MESH", &DistPattern::dims(vec![DimPattern::IndirectMap(1)]))
            .unwrap());
    }

    #[test]
    fn construct_without_matching_clause_selects_nothing() {
        let s = example4_scope();
        let dcase =
            Dcase::new(["B1"]).when_positional([DistPattern::dims(vec![DimPattern::Cyclic(7)])]);
        assert_eq!(dcase.select(&s).unwrap(), None);
    }

    #[test]
    fn shorter_positional_lists_pad_with_star() {
        let s = example4_scope();
        // Only constrain B1; B2 and B3 get implicit '*'.
        let dcase = Dcase::new(["B1", "B2", "B3"])
            .when_positional([DistPattern::dims(vec![DimPattern::Block])]);
        assert_eq!(dcase.select(&s).unwrap(), Some(0));
    }

    #[test]
    fn malformed_constructs_are_rejected() {
        let s = example4_scope();
        // No selectors.
        assert!(matches!(
            Dcase::new(Vec::<String>::new()).default_case().select(&s),
            Err(CoreError::InvalidDcase { .. })
        ));
        // More positional queries than selectors.
        let too_many = Dcase::new(["B1"]).when_positional([DistPattern::Any, DistPattern::Any]);
        assert!(matches!(
            too_many.select(&s),
            Err(CoreError::InvalidDcase { .. })
        ));
        // Name tag that is not a selector.
        let bad_tag = Dcase::new(["B1"]).when_tagged([("B9", DistPattern::Any)]);
        assert!(matches!(
            bad_tag.select(&s),
            Err(CoreError::InvalidDcase { .. })
        ));
        // Selector without a distribution.
        let mut s2: VfScope<f64> = VfScope::new(Machine::new(2, CostModel::zero()));
        s2.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(4)))
            .unwrap();
        assert!(matches!(
            Dcase::new(["B1"]).default_case().select(&s2),
            Err(CoreError::NotYetDistributed { .. })
        ));
    }

    #[test]
    fn idt_with_processor_section() {
        let s = example4_scope();
        // The paper's explicit-IF formulation of the second DCASE clause.
        let block = DistPattern::dims(vec![DimPattern::Block]);
        assert!(idt(&s, "B1", &block).unwrap());
        assert!(idt_on(&s, "B1", &block, &ProcessorView::linear(4)).unwrap());
        // Same pattern, different processor section → false.
        assert!(!idt_on(&s, "B1", &block, &ProcessorView::linear(2)).unwrap());
    }
}
