//! The executable `DISTRIBUTE` statement (paper §2.4).

use vf_dist::{DimDist, DistType, ProcessorView};
use vf_runtime::{ExecReport, RedistReport};

/// One entry of a distribution expression in a `DISTRIBUTE` statement:
/// either an explicit per-dimension distribution function or a distribution
/// extraction from another array's current distribution, as in the paper's
/// `DISTRIBUTE B4 :: (=B1, CYCLIC(3))`.
#[derive(Debug, Clone, PartialEq)]
pub enum DimSpec {
    /// An explicit per-dimension distribution function.
    Dist(DimDist),
    /// `=A`: extract the per-dimension distribution from dimension `dim`
    /// of array `array`'s *current* distribution type.
    ExtractFrom {
        /// Array whose distribution is extracted.
        array: String,
        /// Dimension (0-based) of that array's distribution type.
        dim: usize,
    },
}

impl From<DimDist> for DimSpec {
    fn from(d: DimDist) -> Self {
        DimSpec::Dist(d)
    }
}

/// A distribution expression: per-dimension specs plus an optional explicit
/// target processor section.
#[derive(Debug, Clone, PartialEq)]
pub struct DistExpr {
    /// Per-dimension specifications.
    pub dims: Vec<DimSpec>,
    /// Optional target processor view (`TO R(...)`).
    pub target: Option<ProcessorView>,
}

impl DistExpr {
    /// An expression from explicit per-dimension distribution functions.
    pub fn of_type(dist_type: &DistType) -> Self {
        Self {
            dims: dist_type
                .dims()
                .iter()
                .cloned()
                .map(DimSpec::Dist)
                .collect(),
            target: None,
        }
    }

    /// An expression from per-dimension specs.
    pub fn new(dims: Vec<DimSpec>) -> Self {
        Self { dims, target: None }
    }

    /// Targets an explicit processor view.
    pub fn to(mut self, target: ProcessorView) -> Self {
        self.target = Some(target);
        self
    }
}

/// An executable `DISTRIBUTE` statement:
///
/// ```text
/// DISTRIBUTE B1, B2 :: (CYCLIC(K)) [ TO R(...) ] [ NOTRANSFER (A1, ...) ]
/// ```
///
/// The statement names one or more *primary* arrays; executing it
/// redistributes each named array and every secondary array of its connect
/// equivalence class (paper §2.4).  Secondary arrays listed in the
/// `NOTRANSFER` attribute have only their access function changed — the
/// data is not physically moved.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributeStmt {
    /// The primary arrays to redistribute.
    pub arrays: Vec<String>,
    /// The distribution expression.
    pub expr: DistExpr,
    /// Arrays excluded from data motion.
    pub notransfer: Vec<String>,
}

impl DistributeStmt {
    /// `DISTRIBUTE array :: dist_type`.
    pub fn new(array: impl Into<String>, dist_type: DistType) -> Self {
        Self {
            arrays: vec![array.into()],
            expr: DistExpr::of_type(&dist_type),
            notransfer: Vec::new(),
        }
    }

    /// `DISTRIBUTE a1, a2, ... :: dist_type`.
    pub fn multi(arrays: impl IntoIterator<Item = impl Into<String>>, dist_type: DistType) -> Self {
        Self {
            arrays: arrays.into_iter().map(Into::into).collect(),
            expr: DistExpr::of_type(&dist_type),
            notransfer: Vec::new(),
        }
    }

    /// `DISTRIBUTE array :: expr` with a general distribution expression
    /// (possibly containing distribution extraction).
    pub fn with_expr(array: impl Into<String>, expr: DistExpr) -> Self {
        Self {
            arrays: vec![array.into()],
            expr,
            notransfer: Vec::new(),
        }
    }

    /// Adds an explicit target processor view.
    pub fn to(mut self, target: ProcessorView) -> Self {
        self.expr.target = Some(target);
        self
    }

    /// Adds a `NOTRANSFER` attribute naming secondary arrays whose data
    /// should not be moved.
    pub fn notransfer(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.notransfer = names.into_iter().map(Into::into).collect();
        self
    }
}

/// What executing a `DISTRIBUTE` statement did: one redistribution report
/// per affected array (primaries and secondaries), in execution order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistributeReport {
    /// Per-array reports: `(array name, redistribution report)`.  Under
    /// fused execution each array's `messages`/`bytes` record what it
    /// *would* have charged on its own — the per-array diagnostic; the
    /// actually charged totals live in [`DistributeReport::fused`].
    pub per_array: Vec<(String, RedistReport)>,
    /// When the statement moved two or more arrays, their plans execute as
    /// one fused schedule with a single message per processor pair; this
    /// records what that fused execution charged to the tracker.  `None`
    /// when at most one array moved (per-array reports are then exact).
    pub fused: Option<ExecReport>,
}

impl DistributeReport {
    /// Total elements moved across processors.
    pub fn moved_elements(&self) -> usize {
        self.per_array.iter().map(|(_, r)| r.moved_elements).sum()
    }

    /// Messages actually charged to the tracker: the fused count when the
    /// statement executed as one fused plan, the per-array sum otherwise.
    pub fn messages(&self) -> usize {
        match &self.fused {
            Some(f) => f.messages,
            None => self.per_array.iter().map(|(_, r)| r.messages).sum(),
        }
    }

    /// Bytes actually charged to the tracker.
    pub fn bytes(&self) -> usize {
        match &self.fused {
            Some(f) => f.bytes,
            None => self.per_array.iter().map(|(_, r)| r.bytes).sum(),
        }
    }

    /// Messages the statement would have charged without fusion (one
    /// message per array per crossing processor pair) — the saving of plan
    /// fusion is `unfused_messages() - messages()`.
    pub fn unfused_messages(&self) -> usize {
        self.per_array.iter().map(|(_, r)| r.messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_builders() {
        let s = DistributeStmt::new("B1", DistType::block1d());
        assert_eq!(s.arrays, vec!["B1"]);
        assert_eq!(s.expr.dims.len(), 1);
        assert!(s.notransfer.is_empty());

        let s = DistributeStmt::multi(["B1", "B2"], DistType::cyclic1d(3))
            .notransfer(["A1"])
            .to(ProcessorView::linear(4));
        assert_eq!(s.arrays.len(), 2);
        assert_eq!(s.notransfer, vec!["A1"]);
        assert!(s.expr.target.is_some());
    }

    #[test]
    fn extraction_expression() {
        // DISTRIBUTE B4 :: (=B1, CYCLIC(3))
        let expr = DistExpr::new(vec![
            DimSpec::ExtractFrom {
                array: "B1".into(),
                dim: 0,
            },
            DimDist::Cyclic(3).into(),
        ]);
        let s = DistributeStmt::with_expr("B4", expr);
        assert!(matches!(s.expr.dims[0], DimSpec::ExtractFrom { .. }));
        assert!(matches!(s.expr.dims[1], DimSpec::Dist(DimDist::Cyclic(3))));
    }

    #[test]
    fn report_totals() {
        let mut report = DistributeReport::default();
        report.per_array.push((
            "B".into(),
            RedistReport {
                moved_elements: 10,
                stayed_elements: 6,
                messages: 3,
                bytes: 80,
            },
        ));
        report.per_array.push((
            "A".into(),
            RedistReport {
                moved_elements: 4,
                stayed_elements: 12,
                messages: 2,
                bytes: 32,
            },
        ));
        assert_eq!(report.moved_elements(), 14);
        assert_eq!(report.messages(), 5);
        assert_eq!(report.bytes(), 112);
        assert_eq!(report.unfused_messages(), 5);
        // Fused execution reports what was actually charged: fewer
        // messages than the per-array sum, same bytes.
        report.fused = Some(ExecReport {
            messages: 3,
            bytes: 112,
        });
        assert_eq!(report.messages(), 3);
        assert_eq!(report.bytes(), 112);
        assert_eq!(report.unfused_messages(), 5);
    }
}
