//! Array declarations: static, dynamic primary and dynamic secondary
//! (paper §2.3).

use crate::connect::Connection;
use vf_dist::{DistPattern, DistType, ProcessorView};
use vf_index::IndexDomain;

/// The declaration kind of an array in a scope.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclKind {
    /// A statically distributed array: the association between the array
    /// and its distribution is invariant in the scope.
    Static {
        /// The (permanent) distribution type.
        dist_type: DistType,
        /// Optional explicit target processor view (`TO R(...)`).
        target: Option<ProcessorView>,
    },
    /// A dynamically distributed *primary* array (the distinguished member
    /// of its connect equivalence class).
    DynamicPrimary {
        /// The `RANGE` attribute: the set of distribution-type patterns the
        /// array may assume; empty means unrestricted.
        range: Vec<DistPattern>,
        /// The initial distribution, evaluated when the array is allocated;
        /// `None` means the array may not be accessed until a `DISTRIBUTE`
        /// statement (or procedure call) gives it one.
        initial: Option<DistType>,
        /// Optional explicit target processor view for the initial
        /// distribution.
        target: Option<ProcessorView>,
    },
    /// A dynamically distributed *secondary* array, connected to a primary
    /// array; its distribution always follows the primary's.
    DynamicSecondary {
        /// Name of the primary array of the class.
        primary: String,
        /// How the secondary is connected (distribution extraction or
        /// alignment).
        connection: Connection,
    },
}

/// A declaration of a statically distributed array, e.g.
/// `REAL U(NX, NY) DIST (:, BLOCK)`.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticDecl {
    /// Array name.
    pub name: String,
    /// Index domain.
    pub domain: IndexDomain,
    /// Distribution type.
    pub dist_type: DistType,
    /// Optional explicit processor view.
    pub target: Option<ProcessorView>,
}

impl StaticDecl {
    /// Declares a statically distributed array on the scope's default
    /// processors.
    pub fn new(name: impl Into<String>, domain: IndexDomain, dist_type: DistType) -> Self {
        Self {
            name: name.into(),
            domain,
            dist_type,
            target: None,
        }
    }

    /// Targets an explicit processor view (`TO R(...)`).
    pub fn to(mut self, target: ProcessorView) -> Self {
        self.target = Some(target);
        self
    }
}

/// A declaration of a dynamically distributed primary array, e.g.
/// `REAL B3(N,N) DYNAMIC, RANGE ((BLOCK,BLOCK),(*,CYCLIC)), DIST (BLOCK, CYCLIC)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicDecl {
    /// Array name.
    pub name: String,
    /// Index domain.
    pub domain: IndexDomain,
    /// `RANGE` patterns (empty = unrestricted).
    pub range: Vec<DistPattern>,
    /// Initial distribution, if any.
    pub initial: Option<DistType>,
    /// Optional explicit processor view for the initial distribution.
    pub target: Option<ProcessorView>,
}

impl DynamicDecl {
    /// Declares a dynamic primary array with no range restriction and no
    /// initial distribution (like `B1` in the paper's Example 2).
    pub fn new(name: impl Into<String>, domain: IndexDomain) -> Self {
        Self {
            name: name.into(),
            domain,
            range: Vec::new(),
            initial: None,
            target: None,
        }
    }

    /// Adds a `RANGE` attribute restricting the admissible distribution
    /// types.
    pub fn range(mut self, patterns: impl IntoIterator<Item = DistPattern>) -> Self {
        self.range = patterns.into_iter().collect();
        self
    }

    /// Adds an initial distribution (`DIST (...)`).
    pub fn initial(mut self, dist_type: DistType) -> Self {
        self.initial = Some(dist_type);
        self
    }

    /// Targets an explicit processor view for the initial distribution.
    pub fn to(mut self, target: ProcessorView) -> Self {
        self.target = Some(target);
        self
    }
}

/// A declaration of a dynamic secondary array, e.g.
/// `REAL A1(N,N) DYNAMIC, CONNECT (=B4)` or
/// `REAL A2(N,N) DYNAMIC, CONNECT A2(I,J) WITH B4(I,J)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondaryDecl {
    /// Array name.
    pub name: String,
    /// Index domain.
    pub domain: IndexDomain,
    /// The primary array this secondary is connected to.
    pub primary: String,
    /// The connection (distribution extraction or alignment).
    pub connection: Connection,
}

impl SecondaryDecl {
    /// Declares a secondary array connected to `primary` by distribution
    /// extraction (`CONNECT (=primary)`).
    pub fn extraction(
        name: impl Into<String>,
        domain: IndexDomain,
        primary: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            domain,
            primary: primary.into(),
            connection: Connection::Extraction,
        }
    }

    /// Declares a secondary array connected to `primary` by an alignment
    /// (`CONNECT name(...) WITH primary(...)`).
    pub fn aligned(
        name: impl Into<String>,
        domain: IndexDomain,
        primary: impl Into<String>,
        alignment: vf_dist::Alignment,
    ) -> Self {
        Self {
            name: name.into(),
            domain,
            primary: primary.into(),
            connection: Connection::Alignment(alignment),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{Alignment, DimPattern};

    #[test]
    fn static_decl_builder() {
        let d = StaticDecl::new("U", IndexDomain::d2(100, 100), DistType::columns())
            .to(ProcessorView::linear(4));
        assert_eq!(d.name, "U");
        assert!(d.target.is_some());
    }

    #[test]
    fn dynamic_decl_builder_matches_example2() {
        // REAL B3(N,N) DYNAMIC, RANGE ((BLOCK,BLOCK),(*,CYCLIC)), DIST(BLOCK,CYCLIC)
        let d = DynamicDecl::new("B3", IndexDomain::d2(10, 10))
            .range([
                DistPattern::dims(vec![DimPattern::Block, DimPattern::Block]),
                DistPattern::dims(vec![DimPattern::Star, DimPattern::Cyclic(1)]),
            ])
            .initial(DistType::new(vec![
                vf_dist::DimDist::Block,
                vf_dist::DimDist::Cyclic(1),
            ]));
        assert_eq!(d.range.len(), 2);
        assert!(d.initial.is_some());
        // REAL B1(M) DYNAMIC — no range, no initial distribution.
        let b1 = DynamicDecl::new("B1", IndexDomain::d1(8));
        assert!(b1.range.is_empty());
        assert!(b1.initial.is_none());
    }

    #[test]
    fn secondary_decl_builders() {
        let a1 = SecondaryDecl::extraction("A1", IndexDomain::d2(10, 10), "B4");
        assert_eq!(a1.connection, Connection::Extraction);
        let a2 =
            SecondaryDecl::aligned("A2", IndexDomain::d2(10, 10), "B4", Alignment::identity(2));
        assert!(matches!(a2.connection, Connection::Alignment(_)));
        assert_eq!(a2.primary, "B4");
    }
}
