//! Error type for the language layer.

use std::fmt;
use vf_dist::DistError;
use vf_index::IndexError;
use vf_runtime::RuntimeError;

/// Errors produced by the Vienna Fortran language layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An array name was declared twice in the same scope.
    DuplicateDeclaration {
        /// The offending name.
        name: String,
    },
    /// A referenced array is not declared in the scope.
    UnknownArray {
        /// The unknown name.
        name: String,
    },
    /// A referenced processor array/section is not declared in the scope.
    UnknownProcessors {
        /// The unknown name.
        name: String,
    },
    /// A `DISTRIBUTE` statement targeted an array that is not a dynamic
    /// primary array (paper §2.3 rule 3: "distribute statements are
    /// explicitly applied to primary arrays only").
    NotAPrimaryArray {
        /// The offending name.
        name: String,
    },
    /// A dynamically distributed array was accessed before any distribution
    /// was associated with it (paper §2.3: such an array "cannot be legally
    /// accessed before it has been explicitly associated with a
    /// distribution").
    NotYetDistributed {
        /// The offending name.
        name: String,
    },
    /// The distribution requested by a `DISTRIBUTE` statement violates the
    /// array's `RANGE` attribute.
    OutsideRange {
        /// The array being distributed.
        name: String,
        /// Rendering of the offending distribution type.
        dist_type: String,
    },
    /// A secondary array declaration referred to a primary array in a
    /// different (or no) class, or a secondary was itself used as a primary.
    InvalidConnection {
        /// The secondary array.
        secondary: String,
        /// The primary array it referred to.
        primary: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A `NOTRANSFER` attribute named an array that is not a secondary of
    /// the distributed primary's class.
    InvalidNoTransfer {
        /// The named array.
        name: String,
        /// The primary array of the statement.
        primary: String,
    },
    /// A `DCASE` construct was malformed (no selectors, or a selector
    /// without a defined distribution).
    InvalidDcase {
        /// Human-readable reason.
        reason: String,
    },
    /// A distribution-layer error.
    Dist(DistError),
    /// A runtime-layer error.
    Runtime(RuntimeError),
    /// An index-layer error.
    Index(IndexError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateDeclaration { name } => {
                write!(f, "array {name} is already declared in this scope")
            }
            CoreError::UnknownArray { name } => write!(f, "array {name} is not declared"),
            CoreError::UnknownProcessors { name } => {
                write!(f, "processor structure {name} is not declared")
            }
            CoreError::NotAPrimaryArray { name } => {
                write!(f, "DISTRIBUTE may only be applied to primary arrays; {name} is not one")
            }
            CoreError::NotYetDistributed { name } => write!(
                f,
                "array {name} is DYNAMIC without an initial distribution and has not been distributed yet"
            ),
            CoreError::OutsideRange { name, dist_type } => write!(
                f,
                "distribution {dist_type} is outside the RANGE declared for {name}"
            ),
            CoreError::InvalidConnection {
                secondary,
                primary,
                reason,
            } => write!(
                f,
                "invalid CONNECT of {secondary} to {primary}: {reason}"
            ),
            CoreError::InvalidNoTransfer { name, primary } => write!(
                f,
                "NOTRANSFER names {name}, which is not a secondary array of {primary}'s class"
            ),
            CoreError::InvalidDcase { reason } => write!(f, "invalid DCASE construct: {reason}"),
            CoreError::Dist(e) => write!(f, "{e}"),
            CoreError::Runtime(e) => write!(f, "{e}"),
            CoreError::Index(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dist(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            CoreError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for CoreError {
    fn from(e: DistError) -> Self {
        CoreError::Dist(e)
    }
}

impl From<RuntimeError> for CoreError {
    fn from(e: RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<IndexError> for CoreError {
    fn from(e: IndexError) -> Self {
        CoreError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let cases = vec![
            CoreError::DuplicateDeclaration { name: "A".into() },
            CoreError::UnknownArray { name: "A".into() },
            CoreError::UnknownProcessors { name: "R".into() },
            CoreError::NotAPrimaryArray { name: "A1".into() },
            CoreError::NotYetDistributed { name: "B1".into() },
            CoreError::OutsideRange {
                name: "B3".into(),
                dist_type: "(CYCLIC, CYCLIC)".into(),
            },
            CoreError::InvalidConnection {
                secondary: "A1".into(),
                primary: "B4".into(),
                reason: "primary is itself secondary".into(),
            },
            CoreError::InvalidNoTransfer {
                name: "A9".into(),
                primary: "B4".into(),
            },
            CoreError::InvalidDcase {
                reason: "no selectors".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
            assert!(std::error::Error::source(&c).is_none());
        }
        let wrapped: CoreError = DistError::ZeroCyclicWidth.into();
        assert!(std::error::Error::source(&wrapped).is_some());
        let wrapped: CoreError = RuntimeError::NonContiguousLayout {
            array: "V".into(),
            dim: 0,
        }
        .into();
        assert!(wrapped.to_string().contains('V'));
        let wrapped: CoreError = IndexError::RankTooLarge { requested: 9 }.into();
        assert!(wrapped.to_string().contains('9'));
    }
}
