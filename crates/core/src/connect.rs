//! The connect equivalence relation between dynamically distributed arrays
//! (paper §2.3).

use vf_dist::Alignment;

/// How a secondary array is connected to its primary array.
#[derive(Debug, Clone, PartialEq)]
pub enum Connection {
    /// Distribution extraction (`CONNECT (=B)`): the secondary always has
    /// the same distribution *type* as the primary, applied to its own
    /// index domain.
    Extraction,
    /// An alignment (`CONNECT A(I,J) WITH B(...)`): the secondary's
    /// distribution is derived from the primary's with the paper's
    /// `CONSTRUCT` operation.
    Alignment(Alignment),
}

/// One equivalence class of the `connect` relation: a distinguished primary
/// array plus zero or more secondary arrays, each with its connection.
///
/// The paper's rules (§2.3) are enforced by [`crate::VfScope`]:
///
/// 1. each class has exactly one primary array;
/// 2. secondaries declare their connection in their own declaration;
/// 3. `DISTRIBUTE` applies to primaries only and redistributes the entire
///    class so that the connection is maintained;
/// 4. classes are independent of each other;
/// 5. the relation does not extend across procedure (scope) boundaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConnectClass {
    /// Names of the secondary arrays with their connections, in declaration
    /// order.
    members: Vec<(String, Connection)>,
}

impl ConnectClass {
    /// An empty class (a primary with no secondaries yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a secondary array to the class.
    pub fn add_secondary(&mut self, name: impl Into<String>, connection: Connection) {
        self.members.push((name.into(), connection));
    }

    /// The secondary arrays of the class, in declaration order.
    pub fn secondaries(&self) -> impl Iterator<Item = (&str, &Connection)> {
        self.members.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Whether `name` is a secondary member of this class.
    pub fn contains(&self, name: &str) -> bool {
        self.members.iter().any(|(n, _)| n == name)
    }

    /// Number of secondary arrays.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the class has no secondary arrays.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total arrays a `DISTRIBUTE` of the class touches (the primary plus
    /// every secondary) — when this exceeds 1, the language layer fuses
    /// the per-array communication plans into one schedule with a single
    /// message per processor pair (see `vf_runtime::FusedPlan`).
    pub fn total_members(&self) -> usize {
        1 + self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_membership() {
        let mut class = ConnectClass::new();
        assert!(class.is_empty());
        class.add_secondary("A1", Connection::Extraction);
        class.add_secondary("A2", Connection::Alignment(Alignment::identity(2)));
        assert_eq!(class.len(), 2);
        assert_eq!(class.total_members(), 3);
        assert!(class.contains("A1"));
        assert!(class.contains("A2"));
        assert!(!class.contains("B4"));
        let names: Vec<&str> = class.secondaries().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A1", "A2"]);
    }
}
