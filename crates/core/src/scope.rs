//! The procedure scope: declared arrays, connect classes and statement
//! execution.

use crate::connect::{ConnectClass, Connection};
use crate::decl::{DeclKind, DynamicDecl, SecondaryDecl, StaticDecl};
use crate::distribute::{DimSpec, DistributeReport, DistributeStmt};
use crate::{CoreError, Result};
use std::collections::HashMap;
use vf_dist::{construct, DistPattern, DistType, Distribution, ProcessorView};
use vf_index::IndexDomain;
use vf_machine::{CommStats, CommTracker, Machine};
use vf_runtime::{
    redistribute_cached, ArrayDescriptor, DistArray, Element, PlanCache, RedistOptions,
};

struct Entry<T: Element> {
    kind: DeclKind,
    domain: IndexDomain,
    data: Option<DistArray<T>>,
}

/// A Vienna Fortran procedure scope.
///
/// The scope owns the declared arrays (static and dynamic), their connect
/// equivalence classes, and the machine/communication-tracker pair the
/// program runs on.  Statements (`DISTRIBUTE`, `DCASE`, `IDT`) execute
/// against the scope; array data is accessed through
/// [`VfScope::array`] / [`VfScope::array_mut`].
///
/// The connect relation "does not extend across procedure boundaries"
/// (paper §2.3, rule 5): creating a new scope starts with empty classes.
/// All arrays in one scope share the element type `T` (the paper's examples
/// are all `REAL`; use several scopes or the runtime layer directly for
/// mixed-type programs).
pub struct VfScope<T: Element = f64> {
    machine: Machine,
    tracker: CommTracker,
    plan_cache: PlanCache,
    default_procs: ProcessorView,
    arrays: HashMap<String, Entry<T>>,
    order: Vec<String>,
    classes: HashMap<String, ConnectClass>,
}

impl<T: Element> VfScope<T> {
    /// Creates a scope executing on `machine`, with the default processor
    /// arrangement `$NP` = `machine.num_procs()` in one dimension.
    pub fn new(machine: Machine) -> Self {
        let tracker = machine.tracker();
        let default_procs = ProcessorView::linear(machine.num_procs());
        Self {
            machine,
            tracker,
            plan_cache: PlanCache::new(),
            default_procs,
            arrays: HashMap::new(),
            order: Vec::new(),
            classes: HashMap::new(),
        }
    }

    /// Creates a scope with an explicit default processor view (e.g. a 2-D
    /// grid `PROCESSORS R(1:M,1:M)`).
    pub fn with_processors(machine: Machine, default_procs: ProcessorView) -> Self {
        let tracker = machine.tracker();
        Self {
            machine,
            tracker,
            plan_cache: PlanCache::new(),
            default_procs,
            arrays: HashMap::new(),
            order: Vec::new(),
            classes: HashMap::new(),
        }
    }

    /// The machine the scope executes on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The `$NP` intrinsic: the number of executing processors.
    pub fn num_procs(&self) -> usize {
        self.machine.num_procs()
    }

    /// The scope's communication tracker.
    pub fn tracker(&self) -> &CommTracker {
        &self.tracker
    }

    /// The scope's communication-plan cache: `DISTRIBUTE` statements plan
    /// each (from, to) distribution pair once and replay the cached
    /// schedule on later executions — the PARTI schedule reuse of paper
    /// §3.2 applied to the language layer.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The default processor view used when declarations and statements do
    /// not name an explicit target.
    pub fn default_procs(&self) -> &ProcessorView {
        &self.default_procs
    }

    /// A snapshot of the communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.tracker.snapshot()
    }

    /// Returns and resets the accumulated communication statistics —
    /// convenient for per-phase accounting in the experiments.
    pub fn take_stats(&self) -> CommStats {
        self.tracker.take()
    }

    /// Names of all declared arrays, in declaration order.
    pub fn declared_names(&self) -> &[String] {
        &self.order
    }

    fn insert_entry(&mut self, name: &str, entry: Entry<T>) -> Result<()> {
        if self.arrays.contains_key(name) {
            return Err(CoreError::DuplicateDeclaration { name: name.into() });
        }
        self.arrays.insert(name.to_string(), entry);
        self.order.push(name.to_string());
        Ok(())
    }

    /// Declares a statically distributed array and allocates it
    /// immediately.
    pub fn declare_static(&mut self, decl: StaticDecl) -> Result<()> {
        let procs = decl
            .target
            .clone()
            .unwrap_or_else(|| self.default_procs.clone());
        let dist = Distribution::new(decl.dist_type.clone(), decl.domain.clone(), procs)?;
        let data = DistArray::new(decl.name.clone(), dist);
        self.insert_entry(
            &decl.name,
            Entry {
                kind: DeclKind::Static {
                    dist_type: decl.dist_type,
                    target: decl.target,
                },
                domain: decl.domain,
                data: Some(data),
            },
        )
    }

    /// Declares a dynamically distributed primary array.  If the
    /// declaration carries an initial distribution the array is allocated
    /// and distributed immediately; otherwise it may not be accessed until
    /// a `DISTRIBUTE` statement executes (paper §2.3).
    pub fn declare_dynamic(&mut self, decl: DynamicDecl) -> Result<()> {
        let data = if let Some(initial) = &decl.initial {
            if !decl.range.is_empty() && !decl.range.iter().any(|p| p.matches(initial)) {
                return Err(CoreError::OutsideRange {
                    name: decl.name.clone(),
                    dist_type: initial.to_string(),
                });
            }
            let procs = decl
                .target
                .clone()
                .unwrap_or_else(|| self.default_procs.clone());
            let dist = Distribution::new(initial.clone(), decl.domain.clone(), procs)?;
            Some(DistArray::new(decl.name.clone(), dist))
        } else {
            None
        };
        self.classes.insert(decl.name.clone(), ConnectClass::new());
        self.insert_entry(
            &decl.name,
            Entry {
                kind: DeclKind::DynamicPrimary {
                    range: decl.range,
                    initial: decl.initial,
                    target: decl.target,
                },
                domain: decl.domain,
                data,
            },
        )
    }

    /// Declares a dynamic secondary array connected to an existing primary.
    /// If the primary is currently distributed, the secondary is allocated
    /// with the derived distribution right away.
    pub fn declare_secondary(&mut self, decl: SecondaryDecl) -> Result<()> {
        let primary_entry =
            self.arrays
                .get(&decl.primary)
                .ok_or_else(|| CoreError::UnknownArray {
                    name: decl.primary.clone(),
                })?;
        if !matches!(primary_entry.kind, DeclKind::DynamicPrimary { .. }) {
            return Err(CoreError::InvalidConnection {
                secondary: decl.name.clone(),
                primary: decl.primary.clone(),
                reason: "the named array is not a dynamic primary array".into(),
            });
        }
        let data = match &primary_entry.data {
            Some(primary_data) => Some(DistArray::new(
                decl.name.clone(),
                Self::derive_secondary_dist(&decl.connection, primary_data.dist(), &decl.domain)?,
            )),
            None => None,
        };
        self.classes
            .get_mut(&decl.primary)
            .expect("class created with the primary")
            .add_secondary(decl.name.clone(), decl.connection.clone());
        self.insert_entry(
            &decl.name,
            Entry {
                kind: DeclKind::DynamicSecondary {
                    primary: decl.primary,
                    connection: decl.connection,
                },
                domain: decl.domain,
                data,
            },
        )
    }

    fn derive_secondary_dist(
        connection: &Connection,
        primary_dist: &Distribution,
        secondary_domain: &IndexDomain,
    ) -> Result<Distribution> {
        match connection {
            Connection::Extraction => Ok(Distribution::new(
                primary_dist.dist_type().clone(),
                secondary_domain.clone(),
                primary_dist.procs().clone(),
            )?),
            Connection::Alignment(a) => Ok(construct(a, primary_dist, secondary_domain)?),
        }
    }

    /// The connect equivalence class of a primary array.
    pub fn connect_class(&self, primary: &str) -> Result<&ConnectClass> {
        self.classes
            .get(primary)
            .ok_or_else(|| CoreError::UnknownArray {
                name: primary.into(),
            })
    }

    /// Whether `name` is declared and currently associated with a
    /// distribution.
    pub fn is_distributed(&self, name: &str) -> bool {
        self.arrays
            .get(name)
            .map(|e| e.data.is_some())
            .unwrap_or(false)
    }

    /// Read access to an array's data.
    pub fn array(&self, name: &str) -> Result<&DistArray<T>> {
        let entry = self
            .arrays
            .get(name)
            .ok_or_else(|| CoreError::UnknownArray { name: name.into() })?;
        entry
            .data
            .as_ref()
            .ok_or_else(|| CoreError::NotYetDistributed { name: name.into() })
    }

    /// Mutable access to an array's data.
    pub fn array_mut(&mut self, name: &str) -> Result<&mut DistArray<T>> {
        let entry = self
            .arrays
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownArray { name: name.into() })?;
        entry
            .data
            .as_mut()
            .ok_or_else(|| CoreError::NotYetDistributed { name: name.into() })
    }

    /// The distribution type currently associated with `name`.
    pub fn current_dist_type(&self, name: &str) -> Result<DistType> {
        Ok(self.array(name)?.dist().dist_type().clone())
    }

    /// The run-time descriptor (paper §3.2.1) of an array.
    pub fn descriptor(&self, name: &str) -> Result<ArrayDescriptor> {
        Ok(ArrayDescriptor::of(self.array(name)?))
    }

    /// The `IDT` intrinsic restricted to distribution types: whether the
    /// current distribution type of `name` matches `pattern`.
    pub fn idt(&self, name: &str, pattern: &DistPattern) -> Result<bool> {
        Ok(pattern.matches(&self.current_dist_type(name)?))
    }

    /// Resolves a distribution expression against the current scope state
    /// (evaluating distribution extraction entries).
    fn resolve_expr(&self, stmt: &DistributeStmt) -> Result<(DistType, Option<ProcessorView>)> {
        let mut dims = Vec::with_capacity(stmt.expr.dims.len());
        for spec in &stmt.expr.dims {
            match spec {
                DimSpec::Dist(d) => dims.push(d.clone()),
                DimSpec::ExtractFrom { array, dim } => {
                    let t = self.current_dist_type(array)?;
                    if *dim >= t.rank() {
                        return Err(CoreError::Dist(vf_dist::DistError::RankMismatch {
                            array_rank: t.rank(),
                            dist_rank: dim + 1,
                        }));
                    }
                    dims.push(t.dim(*dim).clone());
                }
            }
        }
        Ok((DistType::new(dims), stmt.expr.target.clone()))
    }

    /// Executes a `DISTRIBUTE` statement (paper §2.4 / §3.2.2): validates
    /// the statement, redistributes every named primary array, and
    /// propagates the redistribution to every secondary array of the
    /// affected connect classes, honouring `NOTRANSFER`.
    pub fn distribute(&mut self, stmt: DistributeStmt) -> Result<DistributeReport> {
        let (dist_type, explicit_target) = self.resolve_expr(&stmt)?;

        // Validate NOTRANSFER: every name must be a secondary array in one
        // of the affected classes.
        for nt in &stmt.notransfer {
            let ok = stmt.arrays.iter().any(|primary| {
                self.classes
                    .get(primary)
                    .map(|c| c.contains(nt))
                    .unwrap_or(false)
            });
            if !ok {
                return Err(CoreError::InvalidNoTransfer {
                    name: nt.clone(),
                    primary: stmt.arrays.join(","),
                });
            }
        }

        let mut report = DistributeReport::default();
        for primary in &stmt.arrays {
            self.distribute_one(
                primary,
                &dist_type,
                explicit_target.as_ref(),
                &stmt,
                &mut report,
            )?;
        }
        Ok(report)
    }

    fn distribute_one(
        &mut self,
        primary: &str,
        dist_type: &DistType,
        explicit_target: Option<&ProcessorView>,
        stmt: &DistributeStmt,
        report: &mut DistributeReport,
    ) -> Result<()> {
        // Validate the primary.
        let entry = self
            .arrays
            .get(primary)
            .ok_or_else(|| CoreError::UnknownArray {
                name: primary.into(),
            })?;
        let (range, decl_target) = match &entry.kind {
            DeclKind::DynamicPrimary { range, target, .. } => (range.clone(), target.clone()),
            _ => {
                return Err(CoreError::NotAPrimaryArray {
                    name: primary.into(),
                })
            }
        };
        if !range.is_empty() && !range.iter().any(|p| p.matches(dist_type)) {
            return Err(CoreError::OutsideRange {
                name: primary.into(),
                dist_type: dist_type.to_string(),
            });
        }

        // Step 1 (paper §3.2.2): evaluate the new distribution of the
        // primary.
        let procs = explicit_target
            .cloned()
            .or(decl_target)
            .unwrap_or_else(|| self.default_procs.clone());
        let new_dist = Distribution::new(dist_type.clone(), entry.domain.clone(), procs)?;

        // Step 3 for the primary: move the data (or allocate on first
        // distribution).
        let primary_report = {
            let entry = self.arrays.get_mut(primary).expect("checked above");
            match entry.data.as_mut() {
                Some(data) => redistribute_cached(
                    data,
                    new_dist.clone(),
                    &self.tracker,
                    &RedistOptions::default(),
                    &self.plan_cache,
                )?,
                None => {
                    entry.data = Some(DistArray::new(primary.to_string(), new_dist.clone()));
                    Default::default()
                }
            }
        };
        report.per_array.push((primary.to_string(), primary_report));

        // Step 2 + 3 for every connected secondary array.
        let class = self.classes.get(primary).cloned().unwrap_or_default();
        for (secondary, connection) in class.secondaries() {
            let sec_domain = self
                .arrays
                .get(secondary)
                .expect("secondary declared before being added to the class")
                .domain
                .clone();
            let sec_dist = Self::derive_secondary_dist(connection, &new_dist, &sec_domain)?;
            let opts = if stmt.notransfer.iter().any(|n| n == secondary) {
                RedistOptions::notransfer()
            } else {
                RedistOptions::default()
            };
            let sec_report = {
                let entry = self.arrays.get_mut(secondary).expect("declared");
                match entry.data.as_mut() {
                    Some(data) => {
                        redistribute_cached(data, sec_dist, &self.tracker, &opts, &self.plan_cache)?
                    }
                    None => {
                        entry.data = Some(DistArray::new(secondary.to_string(), sec_dist));
                        Default::default()
                    }
                }
            };
            report.per_array.push((secondary.to_string(), sec_report));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{Alignment, DimDist, DimPattern};
    use vf_index::Point;
    use vf_machine::CostModel;

    fn scope(p: usize) -> VfScope<f64> {
        VfScope::new(Machine::new(p, CostModel::zero()))
    }

    #[test]
    fn static_arrays_are_allocated_immediately() {
        let mut s = scope(4);
        s.declare_static(StaticDecl::new(
            "U",
            IndexDomain::d2(8, 8),
            DistType::columns(),
        ))
        .unwrap();
        assert!(s.is_distributed("U"));
        assert_eq!(s.current_dist_type("U").unwrap(), DistType::columns());
        assert_eq!(s.array("U").unwrap().domain().size(), 64);
        assert_eq!(s.num_procs(), 4);
        // Re-declaration is rejected.
        assert!(matches!(
            s.declare_static(StaticDecl::new(
                "U",
                IndexDomain::d1(4),
                DistType::block1d()
            )),
            Err(CoreError::DuplicateDeclaration { .. })
        ));
    }

    #[test]
    fn example2_declarations() {
        // The paper's Example 2, executed.
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(8)))
            .unwrap();
        s.declare_dynamic(DynamicDecl::new("B2", IndexDomain::d1(12)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .range([
                    DistPattern::dims(vec![DimPattern::Block, DimPattern::Block]),
                    DistPattern::dims(vec![DimPattern::Star, DimPattern::Cyclic(1)]),
                ])
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B4", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d2(8, 8), "B4"))
            .unwrap();
        s.declare_secondary(SecondaryDecl::aligned(
            "A2",
            IndexDomain::d2(8, 8),
            "B4",
            Alignment::identity(2),
        ))
        .unwrap();

        // B1 has no initial distribution: access is illegal until DISTRIBUTE.
        assert!(matches!(
            s.array("B1"),
            Err(CoreError::NotYetDistributed { .. })
        ));
        assert!(s.is_distributed("B2"));
        // The connections put A1 and A2 into C(B4).
        let class = s.connect_class("B4").unwrap();
        assert!(class.contains("A1") && class.contains("A2"));
        // Secondaries follow B4's distribution type immediately.
        assert_eq!(
            s.current_dist_type("A1").unwrap(),
            s.current_dist_type("B4").unwrap()
        );
    }

    #[test]
    fn example3_distribute_statements() {
        // The paper's Example 3, executed in order.
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(16)))
            .unwrap();
        s.declare_dynamic(DynamicDecl::new("B2", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B4", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d2(8, 8), "B4"))
            .unwrap();

        // DISTRIBUTE B1 :: (BLOCK)
        s.distribute(DistributeStmt::new("B1", DistType::block1d()))
            .unwrap();
        assert_eq!(s.current_dist_type("B1").unwrap(), DistType::block1d());

        // K = 2; DISTRIBUTE B1, B2 :: (CYCLIC(K))
        let k = 2;
        s.distribute(DistributeStmt::multi(["B1", "B2"], DistType::cyclic1d(k)))
            .unwrap();
        assert_eq!(s.current_dist_type("B1").unwrap(), DistType::cyclic1d(2));
        assert_eq!(s.current_dist_type("B2").unwrap(), DistType::cyclic1d(2));

        // DISTRIBUTE B3 :: (BLOCK, CYCLIC)
        s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)]),
        ))
        .unwrap();

        // DISTRIBUTE B4 :: (=B1, CYCLIC(3)) — extraction of B1's (CYCLIC(2)).
        let expr = crate::DistExpr::new(vec![
            DimSpec::ExtractFrom {
                array: "B1".into(),
                dim: 0,
            },
            DimDist::Cyclic(3).into(),
        ]);
        let report = s.distribute(DistributeStmt::with_expr("B4", expr)).unwrap();
        let expected = DistType::new(vec![DimDist::Cyclic(2), DimDist::Cyclic(3)]);
        assert_eq!(s.current_dist_type("B4").unwrap(), expected);
        // The secondary A1 followed along.
        assert_eq!(s.current_dist_type("A1").unwrap(), expected);
        assert_eq!(report.per_array.len(), 2);
    }

    #[test]
    fn range_attribute_is_enforced() {
        let mut s = scope(4);
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .range([DistPattern::dims(vec![
                    DimPattern::Block,
                    DimPattern::Block,
                ])])
                .initial(DistType::blocks2d()),
        )
        .unwrap();
        let err = s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Cyclic(1), DimDist::Cyclic(1)]),
        ));
        assert!(matches!(err, Err(CoreError::OutsideRange { .. })));
        // An initial distribution outside the declared range is rejected too.
        let err = s.declare_dynamic(
            DynamicDecl::new("B5", IndexDomain::d1(8))
                .range([DistPattern::exact(&DistType::block1d())])
                .initial(DistType::cyclic1d(1)),
        );
        assert!(matches!(err, Err(CoreError::OutsideRange { .. })));
    }

    #[test]
    fn distribute_rejects_non_primaries_and_bad_notransfer() {
        let mut s = scope(2);
        s.declare_static(StaticDecl::new(
            "U",
            IndexDomain::d1(8),
            DistType::block1d(),
        ))
        .unwrap();
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(8)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(8), "B"))
            .unwrap();
        assert!(matches!(
            s.distribute(DistributeStmt::new("U", DistType::cyclic1d(1))),
            Err(CoreError::NotAPrimaryArray { .. })
        ));
        assert!(matches!(
            s.distribute(DistributeStmt::new("A", DistType::cyclic1d(1))),
            Err(CoreError::NotAPrimaryArray { .. })
        ));
        assert!(matches!(
            s.distribute(DistributeStmt::new("B", DistType::cyclic1d(1)).notransfer(["U"])),
            Err(CoreError::InvalidNoTransfer { .. })
        ));
        assert!(matches!(
            s.distribute(DistributeStmt::new("ZZZ", DistType::cyclic1d(1))),
            Err(CoreError::UnknownArray { .. })
        ));
    }

    #[test]
    fn redistribution_preserves_data_and_propagates_to_secondaries() {
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(16), "B"))
            .unwrap();
        // Fill both arrays.
        for i in 1..=16i64 {
            s.array_mut("B")
                .unwrap()
                .set(&Point::d1(i), i as f64)
                .unwrap();
            s.array_mut("A")
                .unwrap()
                .set(&Point::d1(i), -(i as f64))
                .unwrap();
        }
        let report = s
            .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)))
            .unwrap();
        assert_eq!(report.per_array.len(), 2);
        assert!(report.moved_elements() > 0);
        for i in 1..=16i64 {
            assert_eq!(s.array("B").unwrap().get(&Point::d1(i)).unwrap(), i as f64);
            assert_eq!(
                s.array("A").unwrap().get(&Point::d1(i)).unwrap(),
                -(i as f64)
            );
        }
        // The scope's tracker saw the traffic.
        assert!(s.stats().total_messages() > 0);
        let taken = s.take_stats();
        assert_eq!(taken.total_messages(), report.messages());
        assert_eq!(s.stats().total_messages(), 0);
    }

    #[test]
    fn notransfer_skips_data_motion_for_named_secondary() {
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(16), "B"))
            .unwrap();
        for i in 1..=16i64 {
            s.array_mut("A").unwrap().set(&Point::d1(i), 1.0).unwrap();
        }
        let report = s
            .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)).notransfer(["A"]))
            .unwrap();
        let a_report = report
            .per_array
            .iter()
            .find(|(n, _)| n == "A")
            .map(|(_, r)| r.clone())
            .unwrap();
        assert_eq!(a_report.moved_elements, 0);
        assert_eq!(a_report.bytes, 0);
        // A's descriptor changed even though the data was not moved.
        assert_eq!(s.current_dist_type("A").unwrap(), DistType::cyclic1d(1));
    }

    #[test]
    fn deferred_first_distribution_allocates() {
        let mut s = scope(2);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(8)))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d1(8), "B1"))
            .unwrap();
        assert!(!s.is_distributed("B1"));
        assert!(!s.is_distributed("A1"));
        let report = s
            .distribute(DistributeStmt::new("B1", DistType::block1d()))
            .unwrap();
        assert!(s.is_distributed("B1"));
        assert!(s.is_distributed("A1"));
        assert_eq!(report.moved_elements(), 0);
        assert_eq!(s.descriptor("B1").unwrap().dist_type, DistType::block1d());
    }

    #[test]
    fn idt_checks_current_distribution() {
        let mut s = scope(4);
        s.declare_dynamic(
            DynamicDecl::new("V", IndexDomain::d2(8, 8)).initial(DistType::columns()),
        )
        .unwrap();
        assert!(s
            .idt("V", &DistPattern::exact(&DistType::columns()))
            .unwrap());
        assert!(!s.idt("V", &DistPattern::exact(&DistType::rows())).unwrap());
        assert!(s
            .idt(
                "V",
                &DistPattern::dims(vec![DimPattern::Star, DimPattern::Block])
            )
            .unwrap());
        s.distribute(DistributeStmt::new("V", DistType::rows()))
            .unwrap();
        assert!(s.idt("V", &DistPattern::exact(&DistType::rows())).unwrap());
    }

    #[test]
    fn secondary_with_unknown_or_invalid_primary_rejected() {
        let mut s = scope(2);
        assert!(matches!(
            s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(4), "NOPE")),
            Err(CoreError::UnknownArray { .. })
        ));
        s.declare_static(StaticDecl::new(
            "U",
            IndexDomain::d1(4),
            DistType::block1d(),
        ))
        .unwrap();
        assert!(matches!(
            s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(4), "U")),
            Err(CoreError::InvalidConnection { .. })
        ));
    }
}
