//! The procedure scope: declared arrays, connect classes and statement
//! execution.

use crate::connect::{ConnectClass, Connection};
use crate::decl::{DeclKind, DynamicDecl, SecondaryDecl, StaticDecl};
use crate::distribute::{DimSpec, DistributeReport, DistributeStmt};
use crate::{CoreError, Result};
use std::collections::HashMap;
use vf_dist::{construct, DistPattern, DistType, Distribution, ProcessorView};
use vf_index::IndexDomain;
use vf_machine::{trace, CommStats, CommTracker, Machine};
use vf_runtime::ghost::{
    exchange_ghosts_fused_sharded, exchange_ghosts_fused_wire_split,
    exchange_ghosts_fused_wire_with, GhostRegion, SplitGhostExchange,
};
use vf_runtime::{
    execute_redistribute_fused_sharded, execute_redistribute_fused_wire, redistribute_cached_with,
    redistribute_sharded, ArrayDescriptor, DistArray, Element, ExecBackend, ExecReport, FusedPlan,
    PlanCache, RedistOptions, SplitExecReport,
};

struct Entry<T: Element> {
    kind: DeclKind,
    domain: IndexDomain,
    data: Option<DistArray<T>>,
}

/// The ghost regions of one class halo exchange: `(name, region)` for the
/// primary (first) and each connected secondary, in class order — see
/// [`VfScope::exchange_class_ghosts`].
pub type ClassGhosts<T> = Vec<(String, GhostRegion<T>)>;

/// Double-buffered class halo storage for iterative split-phase sweeps.
///
/// The *front* buffer holds the last **completed** exchange's ghost
/// regions and stays readable while the next exchange is in flight; when
/// that exchange completes ([`ClassHaloExchange::wait_into`]) the fresh
/// regions swap to the front and the previous front retires to the
/// *back* — so a consumer never observes a half-filled halo, and the stale
/// generation remains inspectable (e.g. for convergence deltas) until the
/// following swap drops it.
pub struct ClassHalo<T: Element> {
    front: Option<ClassGhosts<T>>,
    back: Option<ClassGhosts<T>>,
}

impl<T: Element> ClassHalo<T> {
    /// An empty halo store (no exchange completed yet).
    pub fn new() -> Self {
        Self {
            front: None,
            back: None,
        }
    }

    /// The last completed exchange's regions, if any.
    pub fn front(&self) -> Option<&ClassGhosts<T>> {
        self.front.as_ref()
    }

    /// The generation displaced by the most recent swap, if any.
    pub fn back(&self) -> Option<&ClassGhosts<T>> {
        self.back.as_ref()
    }

    /// Publishes a freshly completed exchange: `fresh` becomes the front
    /// buffer and the previous front (if any) moves to the back.
    pub fn publish(&mut self, fresh: ClassGhosts<T>) {
        self.back = self.front.take();
        self.front = Some(fresh);
    }
}

impl<T: Element> Default for ClassHalo<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A class ghost exchange caught between its post and its wait — returned
/// by [`VfScope::exchange_class_ghosts_split`].
///
/// The modelled messages are already posted and the crossing payloads
/// packed; with the scope running a pooled threaded backend the per-pair
/// unpacks stream on background workers while the caller computes.  The
/// class arrays must not be mutated and no other scope operation that uses
/// the executor may run while the handle is live (the pool's submission
/// turn is held).
pub struct ClassHaloExchange<'s, T: Element> {
    inner: SplitGhostExchange<'s, T>,
    names: Vec<String>,
    tracker: &'s CommTracker,
}

impl<T: Element> ClassHaloExchange<'_, T> {
    /// Messages posted (one per communicating processor pair, whole class).
    pub fn messages(&self) -> usize {
        self.inner.messages()
    }

    /// Bytes posted.
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }

    /// Whether the unpack is streaming on background workers (`false`: it
    /// already completed inline at the post).
    pub fn is_streaming(&self) -> bool {
        self.inner.is_streaming()
    }

    /// Blocks until processor `proc`'s ghost slots (every class member)
    /// have landed, helping unpack while waiting; other processors' halos
    /// may still be in flight.  [`ClassHaloExchange::wait`] or
    /// [`ClassHaloExchange::wait_into`] is still required afterwards.
    pub fn wait_dest(&self, proc: usize) {
        self.inner.wait_dest(proc);
    }

    /// Cancels the exchange without taking the regions: the in-flight
    /// unpack is drained and the posted charges settled (the messages were
    /// already sent).  Equivalent to dropping the handle.
    pub fn cancel(self) {
        self.inner.cancel();
    }

    /// Completes the exchange: ghost regions bitwise identical to
    /// [`VfScope::exchange_class_ghosts`], plus the split-phase report
    /// with the *measured* wall-clock overlap.
    ///
    /// # Errors
    /// An unrepairable [`vf_runtime::RuntimeError::CorruptMessage`] —
    /// charges are settled and the corrupt payload is never unpacked.
    pub fn wait(self) -> Result<(ClassGhosts<T>, SplitExecReport)> {
        let (regions, report) = self.inner.wait(self.tracker)?;
        Ok((self.names.into_iter().zip(regions).collect(), report))
    }

    /// Completes the exchange and swaps the fresh regions into `halo`'s
    /// front buffer (the previous front retires to the back) — the
    /// double-buffered form of [`ClassHaloExchange::wait`].
    ///
    /// # Errors
    /// Exactly as [`ClassHaloExchange::wait`]; `halo` is left untouched on
    /// error.
    pub fn wait_into(self, halo: &mut ClassHalo<T>) -> Result<SplitExecReport> {
        let (fresh, report) = self.wait()?;
        halo.publish(fresh);
        Ok(report)
    }
}

/// A Vienna Fortran procedure scope.
///
/// The scope owns the declared arrays (static and dynamic), their connect
/// equivalence classes, and the machine/communication-tracker pair the
/// program runs on.  Statements (`DISTRIBUTE`, `DCASE`, `IDT`) execute
/// against the scope; array data is accessed through
/// [`VfScope::array`] / [`VfScope::array_mut`].
///
/// The connect relation "does not extend across procedure boundaries"
/// (paper §2.3, rule 5): creating a new scope starts with empty classes.
/// All arrays in one scope share the element type `T` (the paper's examples
/// are all `REAL`; use several scopes or the runtime layer directly for
/// mixed-type programs).
pub struct VfScope<T: Element = f64> {
    machine: Machine,
    tracker: CommTracker,
    plan_cache: PlanCache,
    executor: ExecBackend,
    default_procs: ProcessorView,
    arrays: HashMap<String, Entry<T>>,
    order: Vec<String>,
    classes: HashMap<String, ConnectClass>,
}

impl<T: Element> VfScope<T> {
    /// Creates a scope executing on `machine`, with the default processor
    /// arrangement `$NP` = `machine.num_procs()` in one dimension.
    pub fn new(machine: Machine) -> Self {
        let default_procs = ProcessorView::linear(machine.num_procs());
        Self::with_processors(machine, default_procs)
    }

    /// Creates a scope with an explicit default processor view (e.g. a 2-D
    /// grid `PROCESSORS R(1:M,1:M)`).
    pub fn with_processors(machine: Machine, default_procs: ProcessorView) -> Self {
        let tracker = machine.tracker();
        Self {
            machine,
            tracker,
            plan_cache: PlanCache::new(),
            executor: ExecBackend::auto(),
            default_procs,
            arrays: HashMap::new(),
            order: Vec::new(),
            classes: HashMap::new(),
        }
    }

    /// Selects the backend that executes the copy phase of `DISTRIBUTE`
    /// data motion (serial or threaded — results are bit-identical, see
    /// [`vf_runtime::exec`]).  The default is [`ExecBackend::auto`], whose
    /// threaded variant submits to the process-wide **persistent worker
    /// pool**: the scope's executor holds the pool handle for its whole
    /// lifetime, so every `DISTRIBUTE`, class ghost exchange and app step
    /// reuses the same parked workers instead of re-paying thread spawns.
    pub fn set_executor(&mut self, executor: ExecBackend) {
        self.executor = executor;
    }

    /// The execution backend `DISTRIBUTE` statements run their copies on.
    pub fn executor(&self) -> &ExecBackend {
        &self.executor
    }

    /// The persistent worker pool the scope's executor submits to, if the
    /// backend is threaded — the pool lives (at least) as long as the
    /// scope and is shared across all of its statements.
    pub fn worker_pool(&self) -> Option<&std::sync::Arc<vf_machine::WorkerPool>> {
        self.executor.worker_pool()
    }

    /// The machine the scope executes on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The `$NP` intrinsic: the number of executing processors.
    pub fn num_procs(&self) -> usize {
        self.machine.num_procs()
    }

    /// The scope's communication tracker.
    pub fn tracker(&self) -> &CommTracker {
        &self.tracker
    }

    /// The scope's communication-plan cache: `DISTRIBUTE` statements plan
    /// each (from, to) distribution pair once and replay the cached
    /// schedule on later executions — the PARTI schedule reuse of paper
    /// §3.2 applied to the language layer.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The default processor view used when declarations and statements do
    /// not name an explicit target.
    pub fn default_procs(&self) -> &ProcessorView {
        &self.default_procs
    }

    /// A snapshot of the communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.tracker.snapshot()
    }

    /// Returns and resets the accumulated communication statistics —
    /// convenient for per-phase accounting in the experiments.
    pub fn take_stats(&self) -> CommStats {
        self.tracker.take()
    }

    /// The runtime profile report: per-phase span counts, measured seconds
    /// and latency percentiles from the global [`trace`] registry, plus a
    /// drift section comparing the measured seconds against the modelled
    /// (credited) seconds in this scope's [`CommStats`].  `Display` renders
    /// the human-readable table; [`trace::MetricsReport::to_json`] the
    /// machine-readable artifact.  Empty when `VF_TRACE` is off.
    pub fn profile(&self) -> trace::MetricsReport {
        self.machine.metrics_report(&self.stats())
    }

    /// Names of all declared arrays, in declaration order.
    pub fn declared_names(&self) -> &[String] {
        &self.order
    }

    fn insert_entry(&mut self, name: &str, entry: Entry<T>) -> Result<()> {
        if self.arrays.contains_key(name) {
            return Err(CoreError::DuplicateDeclaration { name: name.into() });
        }
        self.arrays.insert(name.to_string(), entry);
        self.order.push(name.to_string());
        Ok(())
    }

    /// Declares a statically distributed array and allocates it
    /// immediately.
    pub fn declare_static(&mut self, decl: StaticDecl) -> Result<()> {
        let procs = decl
            .target
            .clone()
            .unwrap_or_else(|| self.default_procs.clone());
        let dist = Distribution::new(decl.dist_type.clone(), decl.domain.clone(), procs)?;
        let data = DistArray::new(decl.name.clone(), dist);
        self.insert_entry(
            &decl.name,
            Entry {
                kind: DeclKind::Static {
                    dist_type: decl.dist_type,
                    target: decl.target,
                },
                domain: decl.domain,
                data: Some(data),
            },
        )
    }

    /// Declares a dynamically distributed primary array.  If the
    /// declaration carries an initial distribution the array is allocated
    /// and distributed immediately; otherwise it may not be accessed until
    /// a `DISTRIBUTE` statement executes (paper §2.3).
    pub fn declare_dynamic(&mut self, decl: DynamicDecl) -> Result<()> {
        let data = if let Some(initial) = &decl.initial {
            if !decl.range.is_empty() && !decl.range.iter().any(|p| p.matches(initial)) {
                return Err(CoreError::OutsideRange {
                    name: decl.name.clone(),
                    dist_type: initial.to_string(),
                });
            }
            let procs = decl
                .target
                .clone()
                .unwrap_or_else(|| self.default_procs.clone());
            let dist = Distribution::new(initial.clone(), decl.domain.clone(), procs)?;
            Some(DistArray::new(decl.name.clone(), dist))
        } else {
            None
        };
        self.classes.insert(decl.name.clone(), ConnectClass::new());
        self.insert_entry(
            &decl.name,
            Entry {
                kind: DeclKind::DynamicPrimary {
                    range: decl.range,
                    initial: decl.initial,
                    target: decl.target,
                },
                domain: decl.domain,
                data,
            },
        )
    }

    /// Declares a dynamic secondary array connected to an existing primary.
    /// If the primary is currently distributed, the secondary is allocated
    /// with the derived distribution right away.
    pub fn declare_secondary(&mut self, decl: SecondaryDecl) -> Result<()> {
        let primary_entry =
            self.arrays
                .get(&decl.primary)
                .ok_or_else(|| CoreError::UnknownArray {
                    name: decl.primary.clone(),
                })?;
        if !matches!(primary_entry.kind, DeclKind::DynamicPrimary { .. }) {
            return Err(CoreError::InvalidConnection {
                secondary: decl.name.clone(),
                primary: decl.primary.clone(),
                reason: "the named array is not a dynamic primary array".into(),
            });
        }
        let data = match &primary_entry.data {
            Some(primary_data) => Some(DistArray::new(
                decl.name.clone(),
                Self::derive_secondary_dist(&decl.connection, primary_data.dist(), &decl.domain)?,
            )),
            None => None,
        };
        self.classes
            .get_mut(&decl.primary)
            .expect("class created with the primary")
            .add_secondary(decl.name.clone(), decl.connection.clone());
        self.insert_entry(
            &decl.name,
            Entry {
                kind: DeclKind::DynamicSecondary {
                    primary: decl.primary,
                    connection: decl.connection,
                },
                domain: decl.domain,
                data,
            },
        )
    }

    fn derive_secondary_dist(
        connection: &Connection,
        primary_dist: &Distribution,
        secondary_domain: &IndexDomain,
    ) -> Result<Distribution> {
        match connection {
            Connection::Extraction => Ok(Distribution::new(
                primary_dist.dist_type().clone(),
                secondary_domain.clone(),
                primary_dist.procs().clone(),
            )?),
            Connection::Alignment(a) => Ok(construct(a, primary_dist, secondary_domain)?),
        }
    }

    /// Exchanges the overlap (ghost) areas of a dynamic primary array and
    /// **every array of its connect class** as one fused ghost exchange:
    /// the class pays a single message per communicating processor pair —
    /// the payloads of all member arrays are **packed into one contiguous
    /// wire buffer** per pair, laid out by
    /// [`vf_runtime::FusedPlan::wire_slices`], and unpacked into each
    /// member's own ghost-buffer slots at the destination — instead of one
    /// message per array per pair.  Halo geometry is planned once per
    /// (distribution fingerprint, widths) pair through the scope's
    /// [`PlanCache`]; the pack/unpack streams run on the scope's
    /// [`ExecBackend`] (the pooled threaded backend parallelises them over
    /// destination processors).
    ///
    /// Returns `(name, ghosts)` for the primary (first) and each connected
    /// secondary in class order, plus what the fused exchange charged.
    /// Byte and element totals equal the sum over per-array exchanges
    /// exactly.
    ///
    /// # Errors
    /// [`CoreError::UnknownArray`] / [`CoreError::NotAPrimaryArray`] if
    /// `primary` is not a dynamic primary;
    /// [`CoreError::NotYetDistributed`] if any class member has no current
    /// distribution; planner errors (e.g.
    /// [`vf_runtime::RuntimeError::NonContiguousLayout`]) pass through.
    pub fn exchange_class_ghosts(
        &self,
        primary: &str,
        widths: &[(usize, usize)],
    ) -> Result<(ClassGhosts<T>, ExecReport)> {
        if !matches!(
            self.arrays
                .get(primary)
                .ok_or_else(|| CoreError::UnknownArray {
                    name: primary.into(),
                })?
                .kind,
            DeclKind::DynamicPrimary { .. }
        ) {
            return Err(CoreError::NotAPrimaryArray {
                name: primary.into(),
            });
        }
        let _span = trace::OpenSpan::begin_with(trace::Phase::Statement, || {
            format!("exchange-ghosts {primary}")
        });
        let mut names: Vec<String> = vec![primary.to_string()];
        let class = self.classes.get(primary).cloned().unwrap_or_default();
        names.extend(class.secondaries().map(|(name, _)| name.to_string()));
        let mut members = Vec::with_capacity(names.len());
        for name in &names {
            members.push(self.array(name)?);
        }
        // The distributed-memory backend routes the class halo over real
        // SPMD channels (rank-local shards); every other backend packs the
        // same wire buffers through shared memory.  Regions and charges
        // are bitwise identical either way.
        let (regions, exec) = if let ExecBackend::Sharded(sharded) = &self.executor {
            exchange_ghosts_fused_sharded(
                &members,
                widths,
                &self.tracker,
                &self.plan_cache,
                sharded,
            )?
        } else {
            exchange_ghosts_fused_wire_with(
                &members,
                widths,
                &self.tracker,
                &self.plan_cache,
                &self.executor,
            )?
        };
        Ok((names.into_iter().zip(regions).collect(), exec))
    }

    /// Split-phase variant of [`VfScope::exchange_class_ghosts`]: packs the
    /// class halo, posts the messages and **returns immediately** with an
    /// in-flight [`ClassHaloExchange`], so the caller can run interior
    /// compute (points whose stencil needs no ghost value) while the halo
    /// streams in on the executor's background workers, then `wait()` for
    /// regions bitwise identical to the blocking exchange.
    ///
    /// # Errors
    /// Exactly as [`VfScope::exchange_class_ghosts`] — everything is
    /// validated before any message is posted.
    pub fn exchange_class_ghosts_split(
        &self,
        primary: &str,
        widths: &[(usize, usize)],
    ) -> Result<ClassHaloExchange<'_, T>> {
        if !matches!(
            self.arrays
                .get(primary)
                .ok_or_else(|| CoreError::UnknownArray {
                    name: primary.into(),
                })?
                .kind,
            DeclKind::DynamicPrimary { .. }
        ) {
            return Err(CoreError::NotAPrimaryArray {
                name: primary.into(),
            });
        }
        let _span = trace::OpenSpan::begin_with(trace::Phase::Statement, || {
            format!("exchange-ghosts-split {primary}")
        });
        let mut names: Vec<String> = vec![primary.to_string()];
        let class = self.classes.get(primary).cloned().unwrap_or_default();
        names.extend(class.secondaries().map(|(name, _)| name.to_string()));
        let mut members = Vec::with_capacity(names.len());
        for name in &names {
            members.push(self.array(name)?);
        }
        let inner = exchange_ghosts_fused_wire_split(
            &members,
            widths,
            &self.tracker,
            &self.plan_cache,
            &self.executor,
        )?;
        Ok(ClassHaloExchange {
            inner,
            names,
            tracker: &self.tracker,
        })
    }

    /// The connect equivalence class of a primary array.
    pub fn connect_class(&self, primary: &str) -> Result<&ConnectClass> {
        self.classes
            .get(primary)
            .ok_or_else(|| CoreError::UnknownArray {
                name: primary.into(),
            })
    }

    /// Whether `name` is declared and currently associated with a
    /// distribution.
    pub fn is_distributed(&self, name: &str) -> bool {
        self.arrays
            .get(name)
            .map(|e| e.data.is_some())
            .unwrap_or(false)
    }

    /// Read access to an array's data.
    pub fn array(&self, name: &str) -> Result<&DistArray<T>> {
        let entry = self
            .arrays
            .get(name)
            .ok_or_else(|| CoreError::UnknownArray { name: name.into() })?;
        entry
            .data
            .as_ref()
            .ok_or_else(|| CoreError::NotYetDistributed { name: name.into() })
    }

    /// Mutable access to an array's data.
    pub fn array_mut(&mut self, name: &str) -> Result<&mut DistArray<T>> {
        let entry = self
            .arrays
            .get_mut(name)
            .ok_or_else(|| CoreError::UnknownArray { name: name.into() })?;
        entry
            .data
            .as_mut()
            .ok_or_else(|| CoreError::NotYetDistributed { name: name.into() })
    }

    /// The distribution type currently associated with `name`.
    pub fn current_dist_type(&self, name: &str) -> Result<DistType> {
        Ok(self.array(name)?.dist().dist_type().clone())
    }

    /// The run-time descriptor (paper §3.2.1) of an array.
    pub fn descriptor(&self, name: &str) -> Result<ArrayDescriptor> {
        Ok(ArrayDescriptor::of(self.array(name)?))
    }

    /// The `IDT` intrinsic restricted to distribution types: whether the
    /// current distribution type of `name` matches `pattern`.
    pub fn idt(&self, name: &str, pattern: &DistPattern) -> Result<bool> {
        Ok(pattern.matches(&self.current_dist_type(name)?))
    }

    /// Resolves a distribution expression against the current scope state
    /// (evaluating distribution extraction entries).
    fn resolve_expr(&self, stmt: &DistributeStmt) -> Result<(DistType, Option<ProcessorView>)> {
        let mut dims = Vec::with_capacity(stmt.expr.dims.len());
        for spec in &stmt.expr.dims {
            match spec {
                DimSpec::Dist(d) => dims.push(d.clone()),
                DimSpec::ExtractFrom { array, dim } => {
                    let t = self.current_dist_type(array)?;
                    if *dim >= t.rank() {
                        return Err(CoreError::Dist(vf_dist::DistError::RankMismatch {
                            array_rank: t.rank(),
                            dist_rank: dim + 1,
                        }));
                    }
                    dims.push(t.dim(*dim).clone());
                }
            }
        }
        Ok((DistType::new(dims), stmt.expr.target.clone()))
    }

    /// Executes a `DISTRIBUTE` statement (paper §2.4 / §3.2.2): validates
    /// the statement, redistributes every named primary array, and
    /// propagates the redistribution to every secondary array of the
    /// affected connect classes, honouring `NOTRANSFER`.
    ///
    /// When the statement moves two or more arrays with data — a connect
    /// class, a multi-array statement, or both — their per-array
    /// communication plans are **fused**: the whole statement charges a
    /// single message per (sender, receiver) processor pair instead of one
    /// per array per pair, with identical element and byte totals (the
    /// per-array split is still reported, see
    /// [`DistributeReport::fused`]).  The copies run on the scope's
    /// [`ExecBackend`].
    pub fn distribute(&mut self, stmt: DistributeStmt) -> Result<DistributeReport> {
        let _span = trace::OpenSpan::begin_with(trace::Phase::Statement, || {
            format!("distribute {}", stmt.arrays.join(","))
        });
        let (dist_type, explicit_target) = self.resolve_expr(&stmt)?;

        // Validate NOTRANSFER: every name must be a secondary array in one
        // of the affected classes.
        for nt in &stmt.notransfer {
            let ok = stmt.arrays.iter().any(|primary| {
                self.classes
                    .get(primary)
                    .map(|c| c.contains(nt))
                    .unwrap_or(false)
            });
            if !ok {
                return Err(CoreError::InvalidNoTransfer {
                    name: nt.clone(),
                    primary: stmt.arrays.join(","),
                });
            }
        }

        // Phase 1: validate every primary and evaluate the new
        // distribution of every affected array (paper §3.2.2, steps 1 and
        // 2) before any data moves.
        let mut works: Vec<DistributeWork> = Vec::new();
        for primary in &stmt.arrays {
            self.plan_class_works(
                primary,
                &dist_type,
                explicit_target.as_ref(),
                &stmt,
                &mut works,
            )?;
        }

        // Phase 2: execute.  First-time allocations and NOTRANSFER
        // descriptor swaps are per-array; everything with data to move is
        // collected and executed as one fused schedule when there is more
        // than one such array.
        let mut reports: Vec<Option<vf_runtime::RedistReport>> = vec![None; works.len()];
        let mut moving: Vec<usize> = Vec::new();
        for (idx, work) in works.iter().enumerate() {
            let entry = self.arrays.get_mut(&work.name).expect("validated above");
            match entry.data.as_mut() {
                None => {
                    // First distribution: allocate, nothing moves.
                    entry.data = Some(DistArray::new(work.name.clone(), work.new_dist.clone()));
                    reports[idx] = Some(Default::default());
                }
                Some(data) if work.notransfer => {
                    reports[idx] = Some(redistribute_cached_with(
                        data,
                        work.new_dist.clone(),
                        &self.tracker,
                        &RedistOptions::notransfer(),
                        &self.plan_cache,
                        &self.executor,
                    )?);
                }
                Some(_) => moving.push(idx),
            }
        }

        let fused_charge = match moving.len() {
            0 => None,
            1 => {
                let idx = moving[0];
                let work = &works[idx];
                let entry = self.arrays.get_mut(&work.name).expect("validated above");
                let data = entry.data.as_mut().expect("phase 2 saw data");
                reports[idx] = Some(if let ExecBackend::Sharded(sharded) = &self.executor {
                    redistribute_sharded(
                        data,
                        &work.new_dist,
                        &self.tracker,
                        &self.plan_cache,
                        sharded,
                    )?
                } else {
                    redistribute_cached_with(
                        data,
                        work.new_dist.clone(),
                        &self.tracker,
                        &RedistOptions::default(),
                        &self.plan_cache,
                        &self.executor,
                    )?
                });
                None
            }
            _ => {
                // Plan every array against the shared cache, then fuse.
                let mut parts = Vec::with_capacity(moving.len());
                for &idx in &moving {
                    let work = &works[idx];
                    let entry = self.arrays.get(&work.name).expect("validated above");
                    let data = entry.data.as_ref().expect("phase 2 saw data");
                    parts.push(
                        self.plan_cache
                            .redistribute_plan(data.dist(), &work.new_dist)?,
                    );
                }
                let fused = FusedPlan::fuse(parts)?;
                // Take the arrays out for the duration of the fused
                // execution (it needs simultaneous mutable access).
                let mut datas: Vec<DistArray<T>> = moving
                    .iter()
                    .map(|&idx| {
                        self.arrays
                            .get_mut(&works[idx].name)
                            .expect("validated above")
                            .data
                            .take()
                            .expect("phase 2 saw data")
                    })
                    .collect();
                // The fused statement executes through the wire-layout
                // path: one packed message per processor pair, pack/unpack
                // streams on the scope's (pooled) backend.
                let result = {
                    let mut refs: Vec<&mut DistArray<T>> = datas.iter_mut().collect();
                    if let ExecBackend::Sharded(sharded) = &self.executor {
                        execute_redistribute_fused_sharded(
                            &mut refs,
                            &fused,
                            &self.tracker,
                            sharded,
                        )
                    } else {
                        execute_redistribute_fused_wire(
                            &mut refs,
                            &fused,
                            &self.tracker,
                            &self.executor,
                        )
                    }
                };
                // Put the arrays back whether or not execution succeeded
                // (a failed fused execute validates before moving, so the
                // data is unchanged).
                for (&idx, data) in moving.iter().zip(datas) {
                    self.arrays
                        .get_mut(&works[idx].name)
                        .expect("validated above")
                        .data = Some(data);
                }
                let (part_reports, exec) = result?;
                for (&idx, part_report) in moving.iter().zip(part_reports) {
                    reports[idx] = Some(part_report);
                }
                Some(exec)
            }
        };

        Ok(DistributeReport {
            per_array: works
                .into_iter()
                .zip(reports)
                .map(|(work, report)| (work.name, report.expect("every work executed")))
                .collect(),
            fused: fused_charge,
        })
    }

    /// Validates `primary` and appends one [`DistributeWork`] for it plus
    /// one per connected secondary (honouring `NOTRANSFER`), skipping
    /// arrays already scheduled by an earlier primary of the same
    /// statement.
    fn plan_class_works(
        &self,
        primary: &str,
        dist_type: &DistType,
        explicit_target: Option<&ProcessorView>,
        stmt: &DistributeStmt,
        works: &mut Vec<DistributeWork>,
    ) -> Result<()> {
        // Validate the primary.
        let entry = self
            .arrays
            .get(primary)
            .ok_or_else(|| CoreError::UnknownArray {
                name: primary.into(),
            })?;
        let (range, decl_target) = match &entry.kind {
            DeclKind::DynamicPrimary { range, target, .. } => (range.clone(), target.clone()),
            _ => {
                return Err(CoreError::NotAPrimaryArray {
                    name: primary.into(),
                })
            }
        };
        if !range.is_empty() && !range.iter().any(|p| p.matches(dist_type)) {
            return Err(CoreError::OutsideRange {
                name: primary.into(),
                dist_type: dist_type.to_string(),
            });
        }

        // Step 1 (paper §3.2.2): evaluate the new distribution of the
        // primary.
        let procs = explicit_target
            .cloned()
            .or(decl_target)
            .unwrap_or_else(|| self.default_procs.clone());
        let new_dist = Distribution::new(dist_type.clone(), entry.domain.clone(), procs)?;
        if !works.iter().any(|w| w.name == primary) {
            works.push(DistributeWork {
                name: primary.to_string(),
                new_dist: new_dist.clone(),
                notransfer: false,
            });
        }

        // Step 2 for every connected secondary array: derive its
        // distribution from the primary's new one.
        let class = self.classes.get(primary).cloned().unwrap_or_default();
        for (secondary, connection) in class.secondaries() {
            if works.iter().any(|w| w.name == secondary) {
                continue;
            }
            let sec_domain = self
                .arrays
                .get(secondary)
                .expect("secondary declared before being added to the class")
                .domain
                .clone();
            let sec_dist = Self::derive_secondary_dist(connection, &new_dist, &sec_domain)?;
            works.push(DistributeWork {
                name: secondary.to_string(),
                new_dist: sec_dist,
                notransfer: stmt.notransfer.iter().any(|n| n == secondary),
            });
        }
        Ok(())
    }
}

/// One array affected by a `DISTRIBUTE` statement: the evaluated target
/// distribution and whether the data motion is suppressed.
struct DistributeWork {
    name: String,
    new_dist: Distribution,
    notransfer: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{Alignment, DimDist, DimPattern};
    use vf_index::Point;
    use vf_machine::CostModel;

    fn scope(p: usize) -> VfScope<f64> {
        VfScope::new(Machine::new(p, CostModel::zero()))
    }

    #[test]
    fn static_arrays_are_allocated_immediately() {
        let mut s = scope(4);
        s.declare_static(StaticDecl::new(
            "U",
            IndexDomain::d2(8, 8),
            DistType::columns(),
        ))
        .unwrap();
        assert!(s.is_distributed("U"));
        assert_eq!(s.current_dist_type("U").unwrap(), DistType::columns());
        assert_eq!(s.array("U").unwrap().domain().size(), 64);
        assert_eq!(s.num_procs(), 4);
        // Re-declaration is rejected.
        assert!(matches!(
            s.declare_static(StaticDecl::new(
                "U",
                IndexDomain::d1(4),
                DistType::block1d()
            )),
            Err(CoreError::DuplicateDeclaration { .. })
        ));
    }

    #[test]
    fn example2_declarations() {
        // The paper's Example 2, executed.
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(8)))
            .unwrap();
        s.declare_dynamic(DynamicDecl::new("B2", IndexDomain::d1(12)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .range([
                    DistPattern::dims(vec![DimPattern::Block, DimPattern::Block]),
                    DistPattern::dims(vec![DimPattern::Star, DimPattern::Cyclic(1)]),
                ])
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B4", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d2(8, 8), "B4"))
            .unwrap();
        s.declare_secondary(SecondaryDecl::aligned(
            "A2",
            IndexDomain::d2(8, 8),
            "B4",
            Alignment::identity(2),
        ))
        .unwrap();

        // B1 has no initial distribution: access is illegal until DISTRIBUTE.
        assert!(matches!(
            s.array("B1"),
            Err(CoreError::NotYetDistributed { .. })
        ));
        assert!(s.is_distributed("B2"));
        // The connections put A1 and A2 into C(B4).
        let class = s.connect_class("B4").unwrap();
        assert!(class.contains("A1") && class.contains("A2"));
        // Secondaries follow B4's distribution type immediately.
        assert_eq!(
            s.current_dist_type("A1").unwrap(),
            s.current_dist_type("B4").unwrap()
        );
    }

    #[test]
    fn example3_distribute_statements() {
        // The paper's Example 3, executed in order.
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(16)))
            .unwrap();
        s.declare_dynamic(DynamicDecl::new("B2", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_dynamic(
            DynamicDecl::new("B4", IndexDomain::d2(8, 8))
                .initial(DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)])),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d2(8, 8), "B4"))
            .unwrap();

        // DISTRIBUTE B1 :: (BLOCK)
        s.distribute(DistributeStmt::new("B1", DistType::block1d()))
            .unwrap();
        assert_eq!(s.current_dist_type("B1").unwrap(), DistType::block1d());

        // K = 2; DISTRIBUTE B1, B2 :: (CYCLIC(K))
        let k = 2;
        s.distribute(DistributeStmt::multi(["B1", "B2"], DistType::cyclic1d(k)))
            .unwrap();
        assert_eq!(s.current_dist_type("B1").unwrap(), DistType::cyclic1d(2));
        assert_eq!(s.current_dist_type("B2").unwrap(), DistType::cyclic1d(2));

        // DISTRIBUTE B3 :: (BLOCK, CYCLIC)
        s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)]),
        ))
        .unwrap();

        // DISTRIBUTE B4 :: (=B1, CYCLIC(3)) — extraction of B1's (CYCLIC(2)).
        let expr = crate::DistExpr::new(vec![
            DimSpec::ExtractFrom {
                array: "B1".into(),
                dim: 0,
            },
            DimDist::Cyclic(3).into(),
        ]);
        let report = s.distribute(DistributeStmt::with_expr("B4", expr)).unwrap();
        let expected = DistType::new(vec![DimDist::Cyclic(2), DimDist::Cyclic(3)]);
        assert_eq!(s.current_dist_type("B4").unwrap(), expected);
        // The secondary A1 followed along.
        assert_eq!(s.current_dist_type("A1").unwrap(), expected);
        assert_eq!(report.per_array.len(), 2);
    }

    #[test]
    fn range_attribute_is_enforced() {
        let mut s = scope(4);
        s.declare_dynamic(
            DynamicDecl::new("B3", IndexDomain::d2(8, 8))
                .range([DistPattern::dims(vec![
                    DimPattern::Block,
                    DimPattern::Block,
                ])])
                .initial(DistType::blocks2d()),
        )
        .unwrap();
        let err = s.distribute(DistributeStmt::new(
            "B3",
            DistType::new(vec![DimDist::Cyclic(1), DimDist::Cyclic(1)]),
        ));
        assert!(matches!(err, Err(CoreError::OutsideRange { .. })));
        // An initial distribution outside the declared range is rejected too.
        let err = s.declare_dynamic(
            DynamicDecl::new("B5", IndexDomain::d1(8))
                .range([DistPattern::exact(&DistType::block1d())])
                .initial(DistType::cyclic1d(1)),
        );
        assert!(matches!(err, Err(CoreError::OutsideRange { .. })));
    }

    #[test]
    fn distribute_rejects_non_primaries_and_bad_notransfer() {
        let mut s = scope(2);
        s.declare_static(StaticDecl::new(
            "U",
            IndexDomain::d1(8),
            DistType::block1d(),
        ))
        .unwrap();
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(8)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(8), "B"))
            .unwrap();
        assert!(matches!(
            s.distribute(DistributeStmt::new("U", DistType::cyclic1d(1))),
            Err(CoreError::NotAPrimaryArray { .. })
        ));
        assert!(matches!(
            s.distribute(DistributeStmt::new("A", DistType::cyclic1d(1))),
            Err(CoreError::NotAPrimaryArray { .. })
        ));
        assert!(matches!(
            s.distribute(DistributeStmt::new("B", DistType::cyclic1d(1)).notransfer(["U"])),
            Err(CoreError::InvalidNoTransfer { .. })
        ));
        assert!(matches!(
            s.distribute(DistributeStmt::new("ZZZ", DistType::cyclic1d(1))),
            Err(CoreError::UnknownArray { .. })
        ));
    }

    #[test]
    fn redistribution_preserves_data_and_propagates_to_secondaries() {
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(16), "B"))
            .unwrap();
        // Fill both arrays.
        for i in 1..=16i64 {
            s.array_mut("B")
                .unwrap()
                .set(&Point::d1(i), i as f64)
                .unwrap();
            s.array_mut("A")
                .unwrap()
                .set(&Point::d1(i), -(i as f64))
                .unwrap();
        }
        let report = s
            .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)))
            .unwrap();
        assert_eq!(report.per_array.len(), 2);
        assert!(report.moved_elements() > 0);
        for i in 1..=16i64 {
            assert_eq!(s.array("B").unwrap().get(&Point::d1(i)).unwrap(), i as f64);
            assert_eq!(
                s.array("A").unwrap().get(&Point::d1(i)).unwrap(),
                -(i as f64)
            );
        }
        // The scope's tracker saw the traffic.
        assert!(s.stats().total_messages() > 0);
        let taken = s.take_stats();
        assert_eq!(taken.total_messages(), report.messages());
        assert_eq!(s.stats().total_messages(), 0);
    }

    #[test]
    fn connect_class_distribute_fuses_to_one_message_per_pair() {
        let p = 4usize;
        let mut s = scope(p);
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(32)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d1(32), "B"))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A2", IndexDomain::d1(32), "B"))
            .unwrap();
        for i in 1..=32i64 {
            for name in ["B", "A1", "A2"] {
                s.array_mut(name)
                    .unwrap()
                    .set(&Point::d1(i), i as f64)
                    .unwrap();
            }
        }
        s.take_stats();
        let report = s
            .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)))
            .unwrap();
        // Three arrays moved as one fused schedule: at most one message
        // per processor pair for the whole class, strictly fewer than the
        // one-message-per-array-per-pair of unfused execution.
        assert!(report.fused.is_some());
        assert!(report.messages() <= p * (p - 1));
        assert!(report.messages() < report.unfused_messages());
        assert_eq!(report.unfused_messages(), 3 * report.messages());
        // The tracker saw exactly the fused totals, and the bytes are the
        // full three-array volume.
        let stats = s.take_stats();
        assert_eq!(stats.total_messages(), report.messages());
        assert_eq!(stats.total_bytes(), report.bytes());
        assert_eq!(
            report.bytes(),
            report.per_array.iter().map(|(_, r)| r.bytes).sum::<usize>()
        );
        // Data survived for every member.
        for name in ["B", "A1", "A2"] {
            for i in 1..=32i64 {
                assert_eq!(s.array(name).unwrap().get(&Point::d1(i)).unwrap(), i as f64);
            }
        }
        // Serial and threaded backends agree bit-for-bit at the language
        // level too.
        let mut s2 = scope(p);
        s2.set_executor(vf_runtime::ExecBackend::Threaded(
            vf_runtime::ThreadedExecutor::with_workers(3).serial_cutoff_bytes(0),
        ));
        assert_eq!(vf_runtime::PlanExecutor::name(s2.executor()), "threaded");
        s2.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(32)).initial(DistType::block1d()))
            .unwrap();
        s2.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d1(32), "B"))
            .unwrap();
        s2.declare_secondary(SecondaryDecl::extraction("A2", IndexDomain::d1(32), "B"))
            .unwrap();
        for i in 1..=32i64 {
            for name in ["B", "A1", "A2"] {
                s2.array_mut(name)
                    .unwrap()
                    .set(&Point::d1(i), i as f64)
                    .unwrap();
            }
        }
        s2.take_stats();
        let report2 = s2
            .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)))
            .unwrap();
        assert_eq!(report2, report);
        for name in ["B", "A1", "A2"] {
            assert_eq!(
                s2.array(name).unwrap().to_dense(),
                s.array(name).unwrap().to_dense()
            );
        }
    }

    #[test]
    fn sharded_backend_matches_serial_at_the_language_level() {
        let p = 4usize;
        let n = 32usize;
        // Run the same program — declare a class, seed data, DISTRIBUTE
        // the class, exchange its halo — once per backend.
        let run = |backend: Option<vf_runtime::ShardedExecutor>| {
            let mut s = scope(p);
            match backend {
                Some(sharded) => {
                    s.set_executor(ExecBackend::Sharded(sharded));
                    assert_eq!(vf_runtime::PlanExecutor::name(s.executor()), "sharded");
                }
                // Pin the baseline: `auto()` may itself resolve to the
                // sharded backend under VF_EXEC_BACKEND=sharded.
                None => s.set_executor(ExecBackend::Serial),
            }
            s.declare_dynamic(
                DynamicDecl::new("B", IndexDomain::d1(n)).initial(DistType::block1d()),
            )
            .unwrap();
            s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d1(n), "B"))
                .unwrap();
            for i in 1..=n as i64 {
                for name in ["B", "A1"] {
                    s.array_mut(name)
                        .unwrap()
                        .set(&Point::d1(i), (i * i) as f64)
                        .unwrap();
                }
            }
            s.take_stats();
            // Fused multi-array DISTRIBUTE, then a single-array one, then a
            // fused class halo exchange — all three channel-backed paths.
            let d1 = s
                .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)))
                .unwrap();
            let d2 = s
                .distribute(DistributeStmt::new("B", DistType::block1d()).notransfer(["A1"]))
                .unwrap();
            let (regions, exec) = s.exchange_class_ghosts("B", &[(1, 1)]).unwrap();
            let ghost_values: Vec<Option<f64>> = (0..p)
                .flat_map(|q| {
                    (1..=n as i64)
                        .map(move |i| (q, i))
                        .collect::<Vec<_>>()
                        .into_iter()
                })
                .map(|(q, i)| regions[0].1.get(vf_dist::ProcId(q), &Point::d1(i)))
                .collect();
            let stats = s.take_stats();
            let dense: Vec<Vec<f64>> = ["B", "A1"]
                .iter()
                .map(|name| s.array(name).unwrap().to_dense())
                .collect();
            (d1, d2, exec, ghost_values, stats, dense)
        };

        let serial = run(None);
        let sharded = run(Some(vf_runtime::ShardedExecutor::new()));

        // Language-level results are bitwise identical.
        assert_eq!(sharded.0, serial.0, "fused DISTRIBUTE reports differ");
        assert_eq!(sharded.1, serial.1, "NOTRANSFER DISTRIBUTE reports differ");
        assert_eq!(sharded.2, serial.2, "ghost exchange reports differ");
        assert_eq!(sharded.3, serial.3, "ghost values differ");
        assert_eq!(sharded.5, serial.5, "gathered array data differs");
        // Modelled charges identical; the sharded run additionally pushed
        // every wire message over a real channel.
        assert_eq!(sharded.4.total_messages(), serial.4.total_messages());
        assert_eq!(sharded.4.total_bytes(), serial.4.total_bytes());
        assert_eq!(serial.4.channel_messages(), 0);
        assert_eq!(
            sharded.4.channel_messages(),
            sharded.4.total_messages(),
            "every modelled wire message crosses a channel"
        );
        assert_eq!(sharded.4.channel_bytes(), sharded.4.total_bytes());
    }

    #[test]
    fn class_ghost_exchange_fuses_to_one_message_per_pair() {
        let p = 4usize;
        let n = 8usize;
        let mut s = scope(p);
        s.declare_dynamic(
            DynamicDecl::new("U", IndexDomain::d2(n, n)).initial(DistType::columns()),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("V", IndexDomain::d2(n, n), "U"))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("W", IndexDomain::d2(n, n), "U"))
            .unwrap();
        for name in ["U", "V", "W"] {
            for point in IndexDomain::d2(n, n).iter() {
                let v = (point.coord(0) * 100 + point.coord(1)) as f64;
                s.array_mut(name).unwrap().set(&point, v).unwrap();
            }
        }
        s.take_stats();
        let widths = [(1, 1), (1, 1)];
        let (regions, exec) = s.exchange_class_ghosts("U", &widths).unwrap();
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0].0, "U");
        // One message per communicating pair for the whole class: the
        // column layout has 2(p-1) face pairs, regardless of class size.
        assert_eq!(exec.messages, 2 * (p - 1));
        let stats = s.take_stats();
        assert_eq!(stats.total_messages(), exec.messages);
        assert_eq!(stats.total_bytes(), exec.bytes);
        // Every member's ghost values are the per-array exchange bitwise.
        for (name, region) in &regions {
            let array = s.array(name).unwrap();
            let t_single = s.machine().tracker();
            let (single, single_report) =
                vf_runtime::ghost::exchange_ghosts(array, &widths, &t_single).unwrap();
            assert_eq!(exec.bytes, 3 * single_report.bytes);
            for proc in array.dist().proc_ids() {
                for point in array.domain().iter() {
                    assert_eq!(
                        region.get(*proc, &point),
                        single.get(*proc, &point),
                        "{name} at {point:?} on {proc:?}"
                    );
                }
            }
        }
        // Replays hit the scope's plan cache (one plan per class member).
        let misses = s.plan_cache().stats().misses;
        s.exchange_class_ghosts("U", &widths).unwrap();
        assert_eq!(s.plan_cache().stats().misses, misses);
        // Non-primaries and unknown names are rejected.
        assert!(matches!(
            s.exchange_class_ghosts("V", &widths),
            Err(CoreError::NotAPrimaryArray { .. })
        ));
        assert!(matches!(
            s.exchange_class_ghosts("ZZZ", &widths),
            Err(CoreError::UnknownArray { .. })
        ));
    }

    #[test]
    fn multi_array_distribute_fuses_across_primaries() {
        let p = 4usize;
        let mut s = scope(p);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(24)).initial(DistType::block1d()))
            .unwrap();
        s.declare_dynamic(DynamicDecl::new("B2", IndexDomain::d1(24)).initial(DistType::block1d()))
            .unwrap();
        for i in 1..=24i64 {
            s.array_mut("B1")
                .unwrap()
                .set(&Point::d1(i), i as f64)
                .unwrap();
            s.array_mut("B2")
                .unwrap()
                .set(&Point::d1(i), -(i as f64))
                .unwrap();
        }
        s.take_stats();
        // DISTRIBUTE B1, B2 :: (CYCLIC(1)) — two primaries, one statement,
        // one message per pair.
        let report = s
            .distribute(DistributeStmt::multi(["B1", "B2"], DistType::cyclic1d(1)))
            .unwrap();
        assert!(report.fused.is_some());
        assert!(report.messages() <= p * (p - 1));
        assert_eq!(report.unfused_messages(), 2 * report.messages());
        assert_eq!(s.stats().total_messages(), report.messages());
        for i in 1..=24i64 {
            assert_eq!(s.array("B1").unwrap().get(&Point::d1(i)).unwrap(), i as f64);
            assert_eq!(
                s.array("B2").unwrap().get(&Point::d1(i)).unwrap(),
                -(i as f64)
            );
        }
    }

    #[test]
    fn indirect_distribute_round_trips_and_fuses_the_class() {
        use std::sync::Arc;
        use vf_dist::IndirectMap;
        let p = 4usize;
        let n = 32usize;
        let mut s = scope(p);
        // RANGE admits BLOCK and any INDIRECT map; an unlisted class is
        // still rejected.
        s.declare_dynamic(
            DynamicDecl::new("B", IndexDomain::d1(n))
                .range([
                    DistPattern::dims(vec![DimPattern::Block]),
                    DistPattern::dims(vec![DimPattern::IndirectAny]),
                ])
                .initial(DistType::block1d()),
        )
        .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(n), "B"))
            .unwrap();
        for i in 1..=n as i64 {
            s.array_mut("B")
                .unwrap()
                .set(&Point::d1(i), i as f64)
                .unwrap();
            s.array_mut("A")
                .unwrap()
                .set(&Point::d1(i), -(i as f64))
                .unwrap();
        }
        assert!(matches!(
            s.distribute(DistributeStmt::new("B", DistType::cyclic1d(1))),
            Err(CoreError::OutsideRange { .. })
        ));

        // BLOCK -> INDIRECT(map1) -> INDIRECT(map2) -> BLOCK, data intact
        // at every stage; the two-array class fuses every stage.
        let map1 = Arc::new(IndirectMap::from_fn(n, |i| (i * 13 + 5) % p).unwrap());
        let map2 = Arc::new(IndirectMap::from_fn(n, |i| (i / 3) % p).unwrap());
        for t in [
            DistType::indirect1d(Arc::clone(&map1)),
            DistType::indirect1d(Arc::clone(&map2)),
            DistType::block1d(),
        ] {
            let report = s.distribute(DistributeStmt::new("B", t.clone())).unwrap();
            assert!(report.fused.is_some(), "class of 2 fuses for {t}");
            assert!(report.messages() <= p * (p - 1));
            assert_eq!(s.current_dist_type("B").unwrap(), t);
            assert_eq!(s.current_dist_type("A").unwrap(), t);
            for i in 1..=n as i64 {
                assert_eq!(s.array("B").unwrap().get(&Point::d1(i)).unwrap(), i as f64);
                assert_eq!(
                    s.array("A").unwrap().get(&Point::d1(i)).unwrap(),
                    -(i as f64)
                );
            }
        }
        // Repeating the same cycle hits the plan cache for every stage.
        let misses_before = s.plan_cache().stats().misses;
        for t in [
            DistType::indirect1d(Arc::clone(&map1)),
            DistType::indirect1d(map2),
            DistType::block1d(),
        ] {
            s.distribute(DistributeStmt::new("B", t)).unwrap();
        }
        let stats = s.plan_cache().stats();
        assert_eq!(stats.misses, misses_before, "second cycle plans nothing");
        assert!(stats.hits >= 6);
    }

    #[test]
    fn notransfer_skips_data_motion_for_named_secondary() {
        let mut s = scope(4);
        s.declare_dynamic(DynamicDecl::new("B", IndexDomain::d1(16)).initial(DistType::block1d()))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(16), "B"))
            .unwrap();
        for i in 1..=16i64 {
            s.array_mut("A").unwrap().set(&Point::d1(i), 1.0).unwrap();
        }
        let report = s
            .distribute(DistributeStmt::new("B", DistType::cyclic1d(1)).notransfer(["A"]))
            .unwrap();
        let a_report = report
            .per_array
            .iter()
            .find(|(n, _)| n == "A")
            .map(|(_, r)| r.clone())
            .unwrap();
        assert_eq!(a_report.moved_elements, 0);
        assert_eq!(a_report.bytes, 0);
        // A's descriptor changed even though the data was not moved.
        assert_eq!(s.current_dist_type("A").unwrap(), DistType::cyclic1d(1));
    }

    #[test]
    fn deferred_first_distribution_allocates() {
        let mut s = scope(2);
        s.declare_dynamic(DynamicDecl::new("B1", IndexDomain::d1(8)))
            .unwrap();
        s.declare_secondary(SecondaryDecl::extraction("A1", IndexDomain::d1(8), "B1"))
            .unwrap();
        assert!(!s.is_distributed("B1"));
        assert!(!s.is_distributed("A1"));
        let report = s
            .distribute(DistributeStmt::new("B1", DistType::block1d()))
            .unwrap();
        assert!(s.is_distributed("B1"));
        assert!(s.is_distributed("A1"));
        assert_eq!(report.moved_elements(), 0);
        assert_eq!(s.descriptor("B1").unwrap().dist_type, DistType::block1d());
    }

    #[test]
    fn idt_checks_current_distribution() {
        let mut s = scope(4);
        s.declare_dynamic(
            DynamicDecl::new("V", IndexDomain::d2(8, 8)).initial(DistType::columns()),
        )
        .unwrap();
        assert!(s
            .idt("V", &DistPattern::exact(&DistType::columns()))
            .unwrap());
        assert!(!s.idt("V", &DistPattern::exact(&DistType::rows())).unwrap());
        assert!(s
            .idt(
                "V",
                &DistPattern::dims(vec![DimPattern::Star, DimPattern::Block])
            )
            .unwrap());
        s.distribute(DistributeStmt::new("V", DistType::rows()))
            .unwrap();
        assert!(s.idt("V", &DistPattern::exact(&DistType::rows())).unwrap());
    }

    #[test]
    fn secondary_with_unknown_or_invalid_primary_rejected() {
        let mut s = scope(2);
        assert!(matches!(
            s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(4), "NOPE")),
            Err(CoreError::UnknownArray { .. })
        ));
        s.declare_static(StaticDecl::new(
            "U",
            IndexDomain::d1(4),
            DistType::block1d(),
        ))
        .unwrap();
        assert!(matches!(
            s.declare_secondary(SecondaryDecl::extraction("A", IndexDomain::d1(4), "U")),
            Err(CoreError::InvalidConnection { .. })
        ));
    }
}
