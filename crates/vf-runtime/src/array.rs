//! Distributed arrays with per-processor local storage.

use crate::{Element, Result, RuntimeError};
use vf_dist::{DistError, Distribution, ProcId};
use vf_index::{IndexDomain, Point};
use vf_machine::CommTracker;

/// A distributed array: the global index domain and distribution, plus one
/// local buffer per processor (the data "owned" by that processor and
/// stored in its local memory, paper §1 and §3.2.1).
///
/// The array offers a *global view* (`get`/`set` by global index, as the
/// Vienna Fortran programmer sees the data) and a *local view* per
/// processor (`local`, `local_mut`, `map_owned`) used by owner-computes
/// execution.  Accesses made *on behalf of* a particular processor that
/// touch non-local elements are charged as messages through
/// [`DistArray::get_for`], mirroring the compiler-inserted communication of
/// the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DistArray<T: Element> {
    name: String,
    dist: Distribution,
    locals: Vec<Vec<T>>,
}

impl<T: Element> DistArray<T> {
    /// Creates an array with all elements set to `T::default()`.
    pub fn new(name: impl Into<String>, dist: Distribution) -> Self {
        let total = dist.procs().array().num_procs();
        let mut locals = vec![Vec::new(); total];
        for &p in dist.proc_ids() {
            locals[p.0] = vec![T::default(); dist.local_size(p)];
        }
        Self {
            name: name.into(),
            dist,
            locals,
        }
    }

    /// Creates an array initialised element-wise from the global index.
    pub fn from_fn(
        name: impl Into<String>,
        dist: Distribution,
        mut f: impl FnMut(&Point) -> T,
    ) -> Self {
        let mut arr = Self::new(name, dist);
        for &p in arr.dist.proc_ids().to_vec().iter() {
            for (l, point) in arr.dist.local_points(p).into_iter().enumerate() {
                arr.locals[p.0][l] = f(&point);
            }
        }
        arr
    }

    /// Creates an array from a dense column-major global buffer.
    pub fn from_dense(name: impl Into<String>, dist: Distribution, data: &[T]) -> Result<Self> {
        if data.len() != dist.domain().size() {
            return Err(RuntimeError::DomainMismatch {
                left: format!("dense buffer of {} elements", data.len()),
                right: dist.domain().to_string(),
            });
        }
        let domain = dist.domain().clone();
        Ok(Self::from_fn(name, dist, |p| {
            data[domain
                .linearize(p)
                .expect("point from local_points is in domain")]
        }))
    }

    /// The array's name (used in diagnostics and descriptors).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current distribution.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// The global index domain.
    pub fn domain(&self) -> &IndexDomain {
        self.dist.domain()
    }

    /// The structural fingerprint of the current distribution — the key
    /// under which communication plans for this array are cached (see
    /// [`crate::plan::PlanCache`]).  Changes whenever `DISTRIBUTE` installs
    /// a different distribution, which is what invalidates cached plans.
    pub fn dist_fingerprint(&self) -> u64 {
        self.dist.fingerprint()
    }

    /// Number of processors in the target processor view.
    pub fn num_procs(&self) -> usize {
        self.dist.num_procs()
    }

    /// Reads the element at global `point` through the global view.
    pub fn get(&self, point: &Point) -> Result<T> {
        let owner = self.dist.owner(point)?;
        let off = self.dist.loc_map(owner, point)?;
        Ok(self.locals[owner.0][off])
    }

    /// Writes the element at global `point` through the global view.  For
    /// replicated arrays every copy is updated.
    pub fn set(&mut self, point: &Point, value: T) -> Result<()> {
        for owner in self.dist.owners(point)? {
            let off = self.dist.loc_map(owner, point)?;
            self.locals[owner.0][off] = value;
        }
        Ok(())
    }

    /// Reads the element at `point` on behalf of processor `proc`.  If the
    /// element is not local to `proc`, a message of `T::BYTES` bytes from
    /// the owner is charged to `tracker` — the compiler-inserted
    /// communication for a non-local reference.
    pub fn get_for(&self, proc: ProcId, point: &Point, tracker: &CommTracker) -> Result<T> {
        let owner = self.dist.owner(point)?;
        let off = self.dist.loc_map(owner, point)?;
        if owner != proc && !self.dist.is_local(proc, point) {
            tracker.send(owner.0, proc.0, T::BYTES);
        }
        Ok(self.locals[owner.0][off])
    }

    /// The local buffer of `proc` (empty for processors outside the target
    /// view).
    pub fn local(&self, proc: ProcId) -> &[T] {
        &self.locals[proc.0]
    }

    /// Mutable access to the local buffer of `proc`.
    pub fn local_mut(&mut self, proc: ProcId) -> &mut [T] {
        &mut self.locals[proc.0]
    }

    /// Applies `f` to every element owned by `proc`, passing the global
    /// index and the current value, and stores the returned value — the
    /// owner-computes rule restricted to one processor.
    pub fn map_owned(&mut self, proc: ProcId, mut f: impl FnMut(&Point, T) -> T) {
        let points = self.dist.local_points(proc);
        for (l, point) in points.into_iter().enumerate() {
            let old = self.locals[proc.0][l];
            self.locals[proc.0][l] = f(&point, old);
        }
    }

    /// Applies `f` to every element of the array under the owner-computes
    /// rule (every owner updates its own elements).
    pub fn map_all_owned(&mut self, mut f: impl FnMut(ProcId, &Point, T) -> T) {
        for &p in self.dist.proc_ids().to_vec().iter() {
            let points = self.dist.local_points(p);
            for (l, point) in points.into_iter().enumerate() {
                let old = self.locals[p.0][l];
                self.locals[p.0][l] = f(p, &point, old);
            }
        }
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: T) {
        for buf in &mut self.locals {
            for v in buf.iter_mut() {
                *v = value;
            }
        }
    }

    /// Copies the array into a dense column-major global buffer — used to
    /// compare distributed results against sequential reference
    /// implementations in tests and experiments.
    pub fn to_dense(&self) -> Vec<T> {
        let domain = self.domain();
        let mut out = vec![T::default(); domain.size()];
        for point in domain.iter() {
            let lin = domain.linearize(&point).expect("point from domain iter");
            out[lin] = self.get(&point).expect("every element has an owner");
        }
        out
    }

    /// All local buffers, indexed by total processor id — the source-buffer
    /// view a [`crate::exec::PlanExecutor`] reads from.
    pub(crate) fn locals(&self) -> &[Vec<T>] {
        &self.locals
    }

    /// Mutable view of all local buffers — the owner-partitioned update
    /// target of [`crate::exec::PlanExecutor::run_updates`].
    pub(crate) fn locals_mut(&mut self) -> &mut [Vec<T>] {
        &mut self.locals
    }

    /// Replaces the distribution and the local buffers in one step — used by
    /// the redistribution engine after it has moved the data.
    pub(crate) fn replace(&mut self, dist: Distribution, locals: Vec<Vec<T>>) {
        debug_assert_eq!(locals.len(), dist.procs().array().num_procs());
        self.dist = dist;
        self.locals = locals;
    }

    /// Copies the canonical first replica's buffer into every other
    /// replica of a replicated array (no-op otherwise) — executors call
    /// this after a plan targeting the canonical owner has run, since
    /// every copy of a replicated array holds the data.
    pub(crate) fn broadcast_canonical(&mut self) {
        if !self.dist.is_replicated() {
            return;
        }
        let procs = self.dist.proc_ids().to_vec();
        let Some((&first, rest)) = procs.split_first() else {
            return;
        };
        let canonical = self.locals[first.0].clone();
        for &p in rest {
            self.locals[p.0].copy_from_slice(&canonical);
        }
    }

    /// Verifies that the local buffer sizes match the distribution's local
    /// layouts — an internal invariant exposed for property tests.
    pub fn check_invariants(&self) -> Result<()> {
        for &p in self.dist.proc_ids() {
            if self.locals[p.0].len() != self.dist.local_size(p) {
                return Err(RuntimeError::Dist(DistError::NoSuchProcessor {
                    proc: p.0,
                    count: self.locals[p.0].len(),
                }));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DimDist, DistType, ProcessorView};
    use vf_machine::CostModel;

    fn block_array(n: usize, p: usize) -> DistArray<f64> {
        let dist = Distribution::new(
            DistType::block1d(),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap();
        DistArray::new("A", dist)
    }

    #[test]
    fn creation_allocates_local_buffers() {
        let a = block_array(10, 3);
        assert_eq!(a.local(ProcId(0)).len(), 4);
        assert_eq!(a.local(ProcId(1)).len(), 4);
        assert_eq!(a.local(ProcId(2)).len(), 2);
        assert_eq!(a.num_procs(), 3);
        a.check_invariants().unwrap();
    }

    #[test]
    fn get_set_round_trip() {
        let mut a = block_array(10, 3);
        for i in 1..=10i64 {
            a.set(&Point::d1(i), i as f64 * 1.5).unwrap();
        }
        for i in 1..=10i64 {
            assert_eq!(a.get(&Point::d1(i)).unwrap(), i as f64 * 1.5);
        }
        assert!(a.get(&Point::d1(11)).is_err());
    }

    #[test]
    fn from_fn_and_to_dense() {
        let dist = Distribution::new(
            DistType::blocks2d(),
            IndexDomain::d2(4, 4),
            ProcessorView::grid2d(2, 2),
        )
        .unwrap();
        let a = DistArray::from_fn("A", dist, |p| (p.coord(0) * 10 + p.coord(1)) as f64);
        let dense = a.to_dense();
        assert_eq!(dense.len(), 16);
        assert_eq!(a.get(&Point::d2(3, 2)).unwrap(), 32.0);
        let lin = a.domain().linearize(&Point::d2(3, 2)).unwrap();
        assert_eq!(dense[lin], 32.0);
    }

    #[test]
    fn from_dense_round_trip() {
        let dist = Distribution::new(
            DistType::cyclic1d(2),
            IndexDomain::d1(9),
            ProcessorView::linear(3),
        )
        .unwrap();
        let data: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let a = DistArray::from_dense("A", dist, &data).unwrap();
        assert_eq!(a.to_dense(), data);
        let bad = Distribution::new(
            DistType::block1d(),
            IndexDomain::d1(5),
            ProcessorView::linear(2),
        )
        .unwrap();
        assert!(DistArray::from_dense("B", bad, &data).is_err());
    }

    #[test]
    fn replicated_set_updates_all_copies() {
        let dist = Distribution::new(
            DistType::new(vec![DimDist::NotDistributed]),
            IndexDomain::d1(4),
            ProcessorView::linear(2),
        )
        .unwrap();
        let mut a: DistArray<i64> = DistArray::new("R", dist);
        a.set(&Point::d1(2), 7).unwrap();
        assert_eq!(a.local(ProcId(0))[1], 7);
        assert_eq!(a.local(ProcId(1))[1], 7);
    }

    #[test]
    fn get_for_charges_messages_only_for_remote_elements() {
        let a = DistArray::from_fn(
            "A",
            Distribution::new(
                DistType::block1d(),
                IndexDomain::d1(8),
                ProcessorView::linear(2),
            )
            .unwrap(),
            |p| p.coord(0) as f64,
        );
        let tracker = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0));
        // Local access: element 1 is owned by P0.
        assert_eq!(a.get_for(ProcId(0), &Point::d1(1), &tracker).unwrap(), 1.0);
        assert_eq!(tracker.snapshot().total_messages(), 0);
        // Remote access: element 8 is owned by P1.
        assert_eq!(a.get_for(ProcId(0), &Point::d1(8), &tracker).unwrap(), 8.0);
        let s = tracker.snapshot();
        assert_eq!(s.total_messages(), 1);
        assert_eq!(s.total_bytes(), 8);
    }

    #[test]
    fn map_owned_applies_owner_computes() {
        let mut a = block_array(6, 2);
        a.map_all_owned(|_, p, _| p.coord(0) as f64);
        a.map_owned(ProcId(1), |_, v| v * 10.0);
        assert_eq!(a.get(&Point::d1(1)).unwrap(), 1.0);
        assert_eq!(a.get(&Point::d1(4)).unwrap(), 40.0);
        assert_eq!(a.get(&Point::d1(6)).unwrap(), 60.0);
    }

    #[test]
    fn fill_sets_every_element() {
        let mut a = block_array(7, 3);
        a.fill(3.25);
        assert!(a.to_dense().iter().all(|&v| v == 3.25));
    }
}
