//! Error type for the runtime layer.

use std::fmt;
use vf_dist::DistError;
use vf_index::IndexError;

/// Errors produced by Vienna Fortran Engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A distribution-layer error.
    Dist(DistError),
    /// An index-domain error.
    Index(IndexError),
    /// Two arrays involved in an operation have different index domains.
    DomainMismatch {
        /// Description of the left operand.
        left: String,
        /// Description of the right operand.
        right: String,
    },
    /// The new distribution passed to `redistribute` targets a different
    /// number of processors than the communication tracker models.
    TrackerMismatch {
        /// Processors known to the tracker.
        tracker_procs: usize,
        /// Processors required by the distribution.
        dist_procs: usize,
    },
    /// Overlap-area planning required a contiguous local layout, but the
    /// named dimension scatters its local elements (cyclic or
    /// alignment-derived layouts).  One-dimensional `INDIRECT` layouts
    /// never reach this error — they route to the irregular
    /// (connectivity-driven) halo planner instead — but an `INDIRECT`
    /// dimension inside a multi-dimensional type still reports it.
    NonContiguousLayout {
        /// Rendering of the distribution involved.
        array: String,
        /// First dimension whose local layout is non-contiguous.
        dim: usize,
    },
    /// A communication plan was executed against an array whose current
    /// distribution differs (by structural fingerprint) from the one the
    /// plan was built for.
    PlanMismatch {
        /// Fingerprint of the distribution the plan was built for.
        expected: u64,
        /// Fingerprint of the array's current distribution.
        found: u64,
    },
    /// A ghost (overlap) access fell outside both the local segment and the
    /// declared overlap width.
    GhostWidthExceeded {
        /// The dimension in which the access overflowed.
        dim: usize,
        /// The declared width in that dimension.
        width: usize,
    },
    /// A set of communication plans could not be fused (or a fused plan was
    /// executed against mismatched inputs).
    FusionMismatch {
        /// What went wrong.
        reason: String,
    },
    /// A fused wire buffer failed checksum validation at unpack and could
    /// not be repaired by retransmission.  The payload is never unpacked
    /// into destination arrays when this is reported.
    CorruptMessage {
        /// Sending processor.
        src: usize,
        /// Receiving processor.
        dst: usize,
        /// Sequence number from the message's wire frame.
        seq: u64,
    },
    /// A split-phase handle was waited on after its results were already
    /// taken (or after an explicit cancel) — the handle no longer holds
    /// pending communication.
    HandleConsumed {
        /// Which handle type was misused.
        handle: &'static str,
    },
    /// A real channel operation of the sharded (distributed-memory)
    /// backend failed: a peer rank died mid-region, a bounded receive
    /// timed out, or a payload arrived truncated.  The region degrades
    /// with this error instead of aborting the process.
    Channel(vf_machine::SpmdError),
    /// A checkpoint file failed validation on restore: torn write, bad
    /// magic, checksum mismatch, truncated segment, or a manifest that
    /// contradicts itself.  Restore falls back to the previous generation
    /// before surfacing this for the whole store.
    CorruptCheckpoint {
        /// Path of the offending checkpoint file (or the store directory
        /// when no generation is usable).
        path: String,
        /// What failed to validate.
        reason: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Dist(e) => write!(f, "distribution error: {e}"),
            RuntimeError::Index(e) => write!(f, "index error: {e}"),
            RuntimeError::DomainMismatch { left, right } => {
                write!(f, "index domains differ: {left} vs {right}")
            }
            RuntimeError::TrackerMismatch {
                tracker_procs,
                dist_procs,
            } => write!(
                f,
                "communication tracker models {tracker_procs} processors but the distribution needs {dist_procs}"
            ),
            RuntimeError::PlanMismatch { expected, found } => write!(
                f,
                "communication plan was built for distribution fingerprint {expected:#x} but the array is now distributed as {found:#x}"
            ),
            RuntimeError::NonContiguousLayout { array, dim } => write!(
                f,
                "ghost planning for {array} requires a contiguous local layout, but dimension {dim} scatters its local elements"
            ),
            RuntimeError::GhostWidthExceeded { dim, width } => write!(
                f,
                "access exceeds the declared overlap width {width} in dimension {dim}"
            ),
            RuntimeError::FusionMismatch { reason } => {
                write!(f, "communication plans cannot be fused: {reason}")
            }
            RuntimeError::CorruptMessage { src, dst, seq } => write!(
                f,
                "wire message {seq} from processor {src} to {dst} failed checksum validation and could not be repaired"
            ),
            RuntimeError::HandleConsumed { handle } => write!(
                f,
                "{handle} was already waited on or cancelled; it holds no pending communication"
            ),
            RuntimeError::Channel(e) => write!(f, "channel failure: {e}"),
            RuntimeError::CorruptCheckpoint { path, reason } => {
                write!(f, "corrupt checkpoint {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Dist(e) => Some(e),
            RuntimeError::Index(e) => Some(e),
            RuntimeError::Channel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vf_machine::SpmdError> for RuntimeError {
    fn from(e: vf_machine::SpmdError) -> Self {
        RuntimeError::Channel(e)
    }
}

impl From<DistError> for RuntimeError {
    fn from(e: DistError) -> Self {
        RuntimeError::Dist(e)
    }
}

impl From<IndexError> for RuntimeError {
    fn from(e: IndexError) -> Self {
        RuntimeError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = DistError::ZeroCyclicWidth.into();
        assert!(e.to_string().contains("CYCLIC"));
        let e: RuntimeError = IndexError::RankTooLarge { requested: 9 }.into();
        assert!(e.to_string().contains("index error"));
        let e = RuntimeError::DomainMismatch {
            left: "[1:4]".into(),
            right: "[1:5]".into(),
        };
        assert!(e.to_string().contains("[1:5]"));
        let e = RuntimeError::NonContiguousLayout {
            array: "V".into(),
            dim: 1,
        };
        assert!(e.to_string().contains("dimension 1"));
        let e = RuntimeError::GhostWidthExceeded { dim: 1, width: 1 };
        assert!(e.to_string().contains("overlap"));
        let e = RuntimeError::TrackerMismatch {
            tracker_procs: 4,
            dist_procs: 8,
        };
        assert!(std::error::Error::source(&e).is_none());
        let e = RuntimeError::CorruptMessage {
            src: 2,
            dst: 5,
            seq: 41,
        };
        let shown = e.to_string();
        assert!(shown.contains("message 41"));
        assert!(shown.contains("from processor 2 to 5"));
        let e = RuntimeError::HandleConsumed {
            handle: "SplitPhaseExchange",
        };
        assert!(e.to_string().contains("SplitPhaseExchange"));
        let e = RuntimeError::CorruptCheckpoint {
            path: "/tmp/ckpt/gen0.vfck".into(),
            reason: "whole-file checksum mismatch".into(),
        };
        let shown = e.to_string();
        assert!(shown.contains("corrupt checkpoint /tmp/ckpt/gen0.vfck"));
        assert!(shown.contains("checksum mismatch"));
    }
}
