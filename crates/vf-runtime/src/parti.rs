//! PARTI-style runtime support for irregular accesses.
//!
//! The paper's §3.2 lists, among the VFE's data-organisation features, "the
//! implementation of irregular accesses via translation tables and
//! sophisticated buffering schemes for accesses to non-local objects, as
//! implemented in the PARTI routines" and notes that the particle motion of
//! the PIC code (Figure 2) requires "runtime code using the
//! inspector/executor paradigm".  This module provides those pieces on top
//! of the unified communication-plan layer ([`crate::plan`]):
//!
//! * [`TranslationTable`] — global index → (owner, local offset),
//! * [`inspector`] — builds a deduplicated [`CommSchedule`] (a gather
//!   [`CommPlan`]) from the non-local accesses each processor intends to
//!   make; [`inspector_cached`] reuses schedules across iterations while
//!   the distribution and access pattern are unchanged,
//! * [`execute_gather`] — replays the plan runs (one `copy_from_slice`
//!   per run, one aggregated message per (owner → reader) pair),
//! * [`execute_scatter`] — pushes updates to owners with a user-supplied
//!   combine function, placement planned through [`crate::plan::plan_scatter`].

use crate::exec::{ExecBackend, FusedPlan, PlanExecutor, SerialExecutor};
use crate::ghost::{
    exchange_ghosts_planned_split, exchange_ghosts_planned_with, GhostRegion, GhostReport,
    SplitGhostExchange,
};
use crate::plan::{
    plan_gather, plan_ghost_irregular, plan_scatter, CommPlan, PlanCache, PlanIndex, PlanKind,
};
use crate::shard::{ShardedArray, ShardedExecutor};
use crate::{DistArray, Element, Result, RuntimeError};
use std::sync::Arc;
use vf_dist::{Connectivity, Distribution, ProcId};
use vf_index::Point;
use vf_machine::{trace, CommTracker};

/// A translation table: for every element (by column-major global offset)
/// the owning processor and the local offset on that owner.
///
/// For regular distributions this information is computable in closed form;
/// the table materialises it so that irregular accesses can be resolved in
/// O(1) per access, exactly as PARTI does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationTable {
    owners: Vec<usize>,
    local_offsets: Vec<usize>,
}

impl TranslationTable {
    /// Builds the table for a distribution (one [`vf_dist::Locator`]
    /// resolution per element — table reads, no per-point searching).
    pub fn build(dist: &Distribution) -> Result<Self> {
        let size = dist.domain().size();
        let locator = dist.locator();
        let mut owners = Vec::with_capacity(size);
        let mut local_offsets = Vec::with_capacity(size);
        for lin in 0..size {
            let (o, l) = locator.locate_lin(lin);
            owners.push(o.0);
            local_offsets.push(l);
        }
        Ok(Self {
            owners,
            local_offsets,
        })
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Owner and local offset of the element with global linear offset
    /// `lin`.
    pub fn lookup(&self, lin: usize) -> (ProcId, usize) {
        (ProcId(self.owners[lin]), self.local_offsets[lin])
    }
}

/// A communication schedule built by the [`inspector`]: a gather
/// [`CommPlan`] recording, for every requesting processor, the elements it
/// must fetch from every owner — deduplicated, sorted and run-length
/// encoded.
#[derive(Debug, Clone)]
pub struct CommSchedule {
    plan: Arc<CommPlan>,
}

impl CommSchedule {
    /// The underlying communication plan.
    pub fn plan(&self) -> &Arc<CommPlan> {
        &self.plan
    }

    /// Number of aggregated messages the schedule will generate.
    pub fn num_messages(&self) -> usize {
        self.plan.num_messages()
    }

    /// Total number of elements that will be fetched.
    pub fn num_elements(&self) -> usize {
        self.plan.moved_elements()
    }

    /// The owners contacted by processor `proc`.
    pub fn owners_for(&self, proc: ProcId) -> Vec<ProcId> {
        self.plan.senders_to(proc)
    }
}

/// The inspector phase: analyses the non-local accesses each processor
/// intends to make and produces a deduplicated [`CommSchedule`].  Local
/// accesses are dropped; repeated accesses to the same element are fetched
/// once (the "buffering scheme" of the PARTI routines).
pub fn inspector(dist: &Distribution, accesses: &[(ProcId, Point)]) -> Result<CommSchedule> {
    let _span = trace::OpenSpan::begin_static(trace::Phase::Plan, "inspector");
    Ok(CommSchedule {
        plan: Arc::new(plan_gather(dist, accesses)?),
    })
}

/// [`inspector`] with schedule reuse: the plan is looked up in `cache` by
/// (distribution fingerprint, access-pattern hash) and rebuilt only on a
/// miss — the PARTI schedule reuse for iterative irregular codes whose
/// access pattern repeats.
pub fn inspector_cached(
    dist: &Distribution,
    accesses: &[(ProcId, Point)],
    cache: &PlanCache,
) -> Result<CommSchedule> {
    Ok(CommSchedule {
        plan: cache.gather_plan(dist, accesses)?,
    })
}

/// A PARTI *incremental schedule*: the halo set of an irregularly
/// distributed array, derived from the access connectivity instead of
/// geometry — processor `p`'s schedule covers every element referenced by
/// something `p` owns but owned elsewhere.  The underlying plan is an
/// ordinary ghost [`CommPlan`] (see
/// [`crate::plan::plan_ghost_irregular`]), so it executes through the
/// ghost executors and caches in the shared [`PlanCache`].
#[derive(Debug, Clone)]
pub struct IncrementalSchedule {
    plan: Arc<CommPlan>,
}

impl IncrementalSchedule {
    /// The underlying ghost communication plan.
    pub fn plan(&self) -> &Arc<CommPlan> {
        &self.plan
    }

    /// Number of aggregated messages one halo exchange will generate.
    pub fn num_messages(&self) -> usize {
        self.plan.num_messages()
    }

    /// Total halo elements, summed over processors.
    pub fn num_elements(&self) -> usize {
        self.plan.moved_elements()
    }

    /// The owners processor `proc` receives halo data from.
    pub fn owners_for(&self, proc: ProcId) -> Vec<ProcId> {
        self.plan.senders_to(proc)
    }
}

/// Builds the incremental schedule of `dist` under the access pattern
/// `conn` — the inspector of the irregular overlap exchange.  Use
/// [`incremental_schedule_cached`] in iterative sweeps.
pub fn incremental_schedule(
    dist: &Distribution,
    conn: &Connectivity,
) -> Result<IncrementalSchedule> {
    let _span = trace::OpenSpan::begin_static(trace::Phase::Plan, "incremental-schedule");
    Ok(IncrementalSchedule {
        plan: Arc::new(plan_ghost_irregular(dist, conn)?),
    })
}

/// [`incremental_schedule`] with schedule reuse: keyed by (distribution
/// fingerprint, connectivity fingerprint), so repeated sweeps replay the
/// cached schedule and a repartitioning (new mapping array → new
/// fingerprint) replans from scratch — stale halos are structurally
/// unreachable, and executing a schedule held across a repartitioning is
/// rejected with [`RuntimeError::PlanMismatch`].
pub fn incremental_schedule_cached(
    dist: &Distribution,
    conn: &Connectivity,
    cache: &PlanCache,
) -> Result<IncrementalSchedule> {
    Ok(IncrementalSchedule {
        plan: cache.ghost_irregular_plan(dist, conn)?,
    })
}

/// The executor half of the incremental schedule with the serial backend —
/// see [`execute_halo_with`].
pub fn execute_halo<T: Element>(
    array: &DistArray<T>,
    schedule: &IncrementalSchedule,
    tracker: &CommTracker,
) -> Result<(GhostRegion<T>, GhostReport)> {
    execute_halo_with(array, schedule, tracker, &SerialExecutor)
}

/// The executor half of the incremental schedule: replays the halo plan
/// through the chosen backend, filling a [`GhostRegion`] addressable by
/// global point exactly like the regular overlap exchange — one aggregated
/// message per (owner → reader) pair.
pub fn execute_halo_with<T: Element, E: PlanExecutor>(
    array: &DistArray<T>,
    schedule: &IncrementalSchedule,
    tracker: &CommTracker,
    executor: &E,
) -> Result<(GhostRegion<T>, GhostReport)> {
    let _span = trace::OpenSpan::begin(trace::Phase::HaloExchange);
    exchange_ghosts_planned_with(array, &schedule.plan, tracker, executor)
}

/// Split-phase variant of [`execute_halo_with`]: packs and posts the halo
/// immediately and returns an in-flight [`SplitGhostExchange`], so the
/// caller can sweep interior nodes (all neighbours same-owner) while the
/// cut-edge halo streams in, then `wait()` and finish the boundary nodes.
pub fn execute_halo_split<'e, T: Element>(
    array: &DistArray<T>,
    schedule: &IncrementalSchedule,
    tracker: &CommTracker,
    backend: &'e ExecBackend,
) -> Result<SplitGhostExchange<'e, T>> {
    exchange_ghosts_planned_split(array, &schedule.plan, tracker, backend)
}

/// The values fetched by [`execute_gather`], addressable by global index
/// through the schedule's slot index.
#[derive(Debug, Clone)]
pub struct GatherResult<T> {
    plan: Arc<CommPlan>,
    values: Vec<Vec<T>>,
}

impl<T> GatherResult<T> {
    /// Assembles a result from a plan and per-processor fetch buffers —
    /// the constructor the channel-backed sharded gather uses.
    pub(crate) fn from_parts(plan: Arc<CommPlan>, values: Vec<Vec<T>>) -> Self {
        Self { plan, values }
    }
}

impl<T: Copy> GatherResult<T> {
    /// The fetched value of `point` on behalf of `proc`, if scheduled.
    pub fn get(&self, proc: ProcId, dist: &Distribution, point: &Point) -> Option<T> {
        let lin = dist.domain().linearize(point).ok()?;
        let slot = self.plan.gather_slot(proc, lin)?;
        self.values.get(proc.0).and_then(|v| v.get(slot)).copied()
    }

    /// Number of fetched elements held for `proc`.
    pub fn len(&self, proc: ProcId) -> usize {
        self.plan.gather_len(proc)
    }

    /// Whether nothing was fetched for `proc`.
    pub fn is_empty(&self, proc: ProcId) -> bool {
        self.len(proc) == 0
    }
}

/// The executor phase for reads with the serial backend — see
/// [`execute_gather_with`].
pub fn execute_gather<T: Element>(
    array: &DistArray<T>,
    schedule: &CommSchedule,
    tracker: &CommTracker,
) -> Result<GatherResult<T>> {
    execute_gather_with(array, schedule, tracker, &SerialExecutor)
}

/// The executor phase for reads: replays the schedule's plan through the
/// chosen [`PlanExecutor`] backend — one `copy_from_slice` per run from
/// the owner's local storage into the requester's gather buffer — posting
/// one aggregated message per (owner → reader) pair before the copies and
/// completing them afterwards.
pub fn execute_gather_with<T: Element, E: PlanExecutor>(
    array: &DistArray<T>,
    schedule: &CommSchedule,
    tracker: &CommTracker,
    executor: &E,
) -> Result<GatherResult<T>> {
    let plan = &schedule.plan;
    if plan.kind() != PlanKind::Gather {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    }
    plan.check_executable(array.dist(), tracker)?;
    let _span = trace::OpenSpan::begin_with(trace::Phase::Gather, || {
        format!("{} elements", plan.moved_elements())
    });
    let dst_sizes: Vec<usize> = (0..plan.total_procs())
        .map(|p| plan.gather_len(ProcId(p)))
        .collect();
    let (values, _exec) = executor.execute(plan, array.locals(), &dst_sizes, tracker, true);
    Ok(GatherResult {
        plan: Arc::clone(plan),
        values,
    })
}

/// The executor phase for reads through the distributed-memory backend:
/// the owner's values travel to each requester over a real
/// [`vf_machine::spmd`] channel as one framed wire message per
/// (owner → reader) pair — the fetch buffers, the modelled charges and
/// the slot addressing are bitwise identical to [`execute_gather_with`],
/// and the real channel traffic is additionally counted in the tracker's
/// channel statistics.
///
/// # Errors
/// As [`execute_gather_with`], plus [`RuntimeError::Channel`] when a
/// rank's channel operation fails mid-region.
pub fn execute_gather_sharded<T: Element>(
    array: &DistArray<T>,
    schedule: &CommSchedule,
    tracker: &CommTracker,
    executor: &ShardedExecutor,
) -> Result<GatherResult<T>> {
    let plan = &schedule.plan;
    if plan.kind() != PlanKind::Gather {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    }
    plan.check_executable(array.dist(), tracker)?;
    let _span = trace::OpenSpan::begin_with(trace::Phase::Gather, || {
        format!("sharded {} elements", plan.moved_elements())
    });
    // Gather schedules are never multi-plan fused (their buffers are
    // access-pattern-specific), but a single plan wears the fused wire
    // layout fine: one transfer per pair means one slice per message.
    let fused = FusedPlan::fuse_one(Arc::clone(plan));
    let shards = ShardedArray::scatter(array);
    // The shared gather charges only the destination's unpack as copy
    // credit (`copy_seconds`), unlike the wire exchanges which also
    // charge the sender's pack — match it exactly.
    let copy_secs = crate::exec::copy_seconds(plan.transfers(), T::BYTES, tracker);
    let (bufs, _) = crate::shard::sharded_fused_exchange(
        &fused,
        tracker,
        executor,
        &[&shards],
        &|_, r| plan.gather_len(ProcId(r)),
        &copy_secs,
    )?;
    let values = bufs.into_iter().next().unwrap_or_default();
    Ok(GatherResult::from_parts(Arc::clone(plan), values))
}

/// The executor phase for writes: each update `(from, point, value)` is
/// applied at the owner of `point` with `combine(current, value)`; updates
/// that cross processors are aggregated into one message per (source →
/// owner) pair.  Placement is planned through
/// [`crate::plan::plan_scatter`]; use [`execute_scatter_cached`] when the
/// same update pattern repeats.  Returns the number of aggregated messages.
pub fn execute_scatter<T: Element>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    tracker: &CommTracker,
    combine: impl FnMut(T, T) -> T,
) -> Result<usize> {
    let sources: Vec<(ProcId, Point)> = updates.iter().map(|&(p, pt, _)| (p, pt)).collect();
    let plan = Arc::new(plan_scatter(array.dist(), &sources)?);
    scatter_planned(array, updates, &plan, tracker, combine)
}

/// [`execute_scatter`] with placement-plan reuse through `cache`.
pub fn execute_scatter_cached<T: Element>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    tracker: &CommTracker,
    cache: &PlanCache,
    combine: impl FnMut(T, T) -> T,
) -> Result<usize> {
    let sources: Vec<(ProcId, Point)> = updates.iter().map(|&(p, pt, _)| (p, pt)).collect();
    let plan = cache.scatter_plan(array.dist(), &sources)?;
    scatter_planned(array, updates, &plan, tracker, combine)
}

/// [`execute_scatter`] with an explicit execution backend: the updates are
/// partitioned *by owner* — the order of updates to one owner is preserved
/// (the combine function is order-sensitive there), while different
/// owners' update lists are independent and run in parallel on a threaded
/// backend.  Results are bitwise identical to the serial path.
///
/// Unlike [`execute_scatter`], the combine function must be `Fn + Sync`
/// (it may run concurrently for different owners).
pub fn execute_scatter_with<T: Element, E: PlanExecutor>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    tracker: &CommTracker,
    executor: &E,
    combine: impl Fn(T, T) -> T + Sync,
) -> Result<usize> {
    let sources: Vec<(ProcId, Point)> = updates.iter().map(|&(p, pt, _)| (p, pt)).collect();
    let plan = Arc::new(plan_scatter(array.dist(), &sources)?);
    scatter_planned_with(array, updates, &plan, tracker, executor, combine)
}

/// [`execute_scatter_with`] with placement-plan reuse through `cache`.
pub fn execute_scatter_cached_with<T: Element, E: PlanExecutor>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    tracker: &CommTracker,
    cache: &PlanCache,
    executor: &E,
    combine: impl Fn(T, T) -> T + Sync,
) -> Result<usize> {
    let sources: Vec<(ProcId, Point)> = updates.iter().map(|&(p, pt, _)| (p, pt)).collect();
    let plan = cache.scatter_plan(array.dist(), &sources)?;
    scatter_planned_with(array, updates, &plan, tracker, executor, combine)
}

fn scatter_planned_with<T: Element, E: PlanExecutor>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    plan: &Arc<CommPlan>,
    tracker: &CommTracker,
    executor: &E,
    combine: impl Fn(T, T) -> T + Sync,
) -> Result<usize> {
    let PlanIndex::Scatter { ops, replicated } = &plan.index else {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    };
    plan.check_executable(array.dist(), tracker)?;
    if ops.len() != updates.len() {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    }
    if *replicated {
        // Replicated targets update every copy from the canonical one — an
        // inherently cross-owner order, kept on the serial path.
        return scatter_planned(array, updates, plan, tracker, combine);
    }
    let _span =
        trace::OpenSpan::begin_with(trace::Phase::Scatter, || format!("{} updates", ops.len()));
    // Partition the updates by owner, preserving program order per owner.
    let total_procs = plan.total_procs();
    let mut per_owner: Vec<Vec<(usize, T)>> = vec![Vec::new(); total_procs];
    for (op, &(_, _, value)) in ops.iter().zip(updates.iter()) {
        per_owner[op.owner.0].push((op.local, value));
    }
    executor.run_updates(array.locals_mut(), &per_owner, &combine);
    let (messages, _) = plan.charge(tracker, T::BYTES, true);
    Ok(messages)
}

fn scatter_planned<T: Element>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    plan: &Arc<CommPlan>,
    tracker: &CommTracker,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<usize> {
    let PlanIndex::Scatter { ops, replicated } = &plan.index else {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    };
    plan.check_executable(array.dist(), tracker)?;
    if ops.len() != updates.len() {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    }
    let replicated = *replicated;
    let _span =
        trace::OpenSpan::begin_with(trace::Phase::Scatter, || format!("{} updates", ops.len()));
    let all_procs: Vec<ProcId> = array.dist().proc_ids().to_vec();
    for (op, (_, _, value)) in ops.iter().zip(updates.iter()) {
        if replicated {
            // Every copy of a replicated array receives the update, as
            // DistArray::set does: the combine runs once against the
            // canonical first copy and its result overwrites every
            // replica (so a stateful combine sees each update exactly
            // once, and replicas can never drift apart).
            let Some((&canonical, _)) = all_procs.split_first() else {
                continue;
            };
            let combined = combine(array.local(canonical)[op.local], *value);
            for &p in &all_procs {
                array.local_mut(p)[op.local] = combined;
            }
        } else {
            let slot = &mut array.local_mut(op.owner)[op.local];
            *slot = combine(*slot, *value);
        }
    }
    let (messages, _) = plan.charge(tracker, T::BYTES, true);
    Ok(messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DistType, ProcessorView};
    use vf_index::IndexDomain;
    use vf_machine::CostModel;

    fn cyclic_array(n: usize, p: usize) -> DistArray<f64> {
        let dist = Distribution::new(
            DistType::cyclic1d(1),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap();
        DistArray::from_fn("X", dist, |pt| pt.coord(0) as f64)
    }

    #[test]
    fn translation_table_matches_distribution() {
        let a = cyclic_array(10, 3);
        let table = TranslationTable::build(a.dist()).unwrap();
        assert_eq!(table.len(), 10);
        assert!(!table.is_empty());
        for point in a.domain().iter() {
            let lin = a.domain().linearize(&point).unwrap();
            let (owner, off) = table.lookup(lin);
            assert_eq!(owner, a.dist().owner(&point).unwrap());
            assert_eq!(off, a.dist().loc_map(owner, &point).unwrap());
        }
    }

    #[test]
    fn inspector_dedups_and_skips_local() {
        let a = cyclic_array(12, 4);
        // P0 wants elements 1 (local), 2 (on P1), 2 again, and 3 (on P2).
        let accesses = vec![
            (ProcId(0), Point::d1(1)),
            (ProcId(0), Point::d1(2)),
            (ProcId(0), Point::d1(2)),
            (ProcId(0), Point::d1(3)),
            (ProcId(3), Point::d1(1)),
        ];
        let schedule = inspector(a.dist(), &accesses).unwrap();
        assert_eq!(schedule.num_elements(), 3);
        assert_eq!(schedule.num_messages(), 3);
        assert_eq!(schedule.owners_for(ProcId(0)), vec![ProcId(1), ProcId(2)]);
        assert_eq!(schedule.owners_for(ProcId(3)), vec![ProcId(0)]);
        assert!(schedule.owners_for(ProcId(1)).is_empty());
    }

    #[test]
    fn sharded_gather_matches_shared_oracle() {
        let a = cyclic_array(24, 4);
        // A spread of cross-processor reads, duplicates included, plus one
        // local read that never leaves its rank.
        let accesses: Vec<(ProcId, Point)> = (0..20)
            .map(|i| (ProcId(i % 4), Point::d1(((i * 7) % 24) as i64 + 1)))
            .collect();
        let schedule = inspector(a.dist(), &accesses).unwrap();

        let oracle_tracker = CommTracker::new(4, CostModel::zero());
        let oracle = execute_gather(&a, &schedule, &oracle_tracker).unwrap();

        let tracker = CommTracker::new(4, CostModel::zero());
        let exec = crate::shard::ShardedExecutor::new();
        let sharded = execute_gather_sharded(&a, &schedule, &tracker, &exec).unwrap();

        for &(p, ref pt) in &accesses {
            assert_eq!(
                sharded.get(p, a.dist(), pt),
                oracle.get(p, a.dist(), pt),
                "gather mismatch for proc {p:?} at {pt:?}"
            );
        }
        let stats = tracker.snapshot();
        let shared = oracle_tracker.snapshot();
        assert_eq!(stats.total_messages(), shared.total_messages());
        assert_eq!(stats.total_bytes(), shared.total_bytes());
        // Every modelled byte crossed a real channel, and nothing else did.
        assert_eq!(stats.channel_messages(), shared.total_messages());
        assert_eq!(stats.channel_bytes(), shared.total_bytes());
    }

    #[test]
    fn gather_fetches_scheduled_values() {
        let a = cyclic_array(12, 4);
        let accesses = vec![
            (ProcId(0), Point::d1(2)),
            (ProcId(0), Point::d1(6)),
            (ProcId(1), Point::d1(12)),
        ];
        let schedule = inspector(a.dist(), &accesses).unwrap();
        let tracker = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let gathered = execute_gather(&a, &schedule, &tracker).unwrap();
        assert_eq!(gathered.get(ProcId(0), a.dist(), &Point::d1(2)), Some(2.0));
        assert_eq!(gathered.get(ProcId(0), a.dist(), &Point::d1(6)), Some(6.0));
        assert_eq!(
            gathered.get(ProcId(1), a.dist(), &Point::d1(12)),
            Some(12.0)
        );
        assert_eq!(gathered.get(ProcId(1), a.dist(), &Point::d1(2)), None);
        assert_eq!(gathered.len(ProcId(0)), 2);
        assert!(gathered.is_empty(ProcId(2)));
        // Elements 2 and 6 both live on P1 → one aggregated message to P0,
        // plus one message P3 → P1 for element 12.
        let stats = tracker.snapshot();
        assert_eq!(stats.total_messages(), 2);
        assert_eq!(stats.total_bytes(), 3 * 8);
    }

    #[test]
    fn scatter_accumulates_at_owner() {
        let mut a = cyclic_array(8, 2);
        let tracker = CommTracker::new(2, CostModel::zero());
        let updates = vec![
            (ProcId(0), Point::d1(2), 10.0), // element 2 owned by P1 → message
            (ProcId(0), Point::d1(1), 5.0),  // local → no message
            (ProcId(1), Point::d1(2), 1.0),  // local → no message
        ];
        let messages = execute_scatter(&mut a, &updates, &tracker, |a, b| a + b).unwrap();
        assert_eq!(messages, 1);
        assert_eq!(a.get(&Point::d1(2)).unwrap(), 2.0 + 10.0 + 1.0);
        assert_eq!(a.get(&Point::d1(1)).unwrap(), 1.0 + 5.0);
        assert_eq!(tracker.snapshot().total_messages(), 1);
    }

    #[test]
    fn scatter_through_executor_matches_serial_with_order_sensitive_combine() {
        use crate::exec::ThreadedExecutor;
        // Repeated updates to the same element through a non-commutative,
        // non-associative combine: only per-owner in-order application
        // gives the serial result, so this fails if a backend reorders
        // within an owner.
        let n = 64usize;
        let p = 4usize;
        let combine = |a: f64, b: f64| a * 0.5 + b;
        let updates: Vec<(ProcId, Point, f64)> = (0..4 * n)
            .map(|k| {
                (
                    ProcId(k % p),
                    Point::d1((k % n) as i64 + 1),
                    (k as f64).sin(),
                )
            })
            .collect();
        let mut serial = cyclic_array(n, p);
        let t1 = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.5));
        let m_serial = execute_scatter(&mut serial, &updates, &t1, combine).unwrap();
        for workers in [2, 3] {
            let mut threaded = cyclic_array(n, p);
            let t2 = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.5));
            let exec = ThreadedExecutor::with_workers(workers).serial_cutoff_bytes(0);
            let m_thr = execute_scatter_with(&mut threaded, &updates, &t2, &exec, combine).unwrap();
            assert_eq!(m_serial, m_thr);
            assert_eq!(serial.to_dense(), threaded.to_dense(), "{workers} workers");
            assert_eq!(t1.snapshot(), t2.snapshot());
        }
        // The cached variant reuses the placement plan.
        let cache = PlanCache::new();
        let mut c1 = cyclic_array(n, p);
        let t3 = CommTracker::new(p, CostModel::zero());
        execute_scatter_cached_with(&mut c1, &updates, &t3, &cache, &SerialExecutor, combine)
            .unwrap();
        execute_scatter_cached_with(&mut c1, &updates, &t3, &cache, &SerialExecutor, combine)
            .unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn scatter_with_replicated_target_falls_back_to_serial_semantics() {
        use crate::exec::ThreadedExecutor;
        let dist = Distribution::new(
            DistType::new(vec![vf_dist::DimDist::NotDistributed]),
            IndexDomain::d1(4),
            ProcessorView::linear(3),
        )
        .unwrap();
        let mut a: DistArray<f64> = DistArray::new("R", dist);
        let tracker = CommTracker::new(3, CostModel::zero());
        let exec = ThreadedExecutor::with_workers(3).serial_cutoff_bytes(0);
        execute_scatter_with(
            &mut a,
            &[
                (ProcId(2), Point::d1(2), 7.0),
                (ProcId(0), Point::d1(2), 1.0),
            ],
            &tracker,
            &exec,
            |x, y| x + y,
        )
        .unwrap();
        for p in 0..3 {
            assert_eq!(a.local(ProcId(p))[1], 8.0, "copy on P{p}");
        }
    }

    #[test]
    fn scatter_updates_every_copy_of_replicated_arrays() {
        let dist = Distribution::new(
            DistType::new(vec![vf_dist::DimDist::NotDistributed]),
            IndexDomain::d1(4),
            ProcessorView::linear(3),
        )
        .unwrap();
        let mut a: DistArray<f64> = DistArray::new("R", dist);
        let tracker = CommTracker::new(3, CostModel::zero());
        execute_scatter(
            &mut a,
            &[(ProcId(2), Point::d1(2), 7.0)],
            &tracker,
            |x, y| x + y,
        )
        .unwrap();
        for p in 0..3 {
            assert_eq!(a.local(ProcId(p))[1], 7.0, "copy on P{p}");
        }
    }

    #[test]
    fn incremental_schedule_agrees_with_the_gather_inspector() {
        use std::sync::Arc as StdArc;
        use vf_dist::{Connectivity, IndirectMap, ProcessorView};
        use vf_index::IndexDomain;
        // A scattered indirect layout under a ring access pattern: the
        // incremental schedule must fetch exactly the elements the gather
        // inspector schedules for the equivalent per-edge reads, with the
        // same per-pair message structure, and the fetched values must
        // agree point for point.
        let n = 12usize;
        let p = 3usize;
        let map = StdArc::new(IndirectMap::from_fn(n, |i| (i * 5 + 1) % p).unwrap());
        let dist = Distribution::new(
            DistType::indirect1d(map),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap();
        let a = DistArray::from_fn("H", dist.clone(), |pt| (pt.coord(0) * 7) as f64);
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for u in 0..n {
            adjncy.push((u + n - 1) % n);
            adjncy.push((u + 1) % n);
            xadj.push(adjncy.len());
        }
        let conn = Connectivity::from_csr(xadj, adjncy).unwrap();
        let schedule = incremental_schedule(&dist, &conn).unwrap();

        // The same reads, expressed as explicit per-edge gather accesses.
        let locator = dist.locator();
        let accesses: Vec<(ProcId, Point)> = (0..n)
            .flat_map(|u| {
                let owner = locator.locate_lin(u).0;
                [(owner, (u + n - 1) % n), (owner, (u + 1) % n)]
            })
            .map(|(o, v)| (o, Point::d1(v as i64 + 1)))
            .collect();
        let gather = inspector(&dist, &accesses).unwrap();
        assert_eq!(schedule.num_elements(), gather.num_elements());
        assert_eq!(schedule.num_messages(), gather.num_messages());
        for q in 0..p {
            assert_eq!(
                schedule.owners_for(ProcId(q)),
                gather.owners_for(ProcId(q)),
                "P{q}"
            );
        }

        let t1 = CommTracker::new(p, CostModel::zero());
        let t2 = CommTracker::new(p, CostModel::zero());
        let (halo, report) = execute_halo(&a, &schedule, &t1).unwrap();
        let fetched = execute_gather(&a, &gather, &t2).unwrap();
        assert_eq!(report.elements, gather.num_elements());
        for (q, point) in &accesses {
            if a.dist().is_local(*q, point) {
                continue;
            }
            assert_eq!(
                halo.get(*q, point),
                fetched.get(*q, a.dist(), point),
                "P{q:?} at {point:?}"
            );
        }
    }

    #[test]
    fn schedule_reuse_costs_the_same_every_time() {
        // The schedule can be reused while the distribution is unchanged —
        // the ablation of DESIGN.md §5 (inspector reuse).
        let a = cyclic_array(16, 4);
        let accesses: Vec<_> = (1..=16).map(|i| (ProcId(0), Point::d1(i))).collect();
        let schedule = inspector(a.dist(), &accesses).unwrap();
        let tracker = CommTracker::new(4, CostModel::zero());
        let g1 = execute_gather(&a, &schedule, &tracker).unwrap();
        let g2 = execute_gather(&a, &schedule, &tracker).unwrap();
        assert_eq!(g1.len(ProcId(0)), g2.len(ProcId(0)));
        assert_eq!(
            tracker.snapshot().total_messages(),
            2 * schedule.num_messages()
        );
    }

    #[test]
    fn cached_inspector_hits_on_repeat_pattern() {
        let a = cyclic_array(16, 4);
        let cache = PlanCache::new();
        let accesses: Vec<_> = (1..=16).map(|i| (ProcId(0), Point::d1(i))).collect();
        let s1 = inspector_cached(a.dist(), &accesses, &cache).unwrap();
        let s2 = inspector_cached(a.dist(), &accesses, &cache).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        // Both handles share one plan.
        assert!(Arc::ptr_eq(s1.plan(), s2.plan()));
        // A different access pattern misses.
        let other: Vec<_> = (1..=8).map(|i| (ProcId(1), Point::d1(i))).collect();
        inspector_cached(a.dist(), &other, &cache).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn gather_runs_are_merged_for_contiguous_requests() {
        // A block distribution with a request for a whole remote block:
        // one run per (owner, reader) pair.
        let dist = Distribution::new(
            DistType::block1d(),
            IndexDomain::d1(16),
            ProcessorView::linear(4),
        )
        .unwrap();
        let a = DistArray::from_fn("B", dist, |pt| pt.coord(0) as f64);
        let accesses: Vec<_> = (5..=8).map(|i| (ProcId(0), Point::d1(i))).collect();
        let schedule = inspector(a.dist(), &accesses).unwrap();
        assert_eq!(schedule.plan().transfers().len(), 1);
        assert_eq!(schedule.plan().transfers()[0].runs.len(), 1);
        assert_eq!(schedule.plan().transfers()[0].elements, 4);
    }
}
