//! PARTI-style runtime support for irregular accesses.
//!
//! The paper's §3.2 lists, among the VFE's data-organisation features, "the
//! implementation of irregular accesses via translation tables and
//! sophisticated buffering schemes for accesses to non-local objects, as
//! implemented in the PARTI routines" and notes that the particle motion of
//! the PIC code (Figure 2) requires "runtime code using the
//! inspector/executor paradigm".  This module provides those pieces:
//!
//! * [`TranslationTable`] — global index → (owner, local offset),
//! * [`inspector`] — builds a deduplicated [`CommSchedule`] from the
//!   non-local accesses each processor intends to make,
//! * [`execute_gather`] — fetches the scheduled elements, one aggregated
//!   message per (owner → reader) pair,
//! * [`execute_scatter`] — pushes updates to owners with a user-supplied
//!   combine function (e.g. accumulation of particle contributions).

use crate::{DistArray, Element, Result};
use std::collections::{BTreeMap, HashMap};
use vf_dist::{Distribution, ProcId};
use vf_index::Point;
use vf_machine::CommTracker;

/// A translation table: for every element (by column-major global offset)
/// the owning processor and the local offset on that owner.
///
/// For regular distributions this information is computable in closed form;
/// the table materialises it so that irregular accesses can be resolved in
/// O(1) per access, exactly as PARTI does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationTable {
    owners: Vec<usize>,
    local_offsets: Vec<usize>,
}

impl TranslationTable {
    /// Builds the table for a distribution.
    pub fn build(dist: &Distribution) -> Result<Self> {
        let size = dist.domain().size();
        let mut owners = Vec::with_capacity(size);
        let mut local_offsets = Vec::with_capacity(size);
        for point in dist.domain().iter() {
            let o = dist.owner(&point)?;
            owners.push(o.0);
            local_offsets.push(dist.loc_map(o, &point)?);
        }
        Ok(Self {
            owners,
            local_offsets,
        })
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Owner and local offset of the element with global linear offset
    /// `lin`.
    pub fn lookup(&self, lin: usize) -> (ProcId, usize) {
        (ProcId(self.owners[lin]), self.local_offsets[lin])
    }
}

/// A communication schedule built by the [`inspector`]: for every requesting
/// processor, the global offsets it must fetch from every owner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommSchedule {
    /// `requests[p]` maps owner → sorted, deduplicated global offsets.
    requests: Vec<BTreeMap<usize, Vec<usize>>>,
}

impl CommSchedule {
    /// Number of aggregated messages the schedule will generate.
    pub fn num_messages(&self) -> usize {
        self.requests.iter().map(|m| m.len()).sum()
    }

    /// Total number of elements that will be fetched.
    pub fn num_elements(&self) -> usize {
        self.requests
            .iter()
            .flat_map(|m| m.values())
            .map(|v| v.len())
            .sum()
    }

    /// The owners contacted by processor `proc`.
    pub fn owners_for(&self, proc: ProcId) -> Vec<ProcId> {
        self.requests
            .get(proc.0)
            .map(|m| m.keys().map(|&o| ProcId(o)).collect())
            .unwrap_or_default()
    }
}

/// The inspector phase: analyses the non-local accesses each processor
/// intends to make and produces a deduplicated [`CommSchedule`].  Local
/// accesses are dropped; repeated accesses to the same element are fetched
/// once (the "buffering scheme" of the PARTI routines).
pub fn inspector(dist: &Distribution, accesses: &[(ProcId, Point)]) -> Result<CommSchedule> {
    let total_procs = dist.procs().array().num_procs();
    let mut requests: Vec<BTreeMap<usize, Vec<usize>>> = vec![BTreeMap::new(); total_procs];
    for (proc, point) in accesses {
        let owner = dist.owner(point)?;
        if owner == *proc || dist.is_local(*proc, point) {
            continue;
        }
        let lin = dist.domain().linearize(point)?;
        requests[proc.0].entry(owner.0).or_default().push(lin);
    }
    for per_proc in &mut requests {
        for offsets in per_proc.values_mut() {
            offsets.sort_unstable();
            offsets.dedup();
        }
    }
    Ok(CommSchedule { requests })
}

/// The values fetched by [`execute_gather`], addressable by global index.
#[derive(Debug, Clone)]
pub struct GatherResult<T> {
    values: Vec<HashMap<usize, T>>,
}

impl<T: Copy> GatherResult<T> {
    /// The fetched value of `point` on behalf of `proc`, if scheduled.
    pub fn get(&self, proc: ProcId, dist: &Distribution, point: &Point) -> Option<T> {
        let lin = dist.domain().linearize(point).ok()?;
        self.values.get(proc.0).and_then(|m| m.get(&lin)).copied()
    }

    /// Number of fetched elements held for `proc`.
    pub fn len(&self, proc: ProcId) -> usize {
        self.values.get(proc.0).map(|m| m.len()).unwrap_or(0)
    }

    /// Whether nothing was fetched for `proc`.
    pub fn is_empty(&self, proc: ProcId) -> bool {
        self.len(proc) == 0
    }
}

/// The executor phase for reads: performs the communication described by a
/// schedule, charging one aggregated message per (owner → reader) pair.
pub fn execute_gather<T: Element>(
    array: &DistArray<T>,
    schedule: &CommSchedule,
    tracker: &CommTracker,
) -> Result<GatherResult<T>> {
    let dist = array.dist();
    let mut values: Vec<HashMap<usize, T>> = vec![HashMap::new(); schedule.requests.len()];
    for (proc, per_owner) in schedule.requests.iter().enumerate() {
        for (&owner, offsets) in per_owner {
            if offsets.is_empty() {
                continue;
            }
            tracker.send(owner, proc, offsets.len() * T::BYTES);
            for &lin in offsets {
                let point = dist.domain().delinearize(lin)?;
                values[proc].insert(lin, array.get(&point)?);
            }
        }
    }
    Ok(GatherResult { values })
}

/// The executor phase for writes: each update `(from, point, value)` is
/// applied at the owner of `point` with `combine(current, value)`; updates
/// that cross processors are aggregated into one message per (source →
/// owner) pair.
pub fn execute_scatter<T: Element>(
    array: &mut DistArray<T>,
    updates: &[(ProcId, Point, T)],
    tracker: &CommTracker,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<usize> {
    let dist = array.dist().clone();
    let mut pair_counts: HashMap<(usize, usize), usize> = HashMap::new();
    for (from, point, value) in updates {
        let owner = dist.owner(point)?;
        if owner != *from {
            *pair_counts.entry((from.0, owner.0)).or_insert(0) += 1;
        }
        let current = array.get(point)?;
        array.set(point, combine(current, *value))?;
    }
    let mut messages = 0;
    for (&(src, dst), &count) in &pair_counts {
        tracker.send(src, dst, count * T::BYTES);
        messages += 1;
    }
    Ok(messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DistType, ProcessorView};
    use vf_index::IndexDomain;
    use vf_machine::CostModel;

    fn cyclic_array(n: usize, p: usize) -> DistArray<f64> {
        let dist = Distribution::new(
            DistType::cyclic1d(1),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap();
        DistArray::from_fn("X", dist, |pt| pt.coord(0) as f64)
    }

    #[test]
    fn translation_table_matches_distribution() {
        let a = cyclic_array(10, 3);
        let table = TranslationTable::build(a.dist()).unwrap();
        assert_eq!(table.len(), 10);
        assert!(!table.is_empty());
        for point in a.domain().iter() {
            let lin = a.domain().linearize(&point).unwrap();
            let (owner, off) = table.lookup(lin);
            assert_eq!(owner, a.dist().owner(&point).unwrap());
            assert_eq!(off, a.dist().loc_map(owner, &point).unwrap());
        }
    }

    #[test]
    fn inspector_dedups_and_skips_local() {
        let a = cyclic_array(12, 4);
        // P0 wants elements 1 (local), 2 (on P1), 2 again, and 3 (on P2).
        let accesses = vec![
            (ProcId(0), Point::d1(1)),
            (ProcId(0), Point::d1(2)),
            (ProcId(0), Point::d1(2)),
            (ProcId(0), Point::d1(3)),
            (ProcId(3), Point::d1(1)),
        ];
        let schedule = inspector(a.dist(), &accesses).unwrap();
        assert_eq!(schedule.num_elements(), 3);
        assert_eq!(schedule.num_messages(), 3);
        assert_eq!(schedule.owners_for(ProcId(0)), vec![ProcId(1), ProcId(2)]);
        assert_eq!(schedule.owners_for(ProcId(3)), vec![ProcId(0)]);
        assert!(schedule.owners_for(ProcId(1)).is_empty());
    }

    #[test]
    fn gather_fetches_scheduled_values() {
        let a = cyclic_array(12, 4);
        let accesses = vec![
            (ProcId(0), Point::d1(2)),
            (ProcId(0), Point::d1(6)),
            (ProcId(1), Point::d1(12)),
        ];
        let schedule = inspector(a.dist(), &accesses).unwrap();
        let tracker = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let gathered = execute_gather(&a, &schedule, &tracker).unwrap();
        assert_eq!(
            gathered.get(ProcId(0), a.dist(), &Point::d1(2)),
            Some(2.0)
        );
        assert_eq!(
            gathered.get(ProcId(0), a.dist(), &Point::d1(6)),
            Some(6.0)
        );
        assert_eq!(
            gathered.get(ProcId(1), a.dist(), &Point::d1(12)),
            Some(12.0)
        );
        assert_eq!(gathered.get(ProcId(1), a.dist(), &Point::d1(2)), None);
        assert_eq!(gathered.len(ProcId(0)), 2);
        assert!(gathered.is_empty(ProcId(2)));
        // Elements 2 and 6 both live on P1 → one aggregated message to P0,
        // plus one message P3 → P1 for element 12.
        let stats = tracker.snapshot();
        assert_eq!(stats.total_messages(), 2);
        assert_eq!(stats.total_bytes(), 3 * 8);
    }

    #[test]
    fn scatter_accumulates_at_owner() {
        let mut a = cyclic_array(8, 2);
        let tracker = CommTracker::new(2, CostModel::zero());
        let updates = vec![
            (ProcId(0), Point::d1(2), 10.0), // element 2 owned by P1 → message
            (ProcId(0), Point::d1(1), 5.0),  // local → no message
            (ProcId(1), Point::d1(2), 1.0),  // local → no message
        ];
        let messages = execute_scatter(&mut a, &updates, &tracker, |a, b| a + b).unwrap();
        assert_eq!(messages, 1);
        assert_eq!(a.get(&Point::d1(2)).unwrap(), 2.0 + 10.0 + 1.0);
        assert_eq!(a.get(&Point::d1(1)).unwrap(), 1.0 + 5.0);
        assert_eq!(tracker.snapshot().total_messages(), 1);
    }

    #[test]
    fn schedule_reuse_costs_the_same_every_time() {
        // The schedule can be reused while the distribution is unchanged —
        // the ablation of DESIGN.md §5 (inspector reuse).
        let a = cyclic_array(16, 4);
        let accesses: Vec<_> = (1..=16)
            .map(|i| (ProcId(0), Point::d1(i)))
            .collect();
        let schedule = inspector(a.dist(), &accesses).unwrap();
        let tracker = CommTracker::new(4, CostModel::zero());
        let g1 = execute_gather(&a, &schedule, &tracker).unwrap();
        let g2 = execute_gather(&a, &schedule, &tracker).unwrap();
        assert_eq!(g1.len(ProcId(0)), g2.len(ProcId(0)));
        assert_eq!(tracker.snapshot().total_messages(), 2 * schedule.num_messages());
    }
}
