//! Global reductions over distributed arrays.
//!
//! The VFE's communication library includes "specialized routines for
//! handling reductions" (paper §3.2).  Reductions are charged to the cost
//! model as tree collectives over the participating processors.

use crate::{DistArray, Element};
use vf_machine::{CollectiveKind, CommTracker};

/// A generic owner-computes reduction: every processor folds its local
/// elements with `fold`, the per-processor partials are combined with
/// `combine`, and the result is made available everywhere (charged as an
/// all-reduce).
pub fn reduce<T: Element, A: Copy>(
    array: &DistArray<T>,
    tracker: &CommTracker,
    init: A,
    mut fold: impl FnMut(A, T) -> A,
    mut combine: impl FnMut(A, A) -> A,
) -> A {
    let mut partials = Vec::with_capacity(array.dist().num_procs());
    for &p in array.dist().proc_ids() {
        let local = array.local(p);
        let mut acc = init;
        for &v in local {
            acc = fold(acc, v);
        }
        tracker.compute(p.0, local.len());
        partials.push(acc);
    }
    tracker.collective(CollectiveKind::AllReduce, std::mem::size_of::<A>());
    partials.into_iter().fold(init, &mut combine)
}

/// Global sum of an `f64` array.
pub fn sum(array: &DistArray<f64>, tracker: &CommTracker) -> f64 {
    reduce(array, tracker, 0.0, |a, v| a + v, |a, b| a + b)
}

/// Global maximum of an `f64` array (`-inf` for an empty array).
pub fn max(array: &DistArray<f64>, tracker: &CommTracker) -> f64 {
    reduce(
        array,
        tracker,
        f64::NEG_INFINITY,
        |a, v| a.max(v),
        |a, b| a.max(b),
    )
}

/// Global minimum of an `f64` array (`+inf` for an empty array).
pub fn min(array: &DistArray<f64>, tracker: &CommTracker) -> f64 {
    reduce(
        array,
        tracker,
        f64::INFINITY,
        |a, v| a.min(v),
        |a, b| a.min(b),
    )
}

/// Euclidean norm of an `f64` array.
pub fn norm2(array: &DistArray<f64>, tracker: &CommTracker) -> f64 {
    reduce(array, tracker, 0.0, |a, v| a + v * v, |a, b| a + b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DistType, Distribution, ProcessorView};
    use vf_index::IndexDomain;
    use vf_machine::CostModel;

    fn arr(n: usize, p: usize) -> DistArray<f64> {
        let dist = Distribution::new(
            DistType::cyclic1d(2),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap();
        DistArray::from_fn("A", dist, |pt| pt.coord(0) as f64)
    }

    #[test]
    fn sum_matches_sequential() {
        let a = arr(100, 4);
        let tracker = CommTracker::new(4, CostModel::zero());
        assert_eq!(sum(&a, &tracker), (1..=100).sum::<i64>() as f64);
    }

    #[test]
    fn max_min_and_norm() {
        let a = arr(10, 3);
        let tracker = CommTracker::new(3, CostModel::zero());
        assert_eq!(max(&a, &tracker), 10.0);
        assert_eq!(min(&a, &tracker), 1.0);
        let expected: f64 = (1..=10).map(|i| (i * i) as f64).sum::<f64>().sqrt();
        assert!((norm2(&a, &tracker) - expected).abs() < 1e-12);
    }

    #[test]
    fn reductions_charge_collectives_and_compute() {
        let a = arr(64, 4);
        let mut cost = CostModel::from_alpha_beta(1.0, 0.0);
        cost.compute_per_flop = 1.0;
        let tracker = CommTracker::new(4, cost);
        let _ = sum(&a, &tracker);
        let s = tracker.snapshot();
        // AllReduce = 2 * log2(4) = 4 messages per processor.
        assert_eq!(s.per_proc()[0].messages_sent, 4);
        // Each processor folded its 16 local elements.
        assert_eq!(s.per_proc()[0].compute_time, 16.0);
    }

    #[test]
    fn generic_reduce_with_custom_combiner() {
        let a = arr(10, 2);
        let tracker = CommTracker::new(2, CostModel::zero());
        // Count elements above 5.
        let count = reduce(
            &a,
            &tracker,
            0usize,
            |acc, v| acc + usize::from(v > 5.0),
            |x, y| x + y,
        );
        assert_eq!(count, 5);
    }
}
