//! Distribution-aware checkpoint/restart.
//!
//! The paper makes distributions first-class, dynamic runtime objects — so
//! a checkpoint is not an opaque memory dump but a *distributed* object:
//! each rank's shard is written as checksummed segments laid out by the
//! distribution's [`local_linear_runs`](Distribution::local_linear_runs),
//! and the file carries a manifest (distribution descriptor, `INDIRECT`
//! maps, step counter, fingerprints) sufficient to rebuild the on-disk
//! distribution from nothing.  Restoring into a *different* live
//! distribution is then just a redistribute from the "file distribution"
//! to the live one through the ordinary [`PlanCache`]/executor stack —
//! the ViPIOS redistribute-on-read idea for Vienna Fortran parallel I/O.
//!
//! # File format (all integers little-endian)
//!
//! ```text
//! magic      8 bytes  "VFCKPT01"
//! step       u64      application step the snapshot was taken at
//! elem_bytes u64      element width (must match the restoring T)
//! name       u64 len + bytes (UTF-8 array name)
//! rank       u64; per dim: lower i64, upper i64 (index-domain bounds)
//! nprocs     u64      processors of the target view (rebuilt linear)
//! per dim    dist descriptor: 0=BLOCK · 1=CYCLIC(k) · 2=GEN_BLOCK(sizes)
//!            · 3=INDIRECT(owners) · 4=":"
//! fingerprint u64     structural fingerprint of the saved distribution
//! per proc   u64 run count; per run: local_start u64, global_start u64,
//!            len u64, checksum u64 (the wire checksum of the run's
//!            elements), payload (len · elem_bytes bytes)
//! trailer    u64      FNV-1a 64 over every preceding byte
//! ```
//!
//! # Torn-write safety and generations
//!
//! A save encodes to a temporary file in the store directory and
//! [`std::fs::rename`]s it into one of **two** generation slots
//! (`gen0.vfck` / `gen1.vfck`), always overwriting the *older* slot.  A
//! crash mid-write therefore leaves at worst a stale temporary plus two
//! intact generations; a corrupt or truncated generation fails validation
//! (magic, structure, per-run checksums, whole-file checksum) and restore
//! falls back to the other generation before reporting
//! [`RuntimeError::CorruptCheckpoint`] for the store.
//!
//! All checkpoint I/O is charged to the tracker
//! ([`CommTracker::record_ckpt_write`] / [`CommTracker::record_ckpt_read`])
//! and wrapped in [`trace::Phase::CkptWrite`] / [`trace::Phase::CkptRead`]
//! spans, so persistence traffic shows up in the drift guard next to
//! communication traffic.
//!
//! # Limitations
//!
//! The processor view is rebuilt as [`ProcessorView::linear`] over the
//! stored processor count; a checkpoint of an array distributed onto a
//! non-trivial processor subset fails the fingerprint cross-check at
//! restore rather than silently rebinding ranks.

use crate::exec::wire_checksum;
use crate::plan::PlanCache;
use crate::redistribute_impl::{redistribute_cached_with, RedistOptions};
use crate::{DistArray, Element, PlanExecutor, Result, RuntimeError};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vf_dist::{DimDist, DistType, Distribution, IndirectMap, ProcId, ProcessorView};
use vf_index::IndexDomain;
use vf_machine::{trace, CommTracker};

const MAGIC: &[u8; 8] = b"VFCKPT01";
const GEN_FILES: [&str; 2] = ["gen0.vfck", "gen1.vfck"];
const TAG_BLOCK: u64 = 0;
const TAG_CYCLIC: u64 = 1;
const TAG_GEN_BLOCK: u64 = 2;
const TAG_INDIRECT: u64 = 3;
const TAG_NOT_DISTRIBUTED: u64 = 4;

/// A two-generation checkpoint store rooted at one directory.
///
/// One store holds the checkpoint history of one array (or one connect
/// class saved as its lead array); concurrent saves to the same directory
/// are not synchronised.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// A checkpoint brought back to life: the rebuilt array and the step it
/// was saved at.
#[derive(Debug)]
pub struct RestoredCheckpoint<T: Element> {
    /// The restored array (under the file distribution, or the live one
    /// after [`CheckpointStore::restore_into`]).
    pub array: DistArray<T>,
    /// The application step recorded in the manifest.
    pub step: u64,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on the first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The two generation slots, oldest-agnostic (slot order is fixed;
    /// which slot is newest depends on the stored step counters).
    pub fn generation_paths(&self) -> [PathBuf; 2] {
        [self.dir.join(GEN_FILES[0]), self.dir.join(GEN_FILES[1])]
    }

    /// The step of the newest restorable generation, if any survives
    /// validation.
    pub fn latest_step(&self) -> Option<u64> {
        self.scan_generations()
            .into_iter()
            .flatten()
            .map(|(step, _)| step)
            .max()
    }

    /// Saves `array` at `step` into the older generation slot
    /// (write-new + atomic rename), charging the written bytes to
    /// `tracker`.  Returns the path of the generation written.
    ///
    /// # Errors
    /// [`RuntimeError::CorruptCheckpoint`] when the store directory or the
    /// file cannot be written (the I/O error is carried in the reason).
    pub fn save<T: Element>(
        &self,
        array: &DistArray<T>,
        step: u64,
        tracker: &CommTracker,
    ) -> Result<PathBuf> {
        let span = trace::OpenSpan::begin_with(trace::Phase::CkptWrite, || {
            format!("{} step {step}", array.name())
        });
        let bytes = encode_checkpoint(array, step);
        let target = self.save_slot();
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            target.file_name().and_then(|n| n.to_str()).unwrap_or("gen")
        ));
        let io = |e: std::io::Error, what: &str| corrupt(&target, format!("{what}: {e}"));
        std::fs::create_dir_all(&self.dir).map_err(|e| io(e, "create store dir"))?;
        std::fs::write(&tmp, &bytes).map_err(|e| io(e, "write temporary"))?;
        std::fs::rename(&tmp, &target).map_err(|e| io(e, "rename into generation"))?;
        tracker.record_ckpt_write(bytes.len());
        span.end();
        Ok(target)
    }

    /// Restores the newest valid generation under its *file* distribution.
    /// A generation that fails validation is skipped in favour of the
    /// previous one.
    ///
    /// # Errors
    /// [`RuntimeError::CorruptCheckpoint`] when no generation validates,
    /// [`RuntimeError::TrackerMismatch`] when the file's processor count
    /// differs from the tracker's.
    pub fn restore<T: Element>(&self, tracker: &CommTracker) -> Result<RestoredCheckpoint<T>> {
        let span = trace::OpenSpan::begin_with(trace::Phase::CkptRead, || {
            format!("restore from {}", self.dir.display())
        });
        // Newest first, falling back across generations only on
        // *corruption* — a structural mismatch against the live machine
        // (wrong element width, wrong processor count) is a caller error
        // every generation shares, so it propagates immediately.
        let mut candidates: Vec<(u64, PathBuf, Vec<u8>)> = self
            .scan_generations()
            .into_iter()
            .flatten()
            .map(|(step, (path, bytes))| (step, path, bytes))
            .collect();
        candidates.sort_by_key(|(step, _, _)| std::cmp::Reverse(*step));
        let mut last_err: Option<RuntimeError> = None;
        for (_, path, bytes) in candidates {
            match decode_checkpoint::<T>(&bytes, &path, tracker) {
                Ok(restored) => {
                    tracker.record_ckpt_read(bytes.len());
                    span.end();
                    return Ok(restored);
                }
                Err(e @ RuntimeError::CorruptCheckpoint { .. }) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            corrupt(
                &self.dir,
                "no restorable checkpoint generation in the store",
            )
        }))
    }

    /// Restores the newest valid generation and redistributes it into the
    /// `live` distribution through `cache`/`executor` — the
    /// redistribute-on-read path.  When the file distribution already
    /// matches `live`, no communication is planned at all.
    ///
    /// # Errors
    /// As [`CheckpointStore::restore`], plus any planning/execution error
    /// of the redistribute.
    pub fn restore_into<T: Element, E: PlanExecutor>(
        &self,
        live: &Distribution,
        tracker: &CommTracker,
        cache: &PlanCache,
        executor: &E,
    ) -> Result<RestoredCheckpoint<T>> {
        let mut restored = self.restore::<T>(tracker)?;
        if !restored.array.dist().same_mapping(live) {
            redistribute_cached_with(
                &mut restored.array,
                live.clone(),
                tracker,
                &RedistOptions::default(),
                cache,
                executor,
            )?;
        }
        Ok(restored)
    }

    /// Reads and structurally validates both generation slots; `None` for
    /// a missing or invalid slot.
    #[allow(clippy::type_complexity)]
    fn scan_generations(&self) -> [Option<(u64, (PathBuf, Vec<u8>))>; 2] {
        self.generation_paths().map(|path| {
            let bytes = std::fs::read(&path).ok()?;
            let step = validate_structure(&bytes, &path).ok()?;
            Some((step, (path, bytes)))
        })
    }

    /// The slot a save overwrites: an empty/invalid slot first, otherwise
    /// the one holding the older generation.
    fn save_slot(&self) -> PathBuf {
        let scans = self.scan_generations();
        let paths = self.generation_paths();
        match (&scans[0], &scans[1]) {
            (None, _) => paths.into_iter().next().expect("two slots"),
            (Some(_), None) => paths.into_iter().nth(1).expect("two slots"),
            (Some((a, _)), Some((b, _))) => {
                let older = if a <= b { 0 } else { 1 };
                paths.into_iter().nth(older).expect("two slots")
            }
        }
    }
}

fn corrupt(path: &Path, reason: impl Into<String>) -> RuntimeError {
    RuntimeError::CorruptCheckpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// FNV-1a 64 — position-sensitive (unlike a plain xor), so truncations,
/// byte swaps and torn tails all change the trailer.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes the whole checkpoint (manifest, per-rank segments, trailer).
fn encode_checkpoint<T: Element>(array: &DistArray<T>, step: u64) -> Vec<u8> {
    let dist = array.dist();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u64(&mut buf, step);
    put_u64(&mut buf, T::BYTES as u64);
    put_u64(&mut buf, array.name().len() as u64);
    buf.extend_from_slice(array.name().as_bytes());
    let domain = dist.domain();
    put_u64(&mut buf, domain.rank() as u64);
    for d in 0..domain.rank() {
        put_i64(&mut buf, domain.dim(d).lower());
        put_i64(&mut buf, domain.dim(d).upper());
    }
    let nprocs = dist.num_procs();
    put_u64(&mut buf, nprocs as u64);
    for dim in dist.dist_type().dims() {
        match dim {
            DimDist::Block => put_u64(&mut buf, TAG_BLOCK),
            DimDist::Cyclic(k) => {
                put_u64(&mut buf, TAG_CYCLIC);
                put_u64(&mut buf, *k as u64);
            }
            DimDist::GenBlock(sizes) => {
                put_u64(&mut buf, TAG_GEN_BLOCK);
                put_u64(&mut buf, sizes.len() as u64);
                for &s in sizes {
                    put_u64(&mut buf, s as u64);
                }
            }
            DimDist::Indirect(map) => {
                put_u64(&mut buf, TAG_INDIRECT);
                put_u64(&mut buf, map.len() as u64);
                for owner in map.owners() {
                    put_u64(&mut buf, owner as u64);
                }
            }
            DimDist::NotDistributed => put_u64(&mut buf, TAG_NOT_DISTRIBUTED),
        }
    }
    put_u64(&mut buf, dist.fingerprint());
    for p in 0..nprocs {
        let runs = dist.local_linear_runs(ProcId(p));
        let local = array.local(ProcId(p));
        put_u64(&mut buf, runs.len() as u64);
        for run in &runs {
            let elems = &local[run.local_start..run.local_start + run.len];
            put_u64(&mut buf, run.local_start as u64);
            put_u64(&mut buf, run.global_start as u64);
            put_u64(&mut buf, run.len as u64);
            put_u64(&mut buf, wire_checksum(elems));
            for e in elems {
                e.write_bytes(&mut buf);
            }
        }
    }
    let trailer = fnv1a(&buf);
    put_u64(&mut buf, trailer);
    buf
}

/// A little-endian cursor over a checkpoint file that turns every overrun
/// into a structured corruption error.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(self.path, format!("truncated while reading {what}")))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self, what: &str, limit: usize) -> Result<usize> {
        let v = self.u64(what)?;
        if v > limit as u64 {
            return Err(corrupt(
                self.path,
                format!("{what} {v} exceeds the sanity bound {limit}"),
            ));
        }
        Ok(v as usize)
    }
}

/// The decoded manifest: everything before the per-rank segments.
struct Manifest {
    step: u64,
    elem_bytes: usize,
    name: String,
    bounds: Vec<(i64, i64)>,
    nprocs: usize,
    dims: Vec<DimDist>,
    fingerprint: u64,
}

/// Parses manifest fields and leaves the reader positioned at the first
/// per-rank segment.
fn parse_manifest<'a>(reader: &mut Reader<'a>) -> Result<Manifest> {
    let path = reader.path;
    let magic = reader.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(corrupt(path, "bad magic (not a VFCKPT01 file)"));
    }
    let step = reader.u64("step")?;
    let elem_bytes = reader.usize("element width", 64)?;
    if elem_bytes == 0 {
        return Err(corrupt(path, "element width 0"));
    }
    let name_len = reader.usize("name length", 4096)?;
    let name = std::str::from_utf8(reader.take(name_len, "name")?)
        .map_err(|_| corrupt(path, "array name is not UTF-8"))?
        .to_string();
    let rank = reader.usize("domain rank", 16)?;
    if rank == 0 {
        return Err(corrupt(path, "domain rank 0"));
    }
    let mut bounds = Vec::with_capacity(rank);
    for _ in 0..rank {
        let lower = reader.i64("domain lower bound")?;
        let upper = reader.i64("domain upper bound")?;
        bounds.push((lower, upper));
    }
    let nprocs = reader.usize("processor count", 1 << 20)?;
    if nprocs == 0 {
        return Err(corrupt(path, "processor count 0"));
    }
    let mut dims = Vec::with_capacity(rank);
    for d in 0..rank {
        let tag = reader.u64("distribution tag")?;
        let dim = match tag {
            TAG_BLOCK => DimDist::block(),
            TAG_CYCLIC => DimDist::cyclic_k(reader.usize("cyclic width", 1 << 32)?),
            TAG_GEN_BLOCK => {
                let count = reader.usize("general-block count", 1 << 20)?;
                let mut sizes = Vec::with_capacity(count);
                for _ in 0..count {
                    sizes.push(reader.usize("general-block size", 1 << 40)?);
                }
                DimDist::gen_block(sizes)
            }
            TAG_INDIRECT => {
                let count = reader.usize("indirect map length", 1 << 32)?;
                let mut owners = Vec::with_capacity(count);
                for _ in 0..count {
                    owners.push(reader.usize("indirect owner", 1 << 20)?);
                }
                DimDist::indirect(Arc::new(
                    IndirectMap::new(owners)
                        .map_err(|e| corrupt(path, format!("invalid indirect map: {e}")))?,
                ))
            }
            TAG_NOT_DISTRIBUTED => DimDist::not_distributed(),
            other => {
                return Err(corrupt(
                    path,
                    format!("unknown distribution tag {other} in dimension {d}"),
                ))
            }
        };
        dims.push(dim);
    }
    let fingerprint = reader.u64("distribution fingerprint")?;
    Ok(Manifest {
        step,
        elem_bytes,
        name,
        bounds,
        nprocs,
        dims,
        fingerprint,
    })
}

/// Validates everything that does not need the element type: trailer
/// checksum, magic, manifest structure and segment framing.  Returns the
/// manifest step.
fn validate_structure(bytes: &[u8], path: &Path) -> Result<u64> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(corrupt(path, "file shorter than magic + trailer"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte slice"));
    if fnv1a(body) != stored {
        return Err(corrupt(path, "whole-file checksum mismatch (torn write?)"));
    }
    let mut reader = Reader {
        bytes: body,
        pos: 0,
        path,
    };
    let manifest = parse_manifest(&mut reader)?;
    for p in 0..manifest.nprocs {
        let run_count = reader.usize("segment run count", 1 << 32)?;
        for _ in 0..run_count {
            let _local_start = reader.u64("run local start")?;
            let _global_start = reader.u64("run global start")?;
            let len = reader.usize("run length", 1 << 40)?;
            let _checksum = reader.u64("run checksum")?;
            reader.take(len * manifest.elem_bytes, "run payload")?;
        }
        let _ = p;
    }
    if reader.pos != body.len() {
        return Err(corrupt(
            path,
            format!(
                "{} trailing bytes after the last segment",
                body.len() - reader.pos
            ),
        ));
    }
    Ok(manifest.step)
}

/// Rebuilds the distribution described by a manifest (linear processor
/// view; the fingerprint cross-check catches anything the descriptor
/// cannot represent).
fn rebuild_distribution(manifest: &Manifest, path: &Path) -> Result<Distribution> {
    let domain = IndexDomain::of_bounds(&manifest.bounds)
        .map_err(|e| corrupt(path, format!("invalid stored domain: {e}")))?;
    let dist = Distribution::new(
        DistType::new(manifest.dims.clone()),
        domain,
        ProcessorView::linear(manifest.nprocs),
    )
    .map_err(|e| corrupt(path, format!("stored distribution does not rebuild: {e}")))?;
    if dist.fingerprint() != manifest.fingerprint {
        return Err(corrupt(
            path,
            format!(
                "rebuilt distribution fingerprint {:#x} differs from stored {:#x} \
                 (non-linear processor view, or a corrupted descriptor)",
                dist.fingerprint(),
                manifest.fingerprint
            ),
        ));
    }
    Ok(dist)
}

/// Fully decodes one validated generation into a typed array.
fn decode_checkpoint<T: Element>(
    bytes: &[u8],
    path: &Path,
    tracker: &CommTracker,
) -> Result<RestoredCheckpoint<T>> {
    validate_structure(bytes, path)?;
    let body = &bytes[..bytes.len() - 8];
    let mut reader = Reader {
        bytes: body,
        pos: 0,
        path,
    };
    let manifest = parse_manifest(&mut reader)?;
    if manifest.elem_bytes != T::BYTES {
        return Err(corrupt(
            path,
            format!(
                "element width mismatch: file has {}-byte elements, restoring {}-byte",
                manifest.elem_bytes,
                T::BYTES
            ),
        ));
    }
    if manifest.nprocs != tracker.num_procs() {
        return Err(RuntimeError::TrackerMismatch {
            tracker_procs: tracker.num_procs(),
            dist_procs: manifest.nprocs,
        });
    }
    let dist = rebuild_distribution(&manifest, path)?;
    let mut array = DistArray::<T>::new(manifest.name.clone(), dist.clone());
    for p in 0..manifest.nprocs {
        let expected = dist.local_linear_runs(ProcId(p));
        let run_count = reader.usize("segment run count", 1 << 32)?;
        if run_count != expected.len() {
            return Err(corrupt(
                path,
                format!(
                    "rank {p} has {run_count} stored runs but the distribution lays out {}",
                    expected.len()
                ),
            ));
        }
        let local = &mut array.locals_mut()[p];
        for run in &expected {
            let local_start = reader.usize("run local start", 1 << 40)?;
            let global_start = reader.usize("run global start", 1 << 40)?;
            let len = reader.usize("run length", 1 << 40)?;
            if (local_start, global_start, len) != (run.local_start, run.global_start, run.len) {
                return Err(corrupt(
                    path,
                    format!(
                        "rank {p} segment ({local_start}, {global_start}, {len}) does not match \
                         the distribution's run ({}, {}, {})",
                        run.local_start, run.global_start, run.len
                    ),
                ));
            }
            let checksum = reader.u64("run checksum")?;
            let payload = reader.take(len * T::BYTES, "run payload")?;
            let elems: Vec<T> = crate::decode_slice(payload);
            if wire_checksum(&elems) != checksum {
                return Err(corrupt(
                    path,
                    format!("rank {p} segment at local offset {local_start} fails its checksum"),
                ));
            }
            local[local_start..local_start + len].copy_from_slice(&elems);
        }
    }
    array.broadcast_canonical();
    Ok(RestoredCheckpoint {
        array,
        step: manifest.step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_machine::CostModel;

    fn store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("vf_ckpt_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir)
    }

    fn dist_1d(t: DistType, n: usize, p: usize) -> Distribution {
        Distribution::new(t, IndexDomain::d1(n), ProcessorView::linear(p)).unwrap()
    }

    #[test]
    fn save_restore_round_trips_bitwise() {
        let store = store("roundtrip");
        let dist = dist_1d(DistType::block1d(), 23, 4);
        let data: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
        let array = DistArray::from_dense("A", dist, &data).unwrap();
        let tracker = CommTracker::new(4, CostModel::zero());
        let path = store.save(&array, 7, &tracker).unwrap();
        assert!(path.ends_with(GEN_FILES[0]));
        assert_eq!(store.latest_step(), Some(7));
        let restored = store.restore::<f64>(&tracker).unwrap();
        assert_eq!(restored.step, 7);
        assert_eq!(restored.array.name(), "A");
        assert_eq!(restored.array.to_dense(), data);
        assert!(restored.array.dist().same_mapping(array.dist()));
        // Every byte written is read back, and the counters say so.
        let stats = tracker.snapshot();
        assert!(stats.ckpt_bytes_written() > 23 * 8);
        assert_eq!(stats.ckpt_bytes_read(), stats.ckpt_bytes_written());
    }

    #[test]
    fn generations_rotate_and_fall_back() {
        let store = store("generations");
        let dist = dist_1d(DistType::block1d(), 16, 2);
        let tracker = CommTracker::new(2, CostModel::zero());
        let mk = |v: f64| DistArray::from_dense("G", dist.clone(), &[v; 16]).unwrap();
        let p0 = store.save(&mk(1.0), 1, &tracker).unwrap();
        let p1 = store.save(&mk(2.0), 2, &tracker).unwrap();
        assert_ne!(p0, p1, "second save must land in the other slot");
        let p2 = store.save(&mk(3.0), 3, &tracker).unwrap();
        assert_eq!(p2, p0, "third save overwrites the oldest generation");
        assert_eq!(store.latest_step(), Some(3));
        // Corrupt the newest generation: restore falls back to step 2.
        let mut bytes = std::fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&p2, &bytes).unwrap();
        let restored = store.restore::<f64>(&tracker).unwrap();
        assert_eq!(restored.step, 2);
        assert_eq!(restored.array.to_dense(), vec![2.0; 16]);
        // Corrupt the survivor too: the store reports corruption.
        let mut bytes = std::fs::read(&p1).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&p1, &bytes).unwrap();
        match store.restore::<f64>(&tracker) {
            Err(RuntimeError::CorruptCheckpoint { .. }) => {}
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn restore_into_redistributes_to_the_live_distribution() {
        let store = store("redist");
        let n = 31;
        let data: Vec<f64> = (0..n).map(|i| (i * i) as f64 * 0.25).collect();
        let file_dist = dist_1d(DistType::block1d(), n, 4);
        let live = dist_1d(DistType::cyclic1d(1), n, 4);
        let array = DistArray::from_dense("R", file_dist, &data).unwrap();
        let tracker = CommTracker::new(4, CostModel::zero());
        store.save(&array, 5, &tracker).unwrap();
        let cache = PlanCache::new();
        let restored = store
            .restore_into::<f64, _>(&live, &tracker, &cache, &crate::SerialExecutor)
            .unwrap();
        assert_eq!(restored.step, 5);
        assert!(restored.array.dist().same_mapping(&live));
        assert_eq!(restored.array.to_dense(), data);
    }

    #[test]
    fn indirect_distribution_round_trips() {
        let n = 24;
        let owners: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % 3).collect();
        let map = Arc::new(IndirectMap::new(owners).unwrap());
        let dist = dist_1d(DistType::new(vec![DimDist::indirect(map)]), n, 3);
        let data: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let array = DistArray::from_dense("I", dist, &data).unwrap();
        let store = store("indirect");
        let tracker = CommTracker::new(3, CostModel::zero());
        store.save(&array, 11, &tracker).unwrap();
        // Same-distribution restore is bitwise.
        let restored = store.restore::<f64>(&tracker).unwrap();
        assert_eq!(restored.array.to_dense(), data);
        assert!(restored.array.dist().same_mapping(array.dist()));
        // INDIRECT → BLOCK redistribute-on-read is bitwise too.
        let live = dist_1d(DistType::block1d(), n, 3);
        let cache = PlanCache::new();
        let re = store
            .restore_into::<f64, _>(&live, &tracker, &cache, &crate::SerialExecutor)
            .unwrap();
        assert_eq!(re.array.to_dense(), data);
    }

    #[test]
    fn wrong_element_width_and_procs_are_structural_errors() {
        let store = store("structural");
        let dist = dist_1d(DistType::block1d(), 8, 2);
        let array = DistArray::from_dense("S", dist, &[0.5f64; 8]).unwrap();
        let tracker = CommTracker::new(2, CostModel::zero());
        store.save(&array, 1, &tracker).unwrap();
        match store.restore::<f32>(&tracker) {
            Err(RuntimeError::CorruptCheckpoint { reason, .. }) => {
                assert!(reason.contains("element width mismatch"))
            }
            other => panic!("expected width mismatch, got {other:?}"),
        }
        let narrow = CommTracker::new(3, CostModel::zero());
        match store.restore::<f64>(&narrow) {
            Err(RuntimeError::TrackerMismatch {
                tracker_procs: 3,
                dist_procs: 2,
            }) => {}
            other => panic!("expected TrackerMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_store_reports_corruption() {
        let store = store("empty");
        let tracker = CommTracker::new(2, CostModel::zero());
        match store.restore::<f64>(&tracker) {
            Err(RuntimeError::CorruptCheckpoint { reason, .. }) => {
                assert!(reason.contains("no restorable"))
            }
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
        assert_eq!(store.latest_step(), None);
    }
}
