//! The unified communication-plan layer of the Vienna Fortran Engine.
//!
//! The paper's §3.2 lists the VFE's data-organisation features — the
//! executable `DISTRIBUTE` statement (§3.2.2), overlap-area maintenance for
//! regular stencils, and "the implementation of irregular accesses via
//! translation tables and sophisticated buffering schemes … as implemented
//! in the PARTI routines" (Saltz et al.).  All three reduce to the same
//! primitive: a *communication schedule* describing, for every
//! (sender → receiver) pair, which elements move.  This module materialises
//! that primitive once, as [`CommPlan`], and the three communication paths
//! ([`crate::redistribute`], [`crate::ghost`], [`crate::parti`]) all build
//! and execute their traffic through it:
//!
//! * a plan stores per-pair [`Transfer`]s as **run-length-encoded**
//!   [`PlanRun`]s of contiguous local offsets (`BLOCK`-family layouts
//!   collapse to a handful of runs per pair, instead of the per-point hash
//!   maps the paths previously rebuilt on every call);
//! * planning is separated from execution, exactly as in PARTI's
//!   inspector/executor split: [`plan_redistribute`], [`plan_ghost`],
//!   [`plan_gather`] and [`plan_scatter`] are the inspectors, the
//!   `execute_*`/`exchange_*` functions of the client modules are the
//!   executors (a single pass over the runs with one aggregated
//!   [`CommTracker`] charge per message);
//! * plans are cached in a [`PlanCache`] keyed by the *structural
//!   fingerprints* of the distributions involved
//!   ([`vf_dist::Distribution::fingerprint`]), so iterative codes — the ADI
//!   sweeps of Figure 1, smoothing steps, PIC time steps — pay the
//!   inspector cost once and reuse the schedule while the distribution is
//!   unchanged, which is precisely the schedule reuse the paper cites the
//!   PARTI routines for.  A changed distribution changes the fingerprint
//!   and therefore the key: stale plans are never returned, and execution
//!   re-validates the distribution fingerprint as a second line of
//!   defence.  Gather/scatter keys additionally hash the access list;
//!   like the fingerprint itself, a 64-bit hash collision (~2⁻⁶⁴ per
//!   pair) would silently reuse the colliding pattern's plan — the
//!   accepted price of O(1) keys, as documented on
//!   [`vf_dist::Distribution::fingerprint`].

use crate::translation::{self, DistTranslationTable};
use crate::{Result, RuntimeError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};
use vf_dist::{Connectivity, Distribution, Locator, ProcId};
use vf_index::{DimRange, IndexDomain, Point};
use vf_machine::{trace, CommTracker};

/// Session-local translation-table state of one planning run: which pages
/// each requester has fetched *during this session*, the lookup counters,
/// and the page-fetch messages generated.
struct TableSession {
    table: Arc<DistTranslationTable>,
    /// `seen[requester][page]`: fetched (or home) during this session.
    seen: Vec<Vec<bool>>,
    stats: translation::TranslationStats,
    /// Page-fetch messages `(home, requester, bytes)` of this session.
    fetches: Vec<(usize, usize, usize)>,
}

/// How a planner resolves global offsets to `(owner, local offset)`.
///
/// Regular distributions resolve in closed form through a
/// [`vf_dist::Locator`].  `INDIRECT` distributions have no closed form —
/// their ownership lives in a mapping array too large to replicate — so
/// they resolve through the distributed translation table
/// ([`crate::translation`]): each lookup is made *on behalf of* the
/// requesting processor, walking that processor's cached-page path and
/// recording the directory page fetches a real PARTI run would perform.
/// Both paths return identical results; only the modelled directory
/// traffic differs.
///
/// The page-cache warmth is **session-local** (this resolver's `seen`
/// table, no locks on the per-element path): independent plannings of the
/// same distribution each model a cold directory, and the session's fetch
/// messages are handed to the built [`CommPlan`] by
/// [`OwnerResolver::finish`], to be charged once at the plan's first
/// execution.
enum OwnerResolver<'a> {
    Direct(Locator<'a>),
    Table(Box<TableSession>),
}

impl<'a> OwnerResolver<'a> {
    fn for_dist(dist: &'a Distribution) -> Self {
        if dist.dist_type().has_indirect() {
            let table = translation::table_for(dist);
            let total_procs = dist.procs().array().num_procs();
            let num_pages = table.num_pages();
            OwnerResolver::Table(Box::new(TableSession {
                table,
                seen: vec![vec![false; num_pages]; total_procs],
                stats: translation::TranslationStats::default(),
                fetches: Vec::new(),
            }))
        } else {
            OwnerResolver::Direct(dist.locator())
        }
    }

    /// Owner and owner-local offset of global offset `lin`, resolved on
    /// behalf of `requester`.
    fn locate_from(&mut self, requester: ProcId, lin: usize) -> (ProcId, usize) {
        match self {
            OwnerResolver::Direct(locator) => locator.locate_lin(lin),
            OwnerResolver::Table(session) => {
                let table = &session.table;
                let page = table.page_of(lin);
                let seen = &mut session.seen[requester.0];
                if seen[page] {
                    if table.home_of_page(page) == requester {
                        session.stats.home_hits += 1;
                    } else {
                        session.stats.cache_hits += 1;
                    }
                } else {
                    seen[page] = true;
                    if table.home_of_page(page) == requester {
                        session.stats.home_hits += 1;
                    } else {
                        let bytes = table.page_bytes(page);
                        session.stats.page_fetches += 1;
                        session.stats.fetched_bytes += bytes;
                        session
                            .fetches
                            .push((table.home_of_page(page).0, requester.0, bytes));
                    }
                }
                table.lookup(lin)
            }
        }
    }

    /// Ends the session: merges the lookup counters into the table's
    /// cumulative stats (one lock) and returns the directory page-fetch
    /// messages for the built plan to carry.
    fn finish(self) -> Vec<(usize, usize, usize)> {
        match self {
            OwnerResolver::Direct(_) => Vec::new(),
            OwnerResolver::Table(session) => {
                session.table.absorb_stats(session.stats);
                session.fetches
            }
        }
    }
}

/// One run-length-encoded transfer segment: `len` elements read from
/// contiguous source offsets `src_start..src_start+len` and written to
/// contiguous destination offsets `dst_start..dst_start+len`.
///
/// The meaning of the offsets depends on the plan kind: sender-local /
/// receiver-local storage offsets for redistribution, sender-local storage
/// offsets / ghost-buffer slots for overlap exchange, owner-local storage
/// offsets / gather-buffer slots for PARTI gathers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRun {
    /// First source offset of the run.
    pub src_start: usize,
    /// First destination offset of the run.
    pub dst_start: usize,
    /// Number of elements in the run.
    pub len: usize,
}

/// All traffic from one sender to one receiver: the element count and the
/// run list.  `src == dst` transfers are local copies and are never charged
/// to the cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Sending processor.
    pub src: ProcId,
    /// Receiving processor.
    pub dst: ProcId,
    /// Total elements moved by this transfer.
    pub elements: usize,
    /// The run-length-encoded element list.
    pub runs: Vec<PlanRun>,
}

/// What a communication plan describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Data motion of the executable `DISTRIBUTE` statement (§3.2.2).
    Redistribute,
    /// Overlap-area (ghost) exchange for regular stencils (§3.1/§3.2).
    Ghost,
    /// PARTI-style gather of scheduled non-local reads (§3.2, item 1).
    Gather,
    /// PARTI-style scatter of non-local updates (§3.2, item 1).
    Scatter,
}

/// Per-receiver slot index of a ghost plan: which buffer slot each global
/// point occupies.
#[derive(Debug)]
pub(crate) struct GhostSlots {
    pub(crate) slot_of_point: HashMap<Point, usize>,
    pub(crate) count: usize,
}

/// Per-requester slot index of a gather plan.
#[derive(Debug)]
pub(crate) struct GatherSlots {
    pub(crate) slot_of_lin: HashMap<usize, usize>,
    pub(crate) count: usize,
}

/// One scatter update resolved against the distribution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScatterOp {
    pub(crate) owner: ProcId,
    pub(crate) local: usize,
}

/// Kind-specific companion data of a plan.
#[derive(Debug)]
pub(crate) enum PlanIndex {
    Redistribute {
        /// The target distribution (used to size the new local buffers).
        new_dist: Distribution,
    },
    Ghost {
        /// Per total-processor-id ghost slot index.
        slots: Vec<GhostSlots>,
    },
    Gather {
        /// Per total-processor-id gather slot index.
        slots: Vec<GatherSlots>,
    },
    Scatter {
        /// One op per planned update, in the order the updates were given.
        ops: Vec<ScatterOp>,
        /// Whether the target array is replicated (updates touch all
        /// copies).
        replicated: bool,
    },
}

/// A communication plan: the run-length-encoded schedule of one
/// redistribution, ghost exchange, gather or scatter, independent of the
/// element type.  Built once by a planner, executed any number of times
/// while the involved distributions are unchanged (validated through their
/// fingerprints).
#[derive(Debug)]
pub struct CommPlan {
    kind: PlanKind,
    /// Fingerprint of the distribution the data currently lives in.
    src_fingerprint: u64,
    /// Fingerprint of the target distribution (redistribution) or of the
    /// source distribution again (ghost/gather/scatter).
    dst_fingerprint: u64,
    /// Total processors of the declaring processor array (sizes the
    /// per-processor vectors of executors).
    total_procs: usize,
    /// Highest processor id touched plus one (tracker validation).
    needed_procs: usize,
    transfers: Vec<Transfer>,
    moved_elements: usize,
    stayed_elements: usize,
    /// Translation-table page-fetch messages `(home, requester, bytes)`
    /// generated while inspecting an indirect distribution; drained and
    /// charged at the plan's first execution ([`CommPlan::charge`] or an
    /// executor), so cached re-executions generate no directory traffic.
    directory: Mutex<Vec<(usize, usize, usize)>>,
    pub(crate) index: PlanIndex,
}

impl CommPlan {
    /// What the plan describes.
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// Fingerprint of the distribution the data must currently live in for
    /// the plan to be executable.
    pub fn src_fingerprint(&self) -> u64 {
        self.src_fingerprint
    }

    /// Fingerprint of the target distribution (equals
    /// [`CommPlan::src_fingerprint`] for ghost/gather/scatter plans).
    pub fn dst_fingerprint(&self) -> u64 {
        self.dst_fingerprint
    }

    /// The per-pair transfers, local copies included.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Number of aggregated messages the plan generates when executed
    /// (transfers that cross processors and carry at least one element).
    pub fn num_messages(&self) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.src != t.dst && t.elements > 0)
            .count()
    }

    /// Elements that cross processors when the plan executes.
    pub fn moved_elements(&self) -> usize {
        self.moved_elements
    }

    /// Elements that stay on their processor (redistribution only; zero for
    /// the other kinds).
    pub fn stayed_elements(&self) -> usize {
        self.stayed_elements
    }

    /// Directory page-fetch messages still pending on this plan, as
    /// `(messages, bytes)` — non-zero only for a plan inspected against an
    /// indirect distribution that has not executed yet.
    pub fn pending_directory_traffic(&self) -> (usize, usize) {
        let dir = self
            .directory
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (dir.len(), dir.iter().map(|m| m.2).sum())
    }

    /// Drains the pending directory messages (first call wins; later calls
    /// and cached re-executions get nothing).
    pub(crate) fn take_directory_messages(&self) -> Vec<(usize, usize, usize)> {
        std::mem::take(
            &mut *self
                .directory
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Charges any pending directory messages to `tracker` (blocking
    /// sends: the inspector's page fetches complete before data moves).
    /// Routed through the tracker's page-fetch path so an armed fault
    /// injector can subject the translation-page traffic to transient
    /// fetch failures (retried with backoff and counted).
    pub(crate) fn charge_directory(&self, tracker: &CommTracker) {
        let dir = self.take_directory_messages();
        if !dir.is_empty() {
            tracker.send_page_fetches(dir);
        }
    }

    /// Bytes that cross processors for an element type of `elem_bytes`
    /// wire bytes.
    pub fn bytes_for(&self, elem_bytes: usize) -> usize {
        self.moved_elements * elem_bytes
    }

    /// Estimated resident size of the plan in bytes — what the plan costs
    /// to *keep*, not to execute.  Block-family schedules are a few runs
    /// per processor pair; strided cyclic targets degrade to one run per
    /// element, so plan sizes differ by orders of magnitude and the
    /// [`PlanCache`] bounds its memory by this estimate rather than by
    /// entry count.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        // Per-slot overhead of the point/offset hash maps of ghost and
        // gather plans (key + value + bucket overhead, rounded up).
        const SLOT_BYTES: usize = 64;
        let transfers: usize = self
            .transfers
            .iter()
            .map(|t| size_of::<Transfer>() + t.runs.len() * size_of::<PlanRun>())
            .sum();
        let index = match &self.index {
            // The plan keeps a clone of the target distribution alive;
            // alignment-derived targets carry O(N) translation tables, so
            // their real footprint must count against the cache budget.
            PlanIndex::Redistribute { new_dist } => new_dist.estimated_bytes(),
            PlanIndex::Ghost { slots } => slots
                .iter()
                .map(|s| size_of::<GhostSlots>() + s.slot_of_point.len() * SLOT_BYTES)
                .sum(),
            PlanIndex::Gather { slots } => slots
                .iter()
                .map(|s| size_of::<GatherSlots>() + s.slot_of_lin.len() * SLOT_BYTES)
                .sum(),
            PlanIndex::Scatter { ops, .. } => ops.len() * size_of::<ScatterOp>(),
        };
        size_of::<CommPlan>() + transfers + index
    }

    /// Total processors of the declaring processor array.
    pub(crate) fn total_procs(&self) -> usize {
        self.total_procs
    }

    /// Validates that the plan applies to data currently distributed as
    /// `dist` and that `tracker` models enough processors.
    pub(crate) fn check_executable(
        &self,
        dist: &Distribution,
        tracker: &CommTracker,
    ) -> Result<()> {
        if dist.fingerprint() != self.src_fingerprint {
            return Err(RuntimeError::PlanMismatch {
                expected: self.src_fingerprint,
                found: dist.fingerprint(),
            });
        }
        if tracker.num_procs() < self.needed_procs {
            return Err(RuntimeError::TrackerMismatch {
                tracker_procs: tracker.num_procs(),
                dist_procs: self.needed_procs,
            });
        }
        Ok(())
    }

    /// The message list the plan charges when executed: one `(src, dst,
    /// bytes)` entry per aggregated crossing transfer (or one per element
    /// when `aggregate` is false — the ablation baseline of experiment E4),
    /// plus the message and byte totals.  Executors post this batch before
    /// running the copies and wait on it afterwards
    /// ([`vf_machine::CommTracker::post_many`] /
    /// [`vf_machine::CommTracker::wait`]).
    pub(crate) fn message_batch(
        &self,
        elem_bytes: usize,
        aggregate: bool,
    ) -> (Vec<(usize, usize, usize)>, usize, usize) {
        // Zero-byte messages are never posted: a transfer only qualifies
        // with at least one element, and elements are at least one byte
        // wide, so the `b > 0` filter is a structural guarantee rather
        // than a behavioural branch.
        let crossing = self
            .transfers
            .iter()
            .filter(|t| t.src != t.dst && t.elements * elem_bytes > 0);
        let mut batch = Vec::new();
        let mut messages = 0usize;
        let mut bytes = 0usize;
        if aggregate {
            for t in crossing {
                let b = t.elements * elem_bytes;
                batch.push((t.src.0, t.dst.0, b));
                messages += 1;
                bytes += b;
            }
        } else {
            for t in crossing {
                for _ in 0..t.elements {
                    batch.push((t.src.0, t.dst.0, elem_bytes));
                }
                messages += t.elements;
                bytes += t.elements * elem_bytes;
            }
        }
        (batch, messages, bytes)
    }

    /// Charges the plan's traffic to `tracker` with one aggregated message
    /// per crossing transfer (or one message per element when `aggregate`
    /// is false — the ablation baseline of experiment E4), in a single
    /// batched lock acquisition.  Returns `(messages, bytes)` charged.
    pub fn charge(
        &self,
        tracker: &CommTracker,
        elem_bytes: usize,
        aggregate: bool,
    ) -> (usize, usize) {
        self.charge_directory(tracker);
        let (batch, messages, bytes) = self.message_batch(elem_bytes, aggregate);
        tracker.send_many(batch);
        (messages, bytes)
    }

    /// The ghost-buffer slot of `point` on `proc`, if the plan schedules it.
    pub(crate) fn ghost_slot(&self, proc: ProcId, point: &Point) -> Option<usize> {
        match &self.index {
            PlanIndex::Ghost { slots } => slots
                .get(proc.0)
                .and_then(|s| s.slot_of_point.get(point))
                .copied(),
            _ => None,
        }
    }

    /// Number of ghost slots held for `proc`.
    pub(crate) fn ghost_len(&self, proc: ProcId) -> usize {
        match &self.index {
            PlanIndex::Ghost { slots } => slots.get(proc.0).map(|s| s.count).unwrap_or(0),
            _ => 0,
        }
    }

    /// The gather-buffer slot of global offset `lin` on `proc`, if
    /// scheduled.
    pub(crate) fn gather_slot(&self, proc: ProcId, lin: usize) -> Option<usize> {
        match &self.index {
            PlanIndex::Gather { slots } => slots
                .get(proc.0)
                .and_then(|s| s.slot_of_lin.get(&lin))
                .copied(),
            _ => None,
        }
    }

    /// Number of gather slots held for `proc`.
    pub(crate) fn gather_len(&self, proc: ProcId) -> usize {
        match &self.index {
            PlanIndex::Gather { slots } => slots.get(proc.0).map(|s| s.count).unwrap_or(0),
            _ => 0,
        }
    }

    /// The owners contacted by `proc`, sorted — the PARTI schedule query.
    pub(crate) fn senders_to(&self, proc: ProcId) -> Vec<ProcId> {
        let mut owners: Vec<ProcId> = self
            .transfers
            .iter()
            .filter(|t| t.dst == proc && t.src != proc && t.elements > 0)
            .map(|t| t.src)
            .collect();
        owners.sort_unstable();
        owners.dedup();
        owners
    }
}

/// Incremental builder grouping per-element placements into transfers and
/// run-length-encoding each transfer's element list.
struct PlanBuilder {
    transfers: Vec<Transfer>,
    by_pair: HashMap<(usize, usize), usize>,
    moved: usize,
    stayed: usize,
    needed: usize,
}

impl PlanBuilder {
    fn new() -> Self {
        Self {
            transfers: Vec::new(),
            by_pair: HashMap::new(),
            moved: 0,
            stayed: 0,
            needed: 0,
        }
    }

    /// Adds one element travelling `src[src_off] -> dst[dst_off]`, merging
    /// it into the previous run of the pair when both offsets are
    /// consecutive.
    fn push(&mut self, src: ProcId, dst: ProcId, src_off: usize, dst_off: usize) {
        if src == dst {
            self.stayed += 1;
        } else {
            self.moved += 1;
        }
        self.needed = self.needed.max(src.0 + 1).max(dst.0 + 1);
        let idx = *self.by_pair.entry((src.0, dst.0)).or_insert_with(|| {
            self.transfers.push(Transfer {
                src,
                dst,
                elements: 0,
                runs: Vec::new(),
            });
            self.transfers.len() - 1
        });
        let t = &mut self.transfers[idx];
        t.elements += 1;
        match t.runs.last_mut() {
            Some(run)
                if run.src_start + run.len == src_off && run.dst_start + run.len == dst_off =>
            {
                run.len += 1;
            }
            _ => t.runs.push(PlanRun {
                src_start: src_off,
                dst_start: dst_off,
                len: 1,
            }),
        }
    }
}

/// Plans the data motion of `DISTRIBUTE` from `old` to `new` (paper
/// §3.2.2, step 3): each element of every sender's local storage — walked
/// as contiguous [`vf_dist::LinearRun`]s — is placed at its new owner and
/// new local offset, and the placements are run-length-encoded per
/// (sender, receiver) pair.
pub fn plan_redistribute(old: &Distribution, new: &Distribution) -> Result<CommPlan> {
    if new.domain() != old.domain() {
        return Err(RuntimeError::DomainMismatch {
            left: old.domain().to_string(),
            right: new.domain().to_string(),
        });
    }
    let mut resolver = OwnerResolver::for_dist(new);
    let mut b = PlanBuilder::new();
    // A replicated source holds one full copy per processor of the view;
    // only the canonical first copy sends (sending from every replica
    // would count every element once per replica and let stale copies
    // overwrite fresh data at the receivers).
    let senders: &[vf_dist::ProcId] = if old.is_replicated() {
        &old.proc_ids()[..1]
    } else {
        old.proc_ids()
    };
    for &p in senders {
        for run in old.local_linear_runs(p) {
            for k in 0..run.len {
                let (q, dst_off) = resolver.locate_from(p, run.global_start + k);
                b.push(p, q, run.local_start + k, dst_off);
            }
        }
    }
    // Receivers that exist in the new distribution but get no elements
    // still constrain the tracker size.
    let needed = b
        .needed
        .max(new.proc_ids().iter().map(|q| q.0 + 1).max().unwrap_or(1))
        .max(old.proc_ids().iter().map(|p| p.0 + 1).max().unwrap_or(1));
    Ok(CommPlan {
        kind: PlanKind::Redistribute,
        src_fingerprint: old.fingerprint(),
        dst_fingerprint: new.fingerprint(),
        total_procs: new.procs().array().num_procs(),
        needed_procs: needed,
        transfers: b.transfers,
        moved_elements: b.moved,
        stayed_elements: b.stayed,
        directory: Mutex::new(resolver.finish()),
        index: PlanIndex::Redistribute {
            new_dist: new.clone(),
        },
    })
}

/// The first dimension of `dist` whose local layout scatters — the
/// dimension a [`RuntimeError::NonContiguousLayout`] names, computed from
/// the actual per-dimension segments ([`Distribution::scattered_dims`]),
/// not from the distribution-function variants (a `CYCLIC(k)` that gives
/// every processor one contiguous block is *not* scattered).
fn non_contiguous_dim(dist: &Distribution) -> usize {
    dist.scattered_dims().first().copied().unwrap_or(0)
}

/// Plans the overlap-area exchange of a stencil that reads up to
/// `widths[d].0` elements below and `widths[d].1` above the owned segment
/// in dimension `d`.
///
/// Every processor must own a contiguous rectangular segment (true for
/// `BLOCK`, general block and `:` dimensions); cyclic and
/// alignment-derived layouts are rejected with
/// [`RuntimeError::NonContiguousLayout`] naming the offending dimension.
/// One-dimensional `INDIRECT` layouts are *not* rejected: their widths
/// describe the implicit ±width chain stencil over global offsets
/// ([`Connectivity::chain`]) and the plan routes to the irregular halo
/// planner [`plan_ghost_irregular`].
pub fn plan_ghost(dist: &Distribution, widths: &[(usize, usize)]) -> Result<CommPlan> {
    let domain = dist.domain();
    if widths.len() != domain.rank() {
        return Err(RuntimeError::Index(vf_index::IndexError::RankMismatch {
            expected: domain.rank(),
            found: widths.len(),
        }));
    }
    if dist.dist_type().has_indirect() && domain.rank() == 1 {
        let (lo, hi) = widths[0];
        let chain = Connectivity::chain(domain.size(), lo, hi)?;
        return plan_ghost_irregular(dist, &chain);
    }
    let total_procs = dist.procs().array().num_procs();
    // Degenerate stencils — every width zero — exchange nothing: return an
    // empty plan immediately instead of walking every processor's segment
    // to discover the same.  The empty plan still participates in caching
    // (callers need the slot index for `GhostRegion`), but it carries no
    // transfer groups and only a handful of bytes.
    if widths.iter().all(|&(lo, hi)| lo == 0 && hi == 0) {
        // Still validate the layout: ghost exchange is only defined for
        // distributions whose processors own contiguous rectangular
        // segments, and a degenerate width must not mask that error (a
        // width-parameterised caller would otherwise see the zero case
        // succeed and every nonzero case fail on the same array).
        for &p in dist.proc_ids() {
            if dist.local_segment(p).is_none() {
                return Err(RuntimeError::NonContiguousLayout {
                    array: dist.to_string(),
                    dim: non_contiguous_dim(dist),
                });
            }
        }
        let fp = dist.fingerprint();
        return Ok(CommPlan {
            kind: PlanKind::Ghost,
            src_fingerprint: fp,
            dst_fingerprint: fp,
            total_procs,
            needed_procs: dist.proc_ids().iter().map(|p| p.0 + 1).max().unwrap_or(1),
            transfers: Vec::new(),
            moved_elements: 0,
            stayed_elements: 0,
            directory: Mutex::new(Vec::new()),
            index: PlanIndex::Ghost {
                slots: (0..total_procs)
                    .map(|_| GhostSlots {
                        slot_of_point: HashMap::new(),
                        count: 0,
                    })
                    .collect(),
            },
        });
    }
    let mut resolver = OwnerResolver::for_dist(dist);
    let mut slots: Vec<GhostSlots> = (0..total_procs)
        .map(|_| GhostSlots {
            slot_of_point: HashMap::new(),
            count: 0,
        })
        .collect();
    let mut b = PlanBuilder::new();

    for &p in dist.proc_ids() {
        let Some(segment) = dist.local_segment(p) else {
            return Err(RuntimeError::NonContiguousLayout {
                array: dist.to_string(),
                dim: non_contiguous_dim(dist),
            });
        };
        if segment.is_empty() {
            continue;
        }
        // Collect the halo frame: for each dimension, the slab just below
        // and just above the owned segment, extended by the halo in the
        // other dimensions so corners are included (§3.1 overlap areas).
        let mut lins: Vec<usize> = Vec::new();
        for d in 0..domain.rank() {
            let (w_lo, w_hi) = widths[d];
            // Zero-width dimensions contribute no slabs at all.
            if w_lo == 0 && w_hi == 0 {
                continue;
            }
            for (side_width, below) in [(w_lo, true), (w_hi, false)] {
                if side_width == 0 {
                    continue;
                }
                let (slab_lo, slab_hi) = if below {
                    (
                        segment.dim(d).lower() - side_width as i64,
                        segment.dim(d).lower() - 1,
                    )
                } else {
                    (
                        segment.dim(d).upper() + 1,
                        segment.dim(d).upper() + side_width as i64,
                    )
                };
                let slab_lo = slab_lo.max(domain.dim(d).lower());
                let slab_hi = slab_hi.min(domain.dim(d).upper());
                if slab_hi < slab_lo {
                    continue;
                }
                let mut dims = Vec::with_capacity(domain.rank());
                let mut ok = true;
                #[allow(clippy::needless_range_loop)] // `e` indexes widths and two domains
                for e in 0..domain.rank() {
                    if e == d {
                        dims.push(DimRange::new(slab_lo, slab_hi).expect("checked non-empty"));
                    } else {
                        let lo = (segment.dim(e).lower() - widths[e].0 as i64)
                            .max(domain.dim(e).lower());
                        let hi = (segment.dim(e).upper() + widths[e].1 as i64)
                            .min(domain.dim(e).upper());
                        if hi < lo {
                            ok = false;
                            break;
                        }
                        dims.push(DimRange::new(lo, hi).expect("checked non-empty"));
                    }
                }
                if !ok {
                    continue;
                }
                let slab = IndexDomain::new(dims).expect("rank preserved");
                for point in slab.iter() {
                    if !segment.contains(&point) {
                        lins.push(domain.linearize(&point).expect("slab within domain"));
                    }
                }
            }
        }
        lins.sort_unstable();
        lins.dedup();
        // Assign buffer slots in global column-major order and group the
        // fetches by owner, run-length-encoded over (owner local, slot).
        for (slot, &lin) in lins.iter().enumerate() {
            let point = domain.delinearize(lin).expect("lin from linearize");
            let (owner, local) = resolver.locate_from(p, lin);
            slots[p.0].slot_of_point.insert(point, slot);
            b.push(owner, p, local, slot);
        }
        slots[p.0].count = lins.len();
    }

    let fp = dist.fingerprint();
    Ok(CommPlan {
        kind: PlanKind::Ghost,
        src_fingerprint: fp,
        dst_fingerprint: fp,
        total_procs,
        needed_procs: b
            .needed
            .max(dist.proc_ids().iter().map(|p| p.0 + 1).max().unwrap_or(1)),
        transfers: b.transfers,
        moved_elements: b.moved,
        stayed_elements: b.stayed,
        directory: Mutex::new(resolver.finish()),
        index: PlanIndex::Ghost { slots },
    })
}

/// Plans the irregular (connectivity-driven) overlap exchange — the PARTI
/// *incremental schedule* for distributions with no geometric halo:
/// processor `p`'s ghost set is every global offset referenced (through
/// `conn`) by an element `p` owns but owned elsewhere.
///
/// Ownership is resolved through the [`OwnerResolver`] — the distributed
/// translation table for `INDIRECT` distributions, modelling the directory
/// page fetches a real PARTI inspector performs — while the requester-side
/// membership test ("is this neighbour mine?") is free: each processor
/// knows its own local-to-global table.  The produced plan is an ordinary
/// ghost [`CommPlan`] (slots assigned in ascending global order), so the
/// ghost executors, the [`PlanCache`] and the fused exchange all work on it
/// unchanged.  Works for regular distributions too (closed-form owner
/// lookup, no directory traffic) — the differential baseline the property
/// suite compares against.
pub fn plan_ghost_irregular(dist: &Distribution, conn: &Connectivity) -> Result<CommPlan> {
    let domain = dist.domain();
    if conn.num_nodes() != domain.size() {
        return Err(RuntimeError::DomainMismatch {
            left: domain.to_string(),
            right: format!("connectivity over {} elements", conn.num_nodes()),
        });
    }
    let total_procs = dist.procs().array().num_procs();
    let fp = dist.fingerprint();
    let mut slots: Vec<GhostSlots> = (0..total_procs)
        .map(|_| GhostSlots {
            slot_of_point: HashMap::new(),
            count: 0,
        })
        .collect();
    let needed_view = dist.proc_ids().iter().map(|p| p.0 + 1).max().unwrap_or(1);
    // A replicated view holds every element on every processor — no read
    // can be non-local — and an edge-free connectivity references nothing.
    if dist.is_replicated() || conn.num_edges() == 0 {
        return Ok(CommPlan {
            kind: PlanKind::Ghost,
            src_fingerprint: fp,
            dst_fingerprint: fp,
            total_procs,
            needed_procs: needed_view,
            transfers: Vec::new(),
            moved_elements: 0,
            stayed_elements: 0,
            directory: Mutex::new(Vec::new()),
            index: PlanIndex::Ghost { slots },
        });
    }
    // Requester-side ownership: every processor knows which global offsets
    // it owns (its local-to-global table), assembled here from the linear
    // runs.  Resolving the *owner* of anything else is the part that costs
    // directory traffic, and goes through the resolver below.
    let mut owner_of = vec![u32::MAX; domain.size()];
    for &p in dist.proc_ids() {
        for run in dist.local_linear_runs(p) {
            for k in 0..run.len {
                owner_of[run.global_start + k] = p.0 as u32;
            }
        }
    }
    let mut resolver = OwnerResolver::for_dist(dist);
    let mut b = PlanBuilder::new();
    for &p in dist.proc_ids() {
        let mut lins: Vec<usize> = Vec::new();
        for run in dist.local_linear_runs(p) {
            for k in 0..run.len {
                for v in conn.neighbors(run.global_start + k) {
                    if owner_of[v] != p.0 as u32 {
                        lins.push(v);
                    }
                }
            }
        }
        lins.sort_unstable();
        lins.dedup();
        for (slot, &lin) in lins.iter().enumerate() {
            let point = domain.delinearize(lin).expect("lin within the domain");
            let (owner, local) = resolver.locate_from(p, lin);
            slots[p.0].slot_of_point.insert(point, slot);
            b.push(owner, p, local, slot);
        }
        slots[p.0].count = lins.len();
    }
    Ok(CommPlan {
        kind: PlanKind::Ghost,
        src_fingerprint: fp,
        dst_fingerprint: fp,
        total_procs,
        needed_procs: b.needed.max(needed_view),
        transfers: b.transfers,
        moved_elements: b.moved,
        stayed_elements: b.stayed,
        directory: Mutex::new(resolver.finish()),
        index: PlanIndex::Ghost { slots },
    })
}

/// The planning half of the PARTI inspector: analyses the non-local
/// accesses each processor intends to make and produces a deduplicated
/// gather plan.  Local accesses are dropped; repeated accesses to the same
/// element are fetched once (the "buffering scheme" of the PARTI routines).
pub fn plan_gather(dist: &Distribution, accesses: &[(ProcId, Point)]) -> Result<CommPlan> {
    let total_procs = dist.procs().array().num_procs();
    let mut resolver = OwnerResolver::for_dist(dist);
    // Every access of a replicated array is local (each processor of the
    // view holds a full copy), so nothing is fetched.
    let replicated = dist.is_replicated();
    // Per requesting processor: sorted, deduplicated global offsets,
    // grouped by owner.
    let mut requests: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); total_procs]; // (owner, lin, owner_local)
    for (proc, point) in accesses {
        let lin = dist.domain().linearize(point)?;
        if replicated {
            continue;
        }
        let (owner, local) = resolver.locate_from(*proc, lin);
        if owner == *proc {
            continue;
        }
        requests[proc.0].push((owner.0, lin, local));
    }
    let mut slots: Vec<GatherSlots> = (0..total_procs)
        .map(|_| GatherSlots {
            slot_of_lin: HashMap::new(),
            count: 0,
        })
        .collect();
    let mut b = PlanBuilder::new();
    for (proc, mut reqs) in requests.into_iter().enumerate() {
        reqs.sort_unstable();
        reqs.dedup();
        for (slot, &(owner, lin, local)) in reqs.iter().enumerate() {
            slots[proc].slot_of_lin.insert(lin, slot);
            b.push(ProcId(owner), ProcId(proc), local, slot);
        }
        slots[proc].count = reqs.len();
    }
    let fp = dist.fingerprint();
    Ok(CommPlan {
        kind: PlanKind::Gather,
        src_fingerprint: fp,
        dst_fingerprint: fp,
        total_procs,
        needed_procs: b
            .needed
            .max(dist.proc_ids().iter().map(|p| p.0 + 1).max().unwrap_or(1)),
        transfers: b.transfers,
        moved_elements: b.moved,
        stayed_elements: b.stayed,
        directory: Mutex::new(resolver.finish()),
        index: PlanIndex::Gather { slots },
    })
}

/// Plans the executor's write path: each update source `(from, point)` is
/// resolved to the owner and owner-local offset of `point`; cross-processor
/// updates are aggregated into one message per (source, owner) pair.  The
/// update *values* are supplied at execution time — only the placement is
/// cacheable.
pub fn plan_scatter(dist: &Distribution, sources: &[(ProcId, Point)]) -> Result<CommPlan> {
    let mut resolver = OwnerResolver::for_dist(dist);
    let mut ops = Vec::with_capacity(sources.len());
    let mut b = PlanBuilder::new();
    for (from, point) in sources {
        let lin = dist.domain().linearize(point)?;
        let (owner, local) = resolver.locate_from(*from, lin);
        ops.push(ScatterOp { owner, local });
        // Runs are not needed for scatter (values arrive with the updates);
        // the per-pair element counts drive the message aggregation.
        b.push(*from, owner, 0, 0);
    }
    // Collapse the dummy runs: only the counts matter.
    let mut transfers = b.transfers;
    for t in &mut transfers {
        t.runs.clear();
    }
    let fp = dist.fingerprint();
    Ok(CommPlan {
        kind: PlanKind::Scatter,
        src_fingerprint: fp,
        dst_fingerprint: fp,
        total_procs: dist.procs().array().num_procs(),
        needed_procs: b
            .needed
            .max(dist.proc_ids().iter().map(|p| p.0 + 1).max().unwrap_or(1)),
        transfers,
        moved_elements: b.moved,
        stayed_elements: b.stayed,
        directory: Mutex::new(resolver.finish()),
        index: PlanIndex::Scatter {
            ops,
            replicated: dist.is_replicated(),
        },
    })
}

/// Key of a cached plan: the kind plus the structural fingerprints of the
/// inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PlanKey {
    Redistribute {
        from: u64,
        to: u64,
    },
    Ghost {
        dist: u64,
        widths: Vec<(usize, usize)>,
    },
    GhostIrregular {
        dist: u64,
        conn: u64,
    },
    Gather {
        dist: u64,
        accesses: u64,
    },
    Scatter {
        dist: u64,
        sources: u64,
    },
}

fn hash_accesses(accesses: &[(ProcId, Point)]) -> u64 {
    let mut h = DefaultHasher::new();
    for (p, pt) in accesses {
        p.0.hash(&mut h);
        pt.hash(&mut h);
    }
    h.finish()
}

/// Hit/miss counters and size of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run a planner.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Estimated bytes held by the cached plans
    /// ([`CommPlan::estimated_bytes`] summed) — the quantity the LRU
    /// eviction bounds.
    pub resident_bytes: usize,
}

#[derive(Debug)]
struct PlanCacheInner {
    /// Cached plans tagged with their estimated size and the logical time
    /// of their last use.
    map: HashMap<PlanKey, (Arc<CommPlan>, usize, u64)>,
    /// Monotonic use counter driving least-recently-used eviction.
    tick: u64,
    /// Estimated-byte budget beyond which LRU eviction kicks in.
    budget_bytes: usize,
    /// Estimated bytes currently resident.
    resident_bytes: usize,
    hits: u64,
    misses: u64,
}

impl Default for PlanCacheInner {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            tick: 0,
            budget_bytes: PlanCache::DEFAULT_BUDGET_BYTES,
            resident_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }
}

/// A shared cache of communication plans keyed by distribution
/// fingerprints — the VFE's realisation of PARTI schedule reuse.
///
/// The cache is cheaply cloneable (an `Arc` around the interior), so the
/// language layer, the applications and the benches can hold handles to
/// one cache, exactly like [`CommTracker`].  Iterative codes (ADI sweeps,
/// smoothing steps, PIC steps) plan each distinct communication pattern
/// once and afterwards hit the cache; executing a cached plan moves
/// exactly the same elements and charges exactly the same bytes as a
/// freshly planned one (asserted by the property tests in
/// `tests/suite/plan_reuse.rs`).
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    inner: Arc<Mutex<PlanCacheInner>>,
}

impl PlanCache {
    /// Default estimated-byte budget (16 MiB) before least-recently-used
    /// eviction.  Plans differ wildly in size — a few runs per processor
    /// pair for block-family layouts, one run per *element* for strided
    /// cyclic targets — so the cache bounds the estimated bytes it holds
    /// ([`CommPlan::estimated_bytes`]) rather than the entry count: a
    /// drifting PIC load producing ever-new `BOUNDS` partitions evicts
    /// many small block schedules or few huge cyclic ones, either way
    /// staying within the same memory.
    pub const DEFAULT_BUDGET_BYTES: usize = 16 * 1024 * 1024;

    /// An empty cache with [`PlanCache::DEFAULT_BUDGET_BYTES`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache evicting least-recently-used plans once the summed
    /// [`CommPlan::estimated_bytes`] exceeds `budget_bytes`.  The most
    /// recently inserted plan is always kept, even when it alone exceeds
    /// the budget.
    pub fn with_budget_bytes(budget_bytes: usize) -> Self {
        let cache = Self::default();
        cache.lock().budget_bytes = budget_bytes;
        cache
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current hit/miss counters, entry count and resident bytes.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            resident_bytes: inner.resident_bytes,
        }
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.resident_bytes = 0;
    }

    fn get_or_plan(
        &self,
        key: PlanKey,
        plan: impl FnOnce() -> Result<CommPlan>,
    ) -> Result<Arc<CommPlan>> {
        if let Some(found) = {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let found = inner.map.get_mut(&key).map(|entry| {
                entry.2 = tick;
                Arc::clone(&entry.0)
            });
            if found.is_some() {
                inner.hits += 1;
            }
            found
        } {
            trace::instant(trace::Phase::PlanCacheHit);
            return Ok(found);
        }
        // Plan outside the lock: planning is the expensive part.
        trace::instant(trace::Phase::PlanCacheMiss);
        let planned = {
            let _span = trace::OpenSpan::begin(trace::Phase::Plan);
            Arc::new(plan()?)
        };
        let size = planned.estimated_bytes();
        let mut inner = self.lock();
        inner.misses += 1;
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .map
            .entry(key)
            .or_insert_with(|| (Arc::clone(&planned), size, tick))
            .0
            .clone();
        if Arc::ptr_eq(&entry, &planned) {
            // We inserted: account the size and evict least-recently-used
            // plans until the budget holds again (never the new entry).
            inner.resident_bytes += size;
            while inner.resident_bytes > inner.budget_bytes && inner.map.len() > 1 {
                let Some(oldest) = inner
                    .map
                    .iter()
                    .filter(|(_, (_, _, used))| *used != tick)
                    .min_by_key(|(_, (_, _, used))| *used)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                if let Some((_, evicted_size, _)) = inner.map.remove(&oldest) {
                    inner.resident_bytes -= evicted_size;
                    trace::instant(trace::Phase::PlanEvict);
                }
            }
        }
        Ok(entry)
    }

    /// The cached redistribution plan `old -> new`, planning on a miss.
    pub fn redistribute_plan(
        &self,
        old: &Distribution,
        new: &Distribution,
    ) -> Result<Arc<CommPlan>> {
        self.get_or_plan(
            PlanKey::Redistribute {
                from: old.fingerprint(),
                to: new.fingerprint(),
            },
            || plan_redistribute(old, new),
        )
    }

    /// The cached ghost-exchange plan for `dist` and `widths`.
    pub fn ghost_plan(
        &self,
        dist: &Distribution,
        widths: &[(usize, usize)],
    ) -> Result<Arc<CommPlan>> {
        self.get_or_plan(
            PlanKey::Ghost {
                dist: dist.fingerprint(),
                widths: widths.to_vec(),
            },
            || plan_ghost(dist, widths),
        )
    }

    /// The cached irregular (connectivity-driven) halo plan for `dist` —
    /// keyed by (distribution fingerprint, connectivity fingerprint), so a
    /// repartitioned array (new map, new fingerprint) can never reuse a
    /// stale halo schedule, while repeated sweeps over an unchanged
    /// partition replay the cached incremental schedule for free.
    pub fn ghost_irregular_plan(
        &self,
        dist: &Distribution,
        conn: &Connectivity,
    ) -> Result<Arc<CommPlan>> {
        self.get_or_plan(
            PlanKey::GhostIrregular {
                dist: dist.fingerprint(),
                conn: conn.fingerprint(),
            },
            || plan_ghost_irregular(dist, conn),
        )
    }

    /// The cached gather plan for `dist` and `accesses`.
    pub fn gather_plan(
        &self,
        dist: &Distribution,
        accesses: &[(ProcId, Point)],
    ) -> Result<Arc<CommPlan>> {
        self.get_or_plan(
            PlanKey::Gather {
                dist: dist.fingerprint(),
                accesses: hash_accesses(accesses),
            },
            || plan_gather(dist, accesses),
        )
    }

    /// The cached scatter plan for `dist` and update sources.
    pub fn scatter_plan(
        &self,
        dist: &Distribution,
        sources: &[(ProcId, Point)],
    ) -> Result<Arc<CommPlan>> {
        self.get_or_plan(
            PlanKey::Scatter {
                dist: dist.fingerprint(),
                sources: hash_accesses(sources),
            },
            || plan_scatter(dist, sources),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistArray;
    use vf_dist::{DistType, ProcessorView};
    use vf_machine::CostModel;

    fn dist_1d(t: DistType, n: usize, p: usize) -> Distribution {
        Distribution::new(t, IndexDomain::d1(n), ProcessorView::linear(p)).unwrap()
    }

    #[test]
    fn block_shift_plans_are_tightly_run_length_encoded() {
        // BLOCK(16/4) -> B_BLOCK(2,6,4,4): every pairwise overlap is one
        // contiguous interval, so every transfer is a single run.
        let old = dist_1d(DistType::block1d(), 16, 4);
        let new = dist_1d(DistType::gen_block1d(vec![2, 6, 4, 4]), 16, 4);
        let plan = plan_redistribute(&old, &new).unwrap();
        assert_eq!(
            plan.moved_elements() + plan.stayed_elements(),
            16,
            "every element is placed exactly once"
        );
        for t in plan.transfers() {
            assert_eq!(t.runs.len(), 1, "{:?} -> {:?} fragmented", t.src, t.dst);
            assert_eq!(t.elements, t.runs.iter().map(|r| r.len).sum::<usize>());
        }
        // The total run count is bounded by the pair count, not the element
        // count — the memory argument for RLE schedules.
        assert!(plan.transfers().len() <= 7);
    }

    #[test]
    fn cyclic_plans_still_cover_every_element() {
        let old = dist_1d(DistType::cyclic1d(1), 12, 3);
        let new = dist_1d(DistType::block1d(), 12, 3);
        let plan = plan_redistribute(&old, &new).unwrap();
        assert_eq!(plan.moved_elements() + plan.stayed_elements(), 12);
        let total: usize = plan.transfers().iter().map(|t| t.elements).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn identical_distributions_move_nothing() {
        let d = dist_1d(DistType::block1d(), 12, 3);
        let plan = plan_redistribute(&d, &d.clone()).unwrap();
        assert_eq!(plan.moved_elements(), 0);
        assert_eq!(plan.stayed_elements(), 12);
        assert_eq!(plan.num_messages(), 0);
    }

    #[test]
    fn cache_hits_on_repeat_and_misses_on_change() {
        let cache = PlanCache::new();
        let block = dist_1d(DistType::block1d(), 16, 4);
        let cyclic = dist_1d(DistType::cyclic1d(1), 16, 4);
        let gen = dist_1d(DistType::gen_block1d(vec![1, 5, 5, 5]), 16, 4);

        let p1 = cache.redistribute_plan(&block, &cyclic).unwrap();
        let p2 = cache.redistribute_plan(&block, &cyclic).unwrap();
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "repeat lookup returns the cached plan"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.resident_bytes, p1.estimated_bytes());

        // A different *target* distribution is a different key: no stale
        // plan is returned (the invalidation property).
        let p3 = cache.redistribute_plan(&block, &gen).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.stats().misses, 2);

        // The reverse direction is also distinct.
        cache.redistribute_plan(&cyclic, &block).unwrap();
        assert_eq!(cache.stats().misses, 3);

        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().resident_bytes, 0);
        cache.redistribute_plan(&block, &cyclic).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn executing_a_stale_plan_is_rejected() {
        let block = dist_1d(DistType::block1d(), 16, 4);
        let cyclic = dist_1d(DistType::cyclic1d(1), 16, 4);
        let plan = plan_redistribute(&block, &cyclic).unwrap();
        // The array has since been redistributed to gen-block: the cached
        // plan no longer applies and execution must refuse.
        let mut a = DistArray::from_fn(
            "A",
            dist_1d(DistType::gen_block1d(vec![4, 4, 4, 4]), 16, 4),
            |p| p.coord(0) as f64,
        );
        let tracker = CommTracker::new(4, CostModel::zero());
        let err =
            crate::execute_redistribute(&mut a, &plan, &tracker, &crate::RedistOptions::default());
        assert!(matches!(err, Err(RuntimeError::PlanMismatch { .. })));
    }

    #[test]
    fn charge_aggregate_vs_element_wise() {
        let old = dist_1d(DistType::block1d(), 16, 2);
        let new = dist_1d(DistType::cyclic1d(1), 16, 2);
        let plan = plan_redistribute(&old, &new).unwrap();
        let agg = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0));
        let (m_agg, b_agg) = plan.charge(&agg, 8, true);
        let elem = CommTracker::new(2, CostModel::from_alpha_beta(1.0, 0.0));
        let (m_elem, b_elem) = plan.charge(&elem, 8, false);
        assert_eq!(b_agg, b_elem);
        assert_eq!(b_agg, plan.bytes_for(8));
        assert!(m_elem > m_agg);
        assert_eq!(m_elem, plan.moved_elements());
        assert!(elem.snapshot().critical_time() > agg.snapshot().critical_time());
    }

    #[test]
    fn replicated_round_trip_preserves_data() {
        // blk -> replicated -> blk: every replica must receive the data on
        // the way in, and only the canonical replica sends on the way out.
        let tracker = CommTracker::new(4, CostModel::zero());
        let block = dist_1d(DistType::block1d(), 8, 4);
        let rep = Distribution::new(
            DistType::new(vec![vf_dist::DimDist::NotDistributed]),
            IndexDomain::d1(8),
            ProcessorView::linear(4),
        )
        .unwrap();
        let mut a = DistArray::from_fn("A", block.clone(), |p| (p.coord(0) + 1) as f64);
        let before = a.to_dense();
        crate::redistribute(
            &mut a,
            rep.clone(),
            &tracker,
            &crate::RedistOptions::default(),
        )
        .unwrap();
        // Every replica holds the full data.
        for p in 0..4 {
            assert_eq!(
                a.local(ProcId(p)),
                before.as_slice(),
                "replica on P{p} incomplete"
            );
        }
        let report =
            crate::redistribute(&mut a, block, &tracker, &crate::RedistOptions::default()).unwrap();
        assert_eq!(a.to_dense(), before, "round trip lost data");
        // Only the canonical copy sent: each element placed exactly once.
        assert_eq!(report.moved_elements + report.stayed_elements, 8);
    }

    #[test]
    fn cache_evicts_least_recently_used_beyond_byte_budget() {
        let block = dist_1d(DistType::block1d(), 12, 3);
        let cyclic = dist_1d(DistType::cyclic1d(1), 12, 3);
        let gen = dist_1d(DistType::gen_block1d(vec![2, 4, 6]), 12, 3);
        // Size the budget so A and B fit but adding C overflows by one
        // byte, forcing exactly one LRU eviction.
        let size_a = plan_redistribute(&block, &cyclic)
            .unwrap()
            .estimated_bytes();
        let size_b = plan_redistribute(&block, &gen).unwrap().estimated_bytes();
        let size_c = plan_redistribute(&cyclic, &gen).unwrap().estimated_bytes();
        let cache = PlanCache::with_budget_bytes(size_a + size_b + size_c - 1);
        cache.redistribute_plan(&block, &cyclic).unwrap(); // entry A
        cache.redistribute_plan(&block, &gen).unwrap(); // entry B
        cache.redistribute_plan(&block, &cyclic).unwrap(); // touch A
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().resident_bytes, size_a + size_b);
        cache.redistribute_plan(&cyclic, &gen).unwrap(); // entry C evicts B (LRU)
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().resident_bytes, size_a + size_c);
        cache.redistribute_plan(&block, &cyclic).unwrap(); // A still cached
        assert_eq!(cache.stats().hits, 2);
        cache.redistribute_plan(&block, &gen).unwrap(); // B was evicted
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn cache_keeps_the_newest_plan_even_when_it_alone_exceeds_the_budget() {
        let cache = PlanCache::with_budget_bytes(1);
        let block = dist_1d(DistType::block1d(), 16, 4);
        let cyclic = dist_1d(DistType::cyclic1d(1), 16, 4);
        cache.redistribute_plan(&block, &cyclic).unwrap();
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.stats().resident_bytes > 1);
        // The oversized survivor is still served from the cache...
        cache.redistribute_plan(&block, &cyclic).unwrap();
        assert_eq!(cache.stats().hits, 1);
        // ...until the next insertion displaces it.
        cache.redistribute_plan(&cyclic, &block).unwrap();
        assert_eq!(cache.stats().entries, 1);
        cache.redistribute_plan(&block, &cyclic).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn estimated_bytes_track_run_counts() {
        // A strided cyclic target degrades to one run per element, so its
        // plan must be estimated (much) larger than the handful-of-runs
        // block shift over the same domain.
        let n = 256usize;
        let block = dist_1d(DistType::block1d(), n, 4);
        let cyclic = dist_1d(DistType::cyclic1d(1), n, 4);
        let gen = dist_1d(DistType::gen_block1d(vec![32, 96, 64, 64]), n, 4);
        let fragmented = plan_redistribute(&block, &cyclic).unwrap();
        let compact = plan_redistribute(&block, &gen).unwrap();
        assert!(fragmented.estimated_bytes() > 4 * compact.estimated_bytes());
    }

    #[test]
    fn zero_width_ghost_plan_is_empty_and_tiny() {
        let dist = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(64, 64),
            ProcessorView::linear(4),
        )
        .unwrap();
        let empty = plan_ghost(&dist, &[(0, 0), (0, 0)]).unwrap();
        assert_eq!(empty.transfers().len(), 0, "no empty transfer groups");
        assert_eq!(empty.num_messages(), 0);
        assert_eq!(empty.moved_elements(), 0);
        for p in 0..4 {
            assert_eq!(empty.ghost_len(ProcId(p)), 0);
        }
        // The degenerate plan costs almost nothing to cache, far less than
        // a real halo plan over the same distribution.
        let real = plan_ghost(&dist, &[(1, 1), (1, 1)]).unwrap();
        assert!(empty.estimated_bytes() < real.estimated_bytes() / 4);
        // A plan with one zero-width dimension only schedules the other —
        // for a column layout dimension 0 is undistributed, so its slabs
        // clip to nothing and the two plans coincide.
        let one_dim = plan_ghost(&dist, &[(0, 0), (1, 1)]).unwrap();
        assert!(one_dim.num_messages() > 0);
        assert_eq!(one_dim.moved_elements(), real.moved_elements());
        // The zero-width fast path must not mask the contiguous-segment
        // requirement: a cyclic layout is rejected at any width.
        let cyclic = Distribution::new(
            DistType::new(vec![
                vf_dist::DimDist::Cyclic(1),
                vf_dist::DimDist::NotDistributed,
            ]),
            IndexDomain::d2(8, 8),
            ProcessorView::linear(4),
        )
        .unwrap();
        assert!(matches!(
            plan_ghost(&cyclic, &[(0, 0), (0, 0)]),
            Err(RuntimeError::NonContiguousLayout { dim: 0, .. })
        ));
    }

    #[test]
    fn irregular_halo_plan_agrees_with_the_geometric_planner() {
        // On a 1-D block layout the ±1 chain connectivity describes exactly
        // the geometric 1-wide halo: both planners must schedule the same
        // elements for the same processors.
        let d = dist_1d(DistType::block1d(), 16, 4);
        let conn = Connectivity::chain(16, 1, 1).unwrap();
        let irregular = plan_ghost_irregular(&d, &conn).unwrap();
        let geometric = plan_ghost(&d, &[(1, 1)]).unwrap();
        assert_eq!(irregular.kind(), PlanKind::Ghost);
        assert_eq!(irregular.moved_elements(), geometric.moved_elements());
        assert_eq!(irregular.num_messages(), geometric.num_messages());
        for p in 0..4 {
            assert_eq!(
                irregular.ghost_len(ProcId(p)),
                geometric.ghost_len(ProcId(p)),
                "P{p}"
            );
        }
        // Wrong-size connectivity is rejected.
        let short = Connectivity::chain(8, 1, 1).unwrap();
        assert!(matches!(
            plan_ghost_irregular(&d, &short),
            Err(RuntimeError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn indirect_ghost_plans_route_to_the_irregular_planner() {
        use vf_dist::{IndirectMap, ProcessorView};
        // A fully scattered map (alternating owners): every ±1 neighbour is
        // remote.  plan_ghost used to reject this layout outright; it now
        // derives the halo from the implicit chain connectivity.
        let n = 12usize;
        let p = 2usize;
        let map = std::sync::Arc::new(IndirectMap::from_fn(n, |i| i % p).unwrap());
        let dist = Distribution::new(
            DistType::indirect1d(map),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap();
        let plan = plan_ghost(&dist, &[(1, 1)]).unwrap();
        // P0 owns the even offsets; each reads both odd neighbours → every
        // odd offset is in P0's halo, and vice versa.
        assert_eq!(plan.ghost_len(ProcId(0)), n / 2);
        assert_eq!(plan.ghost_len(ProcId(1)), n / 2);
        assert_eq!(plan.num_messages(), 2);
        // The inspection walked the distributed translation table: pending
        // directory traffic is attached for the first execution.
        let (dir_messages, dir_bytes) = plan.pending_directory_traffic();
        assert!(dir_messages > 0);
        assert!(dir_bytes > 0);
        // Zero widths stay an empty plan, not an error.
        let empty = plan_ghost(&dist, &[(0, 0)]).unwrap();
        assert_eq!(empty.moved_elements(), 0);
        assert_eq!(empty.num_messages(), 0);
    }

    #[test]
    fn irregular_halo_plans_cache_by_map_and_connectivity_fingerprints() {
        use vf_dist::{IndirectMap, ProcessorView};
        let n = 16usize;
        let p = 4usize;
        let dist = |seed: usize| {
            Distribution::new(
                DistType::indirect1d(std::sync::Arc::new(
                    IndirectMap::from_fn(n, |i| (i * 7 + seed) % p).unwrap(),
                )),
                IndexDomain::d1(n),
                ProcessorView::linear(p),
            )
            .unwrap()
        };
        let a = dist(0);
        let conn = Connectivity::chain(n, 1, 1).unwrap();
        let cache = PlanCache::new();
        let p1 = cache.ghost_irregular_plan(&a, &conn).unwrap();
        let p2 = cache.ghost_irregular_plan(&a, &conn).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "repeat lookup hits");
        assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
        // A repartitioned map is a different fingerprint — never stale.
        let b = dist(1);
        let p3 = cache.ghost_irregular_plan(&b, &conn).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        // A different connectivity over the same map also misses.
        let wider = Connectivity::chain(n, 2, 2).unwrap();
        cache.ghost_irregular_plan(&a, &wider).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn scatter_plan_aggregates_pairs() {
        let d = dist_1d(DistType::block1d(), 8, 2);
        let sources = vec![
            (ProcId(0), Point::d1(5)), // remote
            (ProcId(0), Point::d1(6)), // remote, same pair
            (ProcId(0), Point::d1(1)), // local
            (ProcId(1), Point::d1(8)), // local
        ];
        let plan = plan_scatter(&d, &sources).unwrap();
        assert_eq!(plan.kind(), PlanKind::Scatter);
        assert_eq!(plan.moved_elements(), 2);
        assert_eq!(plan.num_messages(), 1);
        let PlanIndex::Scatter { ops, replicated } = &plan.index else {
            panic!("scatter index expected");
        };
        assert_eq!(ops.len(), 4);
        assert!(!replicated);
    }
}
