//! Run-time array descriptors (paper §3.2.1).

use crate::{DistArray, Element};
use std::fmt;
use vf_dist::{DistType, ProcId};
use vf_index::IndexDomain;

/// The per-array run-time descriptor of §3.2.1: the index domain, the
/// distribution characterisation, and — per processor — the local layout
/// and the contiguous `segment` when one exists.
///
/// The descriptor is what the `DISTRIBUTE` implementation modifies ("a
/// run-time routine executed on each processor which is passed the array and
/// its current set of descriptors and returns new descriptors") and what the
/// `IDT` intrinsic and the `DCASE` construct test.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDescriptor {
    /// Array name.
    pub name: String,
    /// `index_dom(A)`: the global index domain.
    pub index_dom: IndexDomain,
    /// `dist(A)`: the distribution type component of the distribution.
    pub dist_type: DistType,
    /// Rendering of the target processor section.
    pub target_procs: String,
    /// Whether local addressing goes through a translation table.
    pub uses_translation_table: bool,
    /// Per processor: `(processor, local element count, segment)` where the
    /// segment is the contiguous owned sub-domain when one exists.
    pub per_proc: Vec<(ProcId, usize, Option<IndexDomain>)>,
}

impl ArrayDescriptor {
    /// Builds the descriptor of a distributed array in its current state.
    pub fn of<T: Element>(array: &DistArray<T>) -> Self {
        let dist = array.dist();
        let per_proc = dist
            .proc_ids()
            .iter()
            .map(|&p| (p, dist.local_size(p), dist.local_segment(p)))
            .collect();
        Self {
            name: array.name().to_string(),
            index_dom: array.domain().clone(),
            dist_type: dist.dist_type().clone(),
            target_procs: dist.procs().to_string(),
            uses_translation_table: dist.uses_translation_table(),
            per_proc,
        }
    }

    /// Total number of locally stored elements summed over processors
    /// (equals the domain size unless the array is replicated).
    pub fn total_local_elements(&self) -> usize {
        self.per_proc.iter().map(|(_, n, _)| n).sum()
    }
}

impl fmt::Display for ArrayDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} DIST {} TO {}",
            self.name, self.index_dom, self.dist_type, self.target_procs
        )?;
        for (p, n, seg) in &self.per_proc {
            match seg {
                Some(s) => writeln!(f, "  {p}: {n} elements, segment {s}")?,
                None => writeln!(f, "  {p}: {n} elements, scattered")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DistType, Distribution, ProcessorView};

    #[test]
    fn descriptor_reports_layout() {
        let dist = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(8, 8),
            ProcessorView::linear(4),
        )
        .unwrap();
        let a: DistArray<f64> = DistArray::new("V", dist);
        let d = ArrayDescriptor::of(&a);
        assert_eq!(d.name, "V");
        assert_eq!(d.dist_type, DistType::columns());
        assert_eq!(d.per_proc.len(), 4);
        assert_eq!(d.total_local_elements(), 64);
        assert!(!d.uses_translation_table);
        assert!(d
            .per_proc
            .iter()
            .all(|(_, n, seg)| *n == 16 && seg.is_some()));
        let text = d.to_string();
        assert!(text.contains("V [1:8, 1:8] DIST (:, BLOCK)"));
        assert!(text.contains("16 elements"));
    }

    #[test]
    fn cyclic_descriptor_is_scattered() {
        let dist = Distribution::new(
            DistType::cyclic1d(1),
            IndexDomain::d1(9),
            ProcessorView::linear(3),
        )
        .unwrap();
        let a: DistArray<i64> = DistArray::new("C", dist);
        let d = ArrayDescriptor::of(&a);
        assert!(d.per_proc.iter().all(|(_, _, seg)| seg.is_none()));
        assert!(d.to_string().contains("scattered"));
    }
}
