//! The distributed translation table for `INDIRECT` distributions.
//!
//! The paper builds on the PARTI runtime (Saltz et al.), whose central data
//! structure for irregular distributions is the *distributed translation
//! table*: the global-index → (owner, local offset) mapping is too large to
//! replicate on every processor, so it is itself block-distributed — pages
//! of the owner directory live on well-known home processors, and a
//! processor resolving an index it has no page for fetches the page from
//! its home and caches it.  Regular distributions never need this (their
//! ownership is closed-form arithmetic); `INDIRECT(map)` arrays resolve all
//! non-local addressing through it.
//!
//! [`DistTranslationTable`] realises that design over the simulated
//! machine:
//!
//! * the directory is split into fixed-size **pages** of
//!   `(owner, local offset)` entries;
//! * pages are **block-distributed** over the processors of the target view
//!   (page `p`'s home is the `BLOCK` owner of `p` among the view's
//!   processors);
//! * every processor has a **page cache**: the first lookup of a page not
//!   homed locally records a page fetch (home → requester, one message of
//!   page-size × entry bytes), later lookups hit the cache for free;
//! * for direct callers of [`DistTranslationTable::lookup_from`], fetches
//!   accumulate as *pending directory traffic* until
//!   [`DistTranslationTable::charge_pending`] charges them to a
//!   [`CommTracker`].
//!
//! The communication planners ([`crate::plan`]) consult a table through the
//! process-wide registry [`table_for`] whenever a distribution involves an
//! `INDIRECT` dimension.  They do **not** use the instance page cache:
//! each planning session tracks its requesters' fetched pages locally
//! (lock-free on the per-element path) and attaches the session's
//! directory messages to the [`crate::plan::CommPlan`] it builds; the
//! messages are charged once, at the plan's first execution — a cache-hit
//! plan generates no new directory traffic at all, which is exactly the
//! cold-vs-warm distinction of PARTI schedule reuse.  Lookups agree
//! exactly with the element-wise [`vf_dist::Distribution::owner`] /
//! `loc_map` API (asserted by the property suite).

use std::sync::{Arc, LazyLock, Mutex, PoisonError};
use vf_dist::{DimDist, Distribution, ProcId};
use vf_machine::CommTracker;

/// Default number of directory entries per page.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Wire bytes of one directory entry (owner + local offset, u32 each).
pub const ENTRY_BYTES: usize = 8;

/// Lookup counters of a [`DistTranslationTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Lookups answered by a page homed on the requesting processor.
    pub home_hits: u64,
    /// Lookups answered by a previously fetched cached page.
    pub cache_hits: u64,
    /// Pages fetched from a remote home (one message each).
    pub page_fetches: u64,
    /// Bytes those page fetches moved.
    pub fetched_bytes: usize,
}

#[derive(Debug, Default)]
struct Inner {
    /// `cached[proc][page]`: whether `proc` holds a copy of `page`.
    cached: Vec<Vec<bool>>,
    stats: TranslationStats,
    /// Page-fetch messages `(home, requester, bytes)` not yet charged to a
    /// tracker.
    pending: Vec<(usize, usize, usize)>,
}

/// A paged, block-distributed owner directory for one distribution — the
/// PARTI distributed translation table (see the module docs).
#[derive(Debug)]
pub struct DistTranslationTable {
    /// Fingerprint of the distribution the table resolves.
    fingerprint: u64,
    page_size: usize,
    /// Directory entries, paged: `pages[p][i]` is `(owner, local offset)`
    /// of global offset `p * page_size + i`.
    pages: Vec<Vec<(u32, u32)>>,
    /// Home processor of each page (`BLOCK` over the view's processors).
    homes: Vec<ProcId>,
    total_procs: usize,
    inner: Mutex<Inner>,
}

impl DistTranslationTable {
    /// Builds the table for `dist` with [`DEFAULT_PAGE_SIZE`].
    pub fn build(dist: &Distribution) -> Self {
        Self::with_page_size(dist, DEFAULT_PAGE_SIZE)
    }

    /// Builds the table for `dist` with an explicit page size (clamped to
    /// at least 1).
    pub fn with_page_size(dist: &Distribution, page_size: usize) -> Self {
        let page_size = page_size.max(1);
        let size = dist.domain().size();
        let locator = dist.locator();
        let num_pages = size.div_ceil(page_size).max(1);
        let mut pages: Vec<Vec<(u32, u32)>> = Vec::with_capacity(num_pages);
        for page in 0..num_pages {
            let start = page * page_size;
            let end = (start + page_size).min(size);
            pages.push(
                (start..end)
                    .map(|lin| {
                        let (o, l) = locator.locate_lin(lin);
                        (o.0 as u32, l as u32)
                    })
                    .collect(),
            );
        }
        // The directory itself is block-distributed over the view.
        let view = dist.proc_ids();
        let nview = view.len().max(1);
        let homes = (0..num_pages)
            .map(|page| view[DimDist::Block.owner(page, num_pages, nview)])
            .collect();
        let total_procs = dist.procs().array().num_procs();
        Self {
            fingerprint: dist.fingerprint(),
            page_size,
            pages,
            homes,
            total_procs,
            inner: Mutex::new(Inner {
                cached: vec![Vec::new(); total_procs],
                ..Inner::default()
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fingerprint of the distribution this table resolves.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Directory entries per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of directory pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Elements covered by the directory.
    pub fn len(&self) -> usize {
        (self.pages.len() - 1) * self.page_size + self.pages.last().map(|p| p.len()).unwrap_or(0)
    }

    /// Whether the directory covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Home processor of directory page `page`.
    pub fn home_of_page(&self, page: usize) -> ProcId {
        self.homes[page]
    }

    /// Resolves global offset `lin` without touching any cache state — the
    /// "naive owner-map scan" baseline the cached path must agree with.
    pub fn lookup(&self, lin: usize) -> (ProcId, usize) {
        let (o, l) = self.pages[lin / self.page_size][lin % self.page_size];
        (ProcId(o as usize), l as usize)
    }

    /// The directory page covering global offset `lin`.
    pub(crate) fn page_of(&self, lin: usize) -> usize {
        lin / self.page_size
    }

    /// Wire bytes of fetching page `page` (short last page included).
    pub(crate) fn page_bytes(&self, page: usize) -> usize {
        self.pages[page].len() * ENTRY_BYTES
    }

    /// Merges lookup counters produced by a planning session (see
    /// [`crate::plan`]'s session resolver) into this table's cumulative
    /// stats, under a single lock acquisition.
    pub(crate) fn absorb_stats(&self, delta: TranslationStats) {
        let mut inner = self.lock();
        inner.stats.home_hits += delta.home_hits;
        inner.stats.cache_hits += delta.cache_hits;
        inner.stats.page_fetches += delta.page_fetches;
        inner.stats.fetched_bytes += delta.fetched_bytes;
    }

    /// Resolves global offset `lin` on behalf of `requester` through the
    /// cached page path: a page homed on the requester is free, a cached
    /// page hits, and a missing page records one (home → requester) page
    /// fetch before resolving.  The result is always identical to
    /// [`DistTranslationTable::lookup`].
    pub fn lookup_from(&self, requester: ProcId, lin: usize) -> (ProcId, usize) {
        let page = lin / self.page_size;
        {
            let mut inner = self.lock();
            if self.homes[page] == requester {
                inner.stats.home_hits += 1;
            } else {
                let cached = inner
                    .cached
                    .get_mut(requester.0)
                    .expect("requester within the declaring processor array");
                if cached.len() < self.pages.len() {
                    cached.resize(self.pages.len(), false);
                }
                if cached[page] {
                    inner.stats.cache_hits += 1;
                } else {
                    cached[page] = true;
                    let bytes = self.pages[page].len() * ENTRY_BYTES;
                    inner.stats.page_fetches += 1;
                    inner.stats.fetched_bytes += bytes;
                    let home = self.homes[page].0;
                    inner.pending.push((home, requester.0, bytes));
                }
            }
        }
        let (o, l) = self.pages[page][lin % self.page_size];
        (ProcId(o as usize), l as usize)
    }

    /// Current lookup counters.
    pub fn stats(&self) -> TranslationStats {
        self.lock().stats
    }

    /// Charges the pending page-fetch messages to `tracker` and drains
    /// them.  Returns `(messages, bytes)` charged.  Callers that execute a
    /// freshly planned schedule charge this alongside the data motion; a
    /// cache-hit plan has nothing pending.
    pub fn charge_pending(&self, tracker: &CommTracker) -> (usize, usize) {
        let pending = std::mem::take(&mut self.lock().pending);
        let messages = pending.iter().filter(|m| m.0 != m.1).count();
        let bytes: usize = pending.iter().filter(|m| m.0 != m.1).map(|m| m.2).sum();
        // The page-fetch path lets an armed fault injector fail one fetch
        // transiently (retried with backoff, charged and counted); without
        // an injector it charges exactly like `send_many`.
        tracker.send_page_fetches(pending);
        (messages, bytes)
    }

    /// Drops every processor's page cache and pending traffic (counters are
    /// kept) — the state a fresh run of the program would start from.
    pub fn reset_cache(&self) {
        let mut inner = self.lock();
        inner.cached = vec![Vec::new(); self.total_procs];
        inner.pending.clear();
    }

    /// Estimated resident bytes of the directory (pages + homes).
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pages
            .iter()
            .map(|p| size_of::<Vec<(u32, u32)>>() + p.len() * size_of::<(u32, u32)>())
            .sum::<usize>()
            + self.homes.len() * size_of::<ProcId>()
            + size_of::<Self>()
    }
}

/// Maximum number of tables the process-wide registry keeps alive.
const REGISTRY_CAP: usize = 16;

type Registry = Vec<(u64, Arc<DistTranslationTable>)>;

static REGISTRY: LazyLock<Mutex<Registry>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// The process-wide translation table for `dist`, built on first use and
/// shared afterwards (keyed by [`vf_dist::Distribution::fingerprint`], so a
/// redistributed array gets a fresh table while repeated planning against
/// an unchanged distribution reuses one).  The registry keeps the
/// [`REGISTRY_CAP`] most recently used tables.
///
/// What the registry shares is the *immutable page data* (the expensive
/// O(N) directory build) and the cumulative [`DistTranslationTable::stats`]
/// counters.  Planning sessions do **not** share page-cache warmth through
/// it: each planner tracks which pages its requesters have already fetched
/// *within that planning session* and attaches the resulting directory
/// messages to the plan it builds, so two independent simulations planning
/// against the same distribution each model a cold directory — the
/// instance-level cache of [`DistTranslationTable::lookup_from`] is only
/// warmed by direct callers.
pub fn table_for(dist: &Distribution) -> Arc<DistTranslationTable> {
    let fp = dist.fingerprint();
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(pos) = reg.iter().position(|(k, _)| *k == fp) {
        let entry = reg.remove(pos);
        let table = Arc::clone(&entry.1);
        reg.push(entry);
        return table;
    }
    let span = vf_machine::trace::OpenSpan::begin_with(vf_machine::trace::Phase::Plan, || {
        "translation-table build".into()
    });
    let table = Arc::new(DistTranslationTable::build(dist));
    span.end();
    reg.push((fp, Arc::clone(&table)));
    if reg.len() > REGISTRY_CAP {
        reg.remove(0);
    }
    table
}

/// Drops the registry's table for distribution fingerprint `fingerprint`,
/// if one is resident — the stale-directory eviction a repartitioning
/// triggers: once an array has been redistributed through a new mapping
/// array, the old map's directory pages will never be consulted again, so
/// keeping them resident only crowds the bounded registry.  Handles held
/// elsewhere (`Arc`) stay valid; a later [`table_for`] of the same
/// distribution rebuilds from scratch.  Returns whether a table was
/// dropped.
pub fn invalidate(fingerprint: u64) -> bool {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    match reg.iter().position(|(k, _)| *k == fingerprint) {
        Some(pos) => {
            reg.remove(pos);
            vf_machine::trace::instant(vf_machine::trace::Phase::Invalidate);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vf_dist::{DistType, IndirectMap, ProcessorView};
    use vf_index::IndexDomain;
    use vf_machine::CostModel;

    fn indirect_dist(n: usize, p: usize, seed: usize) -> Distribution {
        let map = Arc::new(IndirectMap::from_fn(n, |i| (i * 7 + seed) % p).unwrap());
        Distribution::new(
            DistType::indirect1d(map),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap()
    }

    #[test]
    fn lookups_match_the_distribution_elementwise() {
        let dist = indirect_dist(100, 4, 3);
        let table = DistTranslationTable::with_page_size(&dist, 16);
        assert_eq!(table.len(), 100);
        assert!(!table.is_empty());
        assert_eq!(table.num_pages(), 7);
        for (lin, point) in dist.domain().clone().iter().enumerate() {
            let owner = dist.owner(&point).unwrap();
            let local = dist.loc_map(owner, &point).unwrap();
            assert_eq!(table.lookup(lin), (owner, local), "direct at {lin}");
            assert_eq!(
                table.lookup_from(ProcId(lin % 4), lin),
                (owner, local),
                "cached path at {lin}"
            );
        }
    }

    #[test]
    fn directory_pages_are_block_distributed() {
        let dist = indirect_dist(64, 4, 0);
        let table = DistTranslationTable::with_page_size(&dist, 8);
        assert_eq!(table.num_pages(), 8);
        // 8 pages over 4 processors: blocks of 2.
        for page in 0..8 {
            assert_eq!(table.home_of_page(page), ProcId(page / 2));
        }
    }

    #[test]
    fn page_cache_fetches_each_remote_page_once() {
        let dist = indirect_dist(64, 4, 1);
        let table = DistTranslationTable::with_page_size(&dist, 8);
        // P0 resolves every element: its own 2 pages are home hits, the
        // other 6 pages are fetched exactly once each.
        for lin in 0..64 {
            table.lookup_from(ProcId(0), lin);
        }
        let stats = table.stats();
        assert_eq!(stats.home_hits, 16);
        assert_eq!(stats.page_fetches, 6);
        assert_eq!(stats.cache_hits, 64 - 16 - 6);
        assert_eq!(stats.fetched_bytes, 6 * 8 * ENTRY_BYTES);
        // A second full sweep is all cache hits — no new fetches.
        for lin in 0..64 {
            table.lookup_from(ProcId(0), lin);
        }
        let again = table.stats();
        assert_eq!(again.page_fetches, 6);
        assert_eq!(again.cache_hits, stats.cache_hits + 48);
        // The pending traffic charges once and then drains.
        let tracker = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let (messages, bytes) = table.charge_pending(&tracker);
        assert_eq!(messages, 6);
        assert_eq!(bytes, 6 * 8 * ENTRY_BYTES);
        assert_eq!(tracker.snapshot().total_messages(), 6);
        let (m2, b2) = table.charge_pending(&tracker);
        assert_eq!((m2, b2), (0, 0));
        // Resetting the cache makes the next sweep fetch again.
        table.reset_cache();
        for lin in 0..64 {
            table.lookup_from(ProcId(0), lin);
        }
        assert_eq!(table.stats().page_fetches, 12);
    }

    #[test]
    fn registry_shares_and_distinguishes_tables() {
        let a = indirect_dist(32, 2, 5);
        let b = indirect_dist(32, 2, 6);
        let ta1 = table_for(&a);
        let ta2 = table_for(&a);
        assert!(Arc::ptr_eq(&ta1, &ta2), "same distribution shares a table");
        let tb = table_for(&b);
        assert!(!Arc::ptr_eq(&ta1, &tb));
        assert_eq!(ta1.fingerprint(), a.fingerprint());
        assert!(ta1.estimated_bytes() > 32 * 8);
    }

    #[test]
    fn invalidation_evicts_the_stale_directory() {
        let a = indirect_dist(48, 3, 77);
        let before = table_for(&a);
        // Repartitioning away from `a` makes its directory stale: evicting
        // it frees the registry slot, existing handles keep working, and a
        // later lookup rebuilds a fresh table.
        assert!(invalidate(a.fingerprint()));
        assert!(!invalidate(a.fingerprint()), "second invalidate is a no-op");
        assert_eq!(before.lookup(0), {
            let locator = a.locator();
            let (o, l) = locator.locate_lin(0);
            (o, l)
        });
        let rebuilt = table_for(&a);
        assert!(
            !Arc::ptr_eq(&before, &rebuilt),
            "invalidate forces a rebuild"
        );
    }

    #[test]
    fn regular_distributions_can_be_tabled_too() {
        // The table is built from the locator, so it works for any
        // distribution — regular ones just never route through it.
        let dist = Distribution::new(
            DistType::cyclic1d(3),
            IndexDomain::d1(40),
            ProcessorView::linear(4),
        )
        .unwrap();
        let table = DistTranslationTable::build(&dist);
        for (lin, point) in dist.domain().clone().iter().enumerate() {
            let owner = dist.owner(&point).unwrap();
            assert_eq!(table.lookup(lin).0, owner);
        }
    }
}
