//! The Vienna Fortran Engine (VFE) — the run-time support layer of the
//! paper's §3.2, realised as a library over the simulated distributed-memory
//! machine of [`vf_machine`].
//!
//! The VFE is "an abstract machine that executes Vienna Fortran object
//! programs … realised by a set of run time libraries" (paper §3.2).  This
//! crate provides those libraries:
//!
//! * [`DistArray`] — a distributed array with per-processor local storage,
//!   the `loc_map`/`segment` access functions of §3.2.1, and a global-view
//!   accessor for the single logical thread of control;
//! * [`redistribute`] — the three-step realisation of the executable
//!   `DISTRIBUTE` statement of §3.2.2 (evaluate the new distribution,
//!   derive the distributions of connected arrays, communicate), including
//!   the `NOTRANSFER` attribute and aggregated ("pre-compiled routine")
//!   versus element-wise communication planning;
//! * [`ghost`] — overlap-area (halo) exchange for regular stencil accesses,
//!   with face-aggregated messages (the paper's "sophisticated buffering
//!   schemes for accesses to non-local objects");
//! * [`parti`] — PARTI-style translation tables, inspector/executor
//!   communication schedules and gather/scatter executors for irregular
//!   accesses (§3.2, item 1, citing Saltz et al.);
//! * [`plan`] — the unified communication-plan layer beneath all of the
//!   above: run-length-encoded (sender → receiver) schedules
//!   ([`CommPlan`]) built once, cached by distribution fingerprint
//!   ([`PlanCache`], byte-bounded LRU) and replayed by the executors,
//!   realising the PARTI schedule-reuse idea for every communication path
//!   of the engine;
//! * [`exec`] — multi-backend plan execution: the [`PlanExecutor`] trait
//!   with serial and threaded backends (post/wait charging, copies driven
//!   from the `vf-machine` SPMD worker threads) and [`FusedPlan`] merging
//!   the per-array schedules of a connect-class `DISTRIBUTE` into one
//!   message per processor pair (see `crates/vf-runtime/README.md`);
//! * [`reduce`] — global reductions charged as tree collectives;
//! * [`assign`] — array assignment between differently distributed arrays
//!   (the storage-wasting alternative to dynamic redistribution discussed
//!   in §4);
//! * [`ArrayDescriptor`] — the per-processor descriptor record of §3.2.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
pub mod assign;
pub mod checkpoint;
mod descriptor;
mod element;
mod error;
pub mod exec;
pub mod ghost;
pub mod parti;
pub mod plan;
mod redistribute_impl;
pub mod reduce;
pub mod shard;
pub mod translation;

pub use array::DistArray;
pub use checkpoint::{CheckpointStore, RestoredCheckpoint};
pub use descriptor::ArrayDescriptor;
pub use element::{decode_slice, encode_slice, Element};
pub use error::RuntimeError;
pub use exec::{
    execute_redistribute_fused, execute_redistribute_fused_wire, redistribute_split,
    set_wire_framing, wire_framing_enabled, ExecBackend, ExecReport, FusedPlan, FusedSlice,
    PlanExecutor, SerialExecutor, SplitExecReport, SplitPhaseExchange, SplitRedistribute,
    ThreadedExecutor,
};
pub use plan::{CommPlan, PlanCache, PlanCacheStats, PlanKind, PlanRun, Transfer};
pub use redistribute_impl::{
    execute_redistribute, execute_redistribute_fused_sharded, execute_redistribute_with,
    redistribute, redistribute_cached, redistribute_cached_with, redistribute_sharded,
    redistribute_with, RedistOptions, RedistReport,
};
pub use shard::{ShardedArray, ShardedExecutor, ShardedHaloExchange};
pub use translation::{invalidate, table_for, DistTranslationTable, TranslationStats};
pub use vf_machine::trace;

/// Convenience result alias for fallible runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
